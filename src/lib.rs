//! # flowdns
//!
//! Facade crate for the FlowDNS reproduction workspace.
//!
//! FlowDNS (Maghsoudlou et al., CoNEXT '22) correlates live NetFlow and
//! DNS streams at ISP scale so that CDN-hosted traffic can be attributed
//! to the service (domain name) that caused it. This crate re-exports the
//! public API of every workspace member under one roof:
//!
//! * [`types`] — shared record and time types,
//! * [`dns`] — RFC 1035 wire codec, validation and resolver-feed framing,
//! * [`netflow`] — NetFlow v5/v9 and IPFIX-subset codecs,
//! * [`stream`] — bounded lossy stream buffers and pacing,
//! * [`storage`] — sharded, rotating DNS stores,
//! * [`core`] — the FillUp/LookUp/Write correlation pipeline,
//! * [`ingest`] — live socket ingestion (UDP NetFlow, TCP DNS feed) and
//!   the `flowdnsd` daemon,
//! * [`gen`] — synthetic ISP workload generation,
//! * [`bgp`] — longest-prefix-match AS attribution,
//! * [`dbl`] — domain blocklist and RFC 1035 validity analysis,
//! * [`analysis`] — ECDFs, per-AS / per-category accounting, reports.
//!
//! ## Quick start
//!
//! ```
//! use flowdns::core::{Correlator, CorrelatorConfig};
//! use flowdns::types::{DnsRecord, DomainName, FlowRecord, SimTime};
//! use std::net::Ipv4Addr;
//!
//! // Build a correlator with default (paper) parameters.
//! let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
//!
//! // Feed one DNS record: video.example.com -> 203.0.113.7
//! correlator.push_dns(DnsRecord::address(
//!     SimTime::from_secs(1),
//!     DomainName::literal("video.example.com"),
//!     Ipv4Addr::new(203, 0, 113, 7).into(),
//!     300,
//! ));
//!
//! // Wait until the FillUp worker has stored the record, as a live
//! // deployment's DNS head start does, so the lookup cannot race it.
//! while correlator.store().total_entries() == 0 {
//!     std::thread::sleep(std::time::Duration::from_millis(1));
//! }
//!
//! // Feed one flow whose source is that IP.
//! correlator.push_flow(FlowRecord::inbound(
//!     SimTime::from_secs(2),
//!     Ipv4Addr::new(203, 0, 113, 7).into(),
//!     Ipv4Addr::new(10, 0, 0, 1).into(),
//!     1_000_000,
//! ));
//!
//! let report = correlator.finish().unwrap();
//! assert!(report.volumes.correlation_rate_pct() > 99.0);
//! ```

pub use flowdns_analysis as analysis;
pub use flowdns_bgp as bgp;
pub use flowdns_core as core;
pub use flowdns_dbl as dbl;
pub use flowdns_dns as dns;
pub use flowdns_gen as gen;
pub use flowdns_ingest as ingest;
pub use flowdns_netflow as netflow;
pub use flowdns_storage as storage;
pub use flowdns_stream as stream;
pub use flowdns_types as types;
