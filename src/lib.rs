//! # flowdns
//!
//! Facade crate for the FlowDNS reproduction workspace.
//!
//! FlowDNS (Maghsoudlou et al., CoNEXT '22) correlates live NetFlow and
//! DNS streams at ISP scale so that CDN-hosted traffic can be attributed
//! to the service (domain name) that caused it. This crate re-exports the
//! public API of every workspace member under one roof:
//!
//! * [`types`] — shared record and time types, plus the typed store keys
//!   ([`types::IpKey`], interned [`types::NameRef`] handles),
//! * [`dns`] — RFC 1035 wire codec, validation and resolver-feed framing,
//! * [`netflow`] — NetFlow v5/v9 and IPFIX-subset codecs,
//! * [`stream`] — bounded lossy stream buffers and pacing,
//! * [`storage`] — sharded, rotating DNS stores,
//! * [`snapshot`] — the durable store snapshot format behind
//!   `flowdnsd`'s warm restarts,
//! * [`core`] — the FillUp/LookUp/Write correlation pipeline,
//! * [`ingest`] — live socket ingestion (UDP NetFlow, TCP DNS feed) and
//!   the `flowdnsd` daemon,
//! * [`obs`] — the telemetry plane: metrics registry, `/metrics` scrape
//!   endpoint, and the sampled flow-trace flight recorder,
//! * [`gen`] — synthetic ISP workload generation,
//! * [`bgp`] — longest-prefix-match AS attribution,
//! * [`dbl`] — domain blocklist and RFC 1035 validity analysis,
//! * [`analysis`] — ECDFs, per-AS / per-category accounting, reports.
//!
//! ## Quick start
//!
//! The store API is typed end to end: the correlator keys its IP-NAME
//! maps by [`types::IpKey`] (raw address bits, never a formatted string)
//! and stores names as interned [`types::NameRef`] handles, so feeding
//! it records is allocation-free on the hot path. Ingress accepts single
//! records (`push_dns` / `push_flow`) or whole batches:
//!
//! ```
//! use flowdns::core::{Correlator, CorrelatorConfig};
//! use flowdns::types::{DnsRecord, DomainName, FlowRecord, SimTime};
//! use std::net::Ipv4Addr;
//!
//! // Build a correlator with default (paper) parameters.
//! let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
//!
//! // Feed a batch of DNS records: video.example.com -> 203.0.113.7, ...
//! let dns: Vec<DnsRecord> = (0..4u8)
//!     .map(|i| DnsRecord::address(
//!         SimTime::from_secs(1),
//!         DomainName::literal("video.example.com"),
//!         Ipv4Addr::new(203, 0, 113, i).into(),
//!         300,
//!     ))
//!     .collect();
//! assert_eq!(correlator.push_dns_batch(dns), 4);
//!
//! // Wait until the FillUp workers have stored the records, as a live
//! // deployment's DNS head start does, so the lookups cannot race them.
//! while correlator.stored_entries() < 4 {
//!     std::thread::sleep(std::time::Duration::from_millis(1));
//! }
//!
//! // Feed a batch of flows whose sources are those IPs.
//! let flows: Vec<FlowRecord> = (0..4u8)
//!     .map(|i| FlowRecord::inbound(
//!         SimTime::from_secs(2),
//!         Ipv4Addr::new(203, 0, 113, i).into(),
//!         Ipv4Addr::new(10, 0, 0, 1).into(),
//!         1_000_000,
//!     ))
//!     .collect();
//! assert_eq!(correlator.push_flow_batch(flows), 4);
//!
//! // `snapshot()` reads live metrics without stopping the pipeline;
//! // `finish()` drains everything and returns the exact final report.
//! let report = correlator.finish().unwrap();
//! assert!(report.volumes.correlation_rate_pct() > 99.0);
//! ```

#![forbid(unsafe_code)]

pub use flowdns_analysis as analysis;
pub use flowdns_bgp as bgp;
pub use flowdns_core as core;
pub use flowdns_dbl as dbl;
pub use flowdns_dns as dns;
pub use flowdns_gen as gen;
pub use flowdns_ingest as ingest;
pub use flowdns_netflow as netflow;
pub use flowdns_obs as obs;
pub use flowdns_snapshot as snapshot;
pub use flowdns_storage as storage;
pub use flowdns_stream as stream;
pub use flowdns_types as types;
