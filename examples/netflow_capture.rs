//! Wire-format end-to-end example: build real NetFlow v5/v9 packets and
//! DNS response messages, parse them with the protocol substrates, and
//! push the extracted records through the correlator — the path a live
//! deployment would take.
//!
//! Run with: `cargo run --example netflow_capture`

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns::core::{Correlator, CorrelatorConfig};
use flowdns::dns::message::DnsClass;
use flowdns::dns::{records_from_message, DnsMessage, Question, ResourceRecord, ResponseFilter};
use flowdns::netflow::v9::{encode_standard_ipv4_record, V9PacketBuilder, V9Parser};
use flowdns::netflow::{ExtractorConfig, FlowExtractor, Template};
use flowdns::types::{DomainName, RecordType, SimTime};
use std::net::Ipv4Addr;

fn main() {
    println!("== wire-format ingestion example ==");

    // --- DNS side: a resolver response on the wire. ----------------------
    let shop = DomainName::literal("www.shop.example");
    let cdn = DomainName::literal("edge3.cdn.example.net");
    let response = DnsMessage::response(
        77,
        Question {
            name: shop.clone(),
            qtype: RecordType::A,
            qclass: DnsClass::In,
        },
        vec![
            ResourceRecord::cname(shop, cdn.clone(), 600),
            ResourceRecord::a(cdn, Ipv4Addr::new(100, 64, 9, 9), 120),
        ],
    );
    let wire = response.encode().expect("encode DNS response");
    println!("DNS response encoded to {} bytes on the wire", wire.len());

    let parsed = DnsMessage::decode(&wire).expect("decode DNS response");
    let mut filter = ResponseFilter::new();
    assert!(filter.accept(&parsed));
    let dns_records = records_from_message(&parsed, SimTime::from_secs(5));
    println!("parsed into {} correlator records", dns_records.len());

    // --- NetFlow side: a v9 export packet with a template + data. --------
    let template = Template::standard_ipv4(256);
    let mut builder = V9PacketBuilder::new(42, 1, 10);
    builder.add_templates(std::slice::from_ref(&template));
    let data = vec![
        encode_standard_ipv4_record(
            Ipv4Addr::new(100, 64, 9, 9),
            Ipv4Addr::new(10, 1, 2, 3),
            443,
            52_001,
            6,
            2_500_000,
            1_800,
            0,
            1,
        ),
        encode_standard_ipv4_record(
            Ipv4Addr::new(192, 0, 2, 200),
            Ipv4Addr::new(10, 1, 2, 4),
            443,
            52_002,
            6,
            90_000,
            80,
            0,
            1,
        ),
    ];
    builder.add_data(&template, &data).expect("encode v9 data");
    let packet = builder.build(1_000);
    println!("NetFlow v9 packet encoded to {} bytes", packet.len());

    let mut parser = V9Parser::new();
    let parsed_packet = parser.parse(&packet).expect("decode v9 packet");
    let mut extractor = FlowExtractor::new(ExtractorConfig::default());
    let flows = extractor.from_v9(&parsed_packet);
    println!("extracted {} flow records", flows.len());

    // --- Correlate. -------------------------------------------------------
    let correlator = Correlator::start(CorrelatorConfig::default()).expect("start pipeline");
    for record in dns_records {
        correlator.push_dns(record);
    }
    while correlator.queue_depths().0 > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    for flow in flows {
        correlator.push_flow(flow);
    }
    let report = correlator.finish().expect("clean shutdown");
    println!("\n{}", report.summary());
    println!("(the 100.64.9.9 flow is attributed to www.shop.example via the CNAME chain;");
    println!(" the 192.0.2.200 flow has no DNS record and stays uncorrelated)");
}
