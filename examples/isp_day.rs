//! A compressed "day at the ISP": generate a synthetic diurnal workload,
//! run the offline correlator on it, and print the hour-by-hour picture
//! the paper's Figures 2 and 7 are built from.
//!
//! Run with: `cargo run --release --example isp_day -- [hours]`

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns::core::simulate::Event;
use flowdns::core::{CorrelatorConfig, OfflineSimulator};
use flowdns::gen::workload::StreamEvent;
use flowdns::gen::{Workload, WorkloadConfig};
use flowdns::types::SimDuration;

fn main() {
    let hours: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    let config = WorkloadConfig {
        duration: SimDuration::from_hours(hours),
        peak_flows_per_sec: 30.0,
        ..WorkloadConfig::default()
    };
    let workload = Workload::new(config);

    println!("== a {hours}-hour day at the (scaled-down) ISP ==");
    println!(
        "universe: {} services, expected ideal correlation {:.1}%",
        workload.universe().services.len(),
        workload.expected_correlation_fraction() * 100.0
    );

    let sim = OfflineSimulator::new(CorrelatorConfig::default());
    let outcome = sim.run_with(
        workload.events().map(|e| match e {
            StreamEvent::Dns(r) => Event::Dns(r),
            StreamEvent::Flow(f) => Event::Flow(f),
        }),
        |_| {},
    );

    println!("\nhour  traffic(GB)  correlation%   cpu%   memory(GB)");
    for h in &outcome.hourly {
        println!(
            "{:>4}  {:>10.2}  {:>11.1}  {:>6.0}  {:>10.3}",
            h.hour,
            h.traffic_bytes as f64 / 1e9,
            h.correlation_rate_pct,
            h.cpu_pct,
            h.memory_gb
        );
    }
    println!("\n{}", outcome.report.summary());
    println!("paper reference: 81.7% average correlation, diurnal CPU/memory/traffic curves");
}
