//! Quickstart: correlate a handful of DNS records and flows end to end
//! through the threaded pipeline.
//!
//! Run with: `cargo run --example quickstart`

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns::core::{Correlator, CorrelatorConfig};
use flowdns::types::{DnsRecord, DomainName, FlowRecord, SimTime};
use std::net::Ipv4Addr;

fn main() {
    // 1. Start a correlator with the paper's default parameters
    //    (AClearUpInterval=3600, CClearUpInterval=7200, NUM_SPLIT=10,
    //    CNAME loop limit 6).
    let correlator = Correlator::start(CorrelatorConfig::default()).expect("start pipeline");

    // 2. Feed the DNS stream: a CNAME chain for a CDN-hosted shop plus a
    //    direct A record for a news site.
    let ts = SimTime::from_secs(10);
    let dns_records = vec![
        DnsRecord::cname(
            ts,
            DomainName::literal("www.shop.example"),
            DomainName::literal("shop.cdn.example.net"),
            600,
        ),
        DnsRecord::cname(
            ts,
            DomainName::literal("shop.cdn.example.net"),
            DomainName::literal("edge7.cdn.example.net"),
            600,
        ),
        DnsRecord::address(
            ts,
            DomainName::literal("edge7.cdn.example.net"),
            Ipv4Addr::new(198, 51, 100, 7).into(),
            60,
        ),
        DnsRecord::address(
            ts,
            DomainName::literal("news.example.org"),
            Ipv4Addr::new(203, 0, 113, 50).into(),
            300,
        ),
    ];
    // One queue offer for the whole batch — what the live listeners do
    // per decoded datagram.
    let accepted = correlator.push_dns_batch(dns_records);
    assert_eq!(accepted, 4, "queue has room for the whole batch");

    // Give the FillUp workers a moment to drain the queue into the store.
    while correlator.queue_depths().0 > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    std::thread::sleep(std::time::Duration::from_millis(20));

    // 3. Feed the NetFlow stream: three flows, one per known source, plus
    //    one from an IP never seen in DNS.
    let flows = vec![
        (Ipv4Addr::new(198, 51, 100, 7), 5_000_000u64), // the CDN edge
        (Ipv4Addr::new(203, 0, 113, 50), 200_000),      // the news site
        (Ipv4Addr::new(192, 0, 2, 99), 800_000),        // unknown source
    ];
    correlator.push_flow_batch(flows.into_iter().map(|(src, bytes)| {
        FlowRecord::inbound(
            SimTime::from_secs(20),
            src.into(),
            Ipv4Addr::new(10, 0, 0, 1).into(),
            bytes,
        )
    }));

    // 4. Shut down and inspect the report.
    let report = correlator.finish().expect("clean shutdown");
    println!("== FlowDNS quickstart ==");
    println!("{}", report.summary());
    println!(
        "correlation rate: {:.1}% of bytes ({} of {} flows attributed)",
        report.correlation_rate_pct(),
        report.metrics.lookup.ip_hits,
        report.metrics.lookup.total(),
    );
    println!(
        "CNAME chain hops followed: {}, memoized shortcuts: {}",
        report.metrics.lookup.cname_hops, report.metrics.lookup.memoized
    );
}
