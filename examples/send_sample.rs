//! Send a small sample workload to a running `flowdnsd`.
//!
//! Companion to the README's "Running live" quickstart:
//!
//! ```sh
//! cargo run --release -p flowdns-ingest --bin flowdnsd -- --config examples/flowdnsd.conf
//! # in another terminal:
//! cargo run --example send_sample                       # default ports
//! cargo run --example send_sample -- 127.0.0.1:9995 127.0.0.1:9953
//! ```
//!
//! Pushes a framed DNS feed over TCP (so the store has names to hit),
//! then NetFlow v5, v9 (template + data) and IPFIX datagrams over UDP
//! from three distinct exporter sockets — enough to light up every
//! counter in the daemon's stats line.

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use std::io::Write as IoWrite;
use std::net::{Ipv4Addr, TcpStream, UdpSocket};

use flowdns::dns::framing::FrameEncoder;
use flowdns::netflow::template::Template;
use flowdns::netflow::v9::{encode_standard_ipv4_record, V9PacketBuilder};
use flowdns::netflow::{IpfixMessageBuilder, V5Header, V5Packet, V5Record};
use flowdns::types::{DnsRecord, DomainName, SimTime};

fn main() {
    let mut args = std::env::args().skip(1);
    let netflow_addr = args.next().unwrap_or_else(|| "127.0.0.1:9995".into());
    let dns_addr = args.next().unwrap_or_else(|| "127.0.0.1:9953".into());

    // --- DNS feed: three names behind three CDN addresses. ---
    let records = vec![
        dns("video.cdn.example", [203, 0, 113, 10]),
        dns("shop.cdn.example", [203, 0, 113, 20]),
        dns("games.cdn.example", [203, 0, 113, 30]),
    ];
    let frames = FrameEncoder::new().encode_batch(&records).expect("encode");
    let mut feed = TcpStream::connect(&dns_addr).expect("connect DNS feed");
    feed.write_all(&frames).expect("send DNS frames");
    feed.flush().expect("flush");
    println!("sent {} DNS records to {dns_addr}", records.len());
    // Give the FillUp workers a beat before the flows arrive.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // --- Exporter 1: NetFlow v5. ---
    let v5 = V5Packet {
        header: V5Header {
            unix_secs: 1_000,
            ..Default::default()
        },
        records: vec![v5_record([203, 0, 113, 10], 150_000)],
    };
    send_udp(&netflow_addr, &v5.encode().expect("encode v5"), "v5");

    // --- Exporter 2: NetFlow v9, template before data. ---
    let template = Template::standard_ipv4(256);
    let mut v9 = V9PacketBuilder::new(7, 1, 1_000);
    v9.add_templates(std::slice::from_ref(&template));
    v9.add_data(&template, &[standard_record([203, 0, 113, 20], 90_000)])
        .expect("encode v9 data");
    send_udp(&netflow_addr, &v9.build(1), "v9");

    // --- Exporter 3: IPFIX. ---
    let template = Template::standard_ipv4(400);
    let mut ipfix = IpfixMessageBuilder::new(55, 1, 1_000);
    ipfix.add_templates(std::slice::from_ref(&template));
    ipfix
        .add_data(&template, &[standard_record([203, 0, 113, 30], 60_000)])
        .expect("encode ipfix data");
    send_udp(&netflow_addr, &ipfix.build(), "ipfix");

    println!("done — watch flowdnsd's stderr for the stats line");
}

fn dns(name: &str, ip: [u8; 4]) -> DnsRecord {
    DnsRecord::address(
        SimTime::from_secs(900),
        DomainName::literal(name),
        Ipv4Addr::from(ip).into(),
        3_600,
    )
}

fn v5_record(src: [u8; 4], octets: u32) -> V5Record {
    V5Record {
        src_addr: Ipv4Addr::from(src),
        dst_addr: Ipv4Addr::new(10, 0, 0, 1),
        src_port: 443,
        dst_port: 51_000,
        packets: 120,
        octets,
        ..Default::default()
    }
}

fn standard_record(src: [u8; 4], bytes: u32) -> Vec<u8> {
    encode_standard_ipv4_record(
        Ipv4Addr::from(src),
        Ipv4Addr::new(10, 0, 0, 1),
        443,
        51_000,
        6,
        bytes,
        100,
        0,
        1,
    )
}

fn send_udp(target: &str, payload: &[u8], label: &str) {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind exporter socket");
    socket.send_to(payload, target).expect("send datagram");
    println!(
        "sent {label} datagram ({} bytes) to {target} from {}",
        payload.len(),
        socket.local_addr().expect("local addr")
    );
}
