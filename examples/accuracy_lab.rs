//! The Section 4 accuracy experiment as a runnable lab: two browsed
//! websites, one shared IP, and the overwrite behaviour of the IP-keyed
//! hashmap.
//!
//! Run with: `cargo run --example accuracy_lab`

// Reports go to stdout by design; the workspace denies
// `clippy::print_stdout` for library and daemon code.
#![allow(clippy::print_stdout)]

use flowdns::core::fillup::{process_dns_record, FillUpStats};
use flowdns::core::lookup::LookUpStats;
use flowdns::core::{CorrelatorConfig, DnsStore, Resolver};
use flowdns::gen::{AccuracyCapture, AccuracyScenario};

fn run(scenario: AccuracyScenario, label: &str) {
    let capture = AccuracyCapture::build(scenario, 10);
    let config = CorrelatorConfig::default();
    let store = DnsStore::new(&config);

    let mut fillup = FillUpStats::default();
    for record in &capture.dns {
        process_dns_record(&store, record, &mut fillup);
    }

    let mut resolver = Resolver::new(&store, &config);
    let mut lookup = LookUpStats::default();
    let mut attributions = Vec::new();
    for (flow, truth) in &capture.flows {
        let outcome = resolver.process_flow(flow.clone(), &mut lookup).outcome;
        let got = outcome.final_name().cloned();
        attributions.push(got.clone());
        if attributions.len() <= 4 {
            println!(
                "  flow from {:<16} truth={:<28} flowdns={:?}",
                flow.key.src_ip,
                truth.as_str(),
                got.map(|n| n.as_str().to_string())
            );
        }
    }
    let accuracy = capture.accuracy(&attributions);
    println!("  -> {label}: accuracy {:.0}%\n", accuracy * 100.0);
}

fn main() {
    println!("== two-website accuracy lab (Section 4) ==\n");
    println!("scenario 1: different domains, different IPs (paper: 100%)");
    run(AccuracyScenario::DistinctIps, "scenario 1");
    println!("scenario 2: different domains, shared IP (paper: 50%)");
    run(AccuracyScenario::SharedIp, "scenario 2");
    println!("In scenario 2 the second site's A record overwrites the first in the IP-NAME");
    println!("hashmap, so every flow from the shared IP is attributed to the second site.");
}
