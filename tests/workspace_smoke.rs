//! Workspace smoke test: the one test to run first when something is off.
//!
//! Boots the threaded `Correlator`, pushes a couple of minutes of
//! generated ISP workload through `push_dns`/`push_flow`, shuts down via
//! `finish()`, and checks the two invariants every later experiment
//! relies on: some traffic correlates, and no accepted record is lost.

use flowdns::core::simulate::Event;
use flowdns::core::{Correlator, CorrelatorConfig};
use flowdns::gen::workload::StreamEvent;
use flowdns::gen::{Workload, WorkloadConfig};
use flowdns::types::SimDuration;

#[test]
fn correlator_smoke_correlates_without_losing_accepted_records() {
    let config = WorkloadConfig {
        duration: SimDuration::from_secs(120),
        ..WorkloadConfig::small()
    };
    let workload = Workload::new(config);

    let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
    let mut dns_pushed = 0u64;
    let mut flows_pushed = 0u64;
    let mut dns_accepted = 0u64;
    let mut flows_accepted = 0u64;
    for event in workload.events() {
        match event {
            StreamEvent::Dns(record) => {
                dns_pushed += 1;
                dns_accepted += u64::from(correlator.push_dns(record));
            }
            StreamEvent::Flow(flow) => {
                // Let FillUp drain before each flow so the lookup cannot
                // race the corresponding DNS record (replay is faster than
                // the real-time streams the pipeline is built for).
                while correlator.queue_depths().0 > 0 {
                    std::thread::yield_now();
                }
                flows_pushed += 1;
                flows_accepted += u64::from(correlator.push_flow(flow));
            }
        }
    }
    let report = correlator.finish().unwrap();

    assert!(
        dns_pushed > 0 && flows_pushed > 0,
        "workload generated no events"
    );
    // Default queue capacities dwarf a two-minute workload: nothing may be
    // dropped at the doors...
    assert_eq!(dns_accepted, dns_pushed);
    assert_eq!(flows_accepted, flows_pushed);
    assert_eq!(report.metrics.dns_dropped, 0);
    assert_eq!(report.metrics.flows_dropped, 0);
    assert_eq!(report.metrics.writes_dropped, 0);
    // ...and every accepted flow must come out the other end exactly once.
    assert_eq!(report.metrics.write.records_written, flows_accepted);
    // The generator targets ~82% correlation; any healthy pipeline clears
    // a third even on a short trace.
    let rate = report.correlation_rate_pct();
    assert!(
        rate > 33.0,
        "correlation rate {rate:.1}% is implausibly low"
    );
}

/// `Event` (simulator) and `StreamEvent` (generator) stay convertible —
/// the experiment binaries depend on this mapping.
#[test]
fn generator_events_feed_the_simulator() {
    let config = WorkloadConfig {
        duration: SimDuration::from_secs(30),
        ..WorkloadConfig::small()
    };
    let events: Vec<Event> = Workload::new(config)
        .events()
        .map(|e| match e {
            StreamEvent::Dns(r) => Event::Dns(r),
            StreamEvent::Flow(f) => Event::Flow(f),
        })
        .collect();
    assert!(!events.is_empty());
}
