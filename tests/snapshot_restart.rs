//! Kill-and-restart integration test of the snapshot/warm-restart
//! subsystem, over the same real loopback sockets `flowdnsd` serves.
//!
//! Run 1 of the daemon runtime learns DNS state from a framed TCP feed
//! and shuts down, persisting the store. Run 2 starts against the same
//! snapshot file and receives *only* NetFlow traffic — no DNS at all —
//! and must still correlate the very first flows from the snapshotted
//! state (the fill-up phase is skipped entirely). Also asserts the
//! atomicity contract: no `.part` file is ever visible to the loader,
//! a stale `.part` from a killed writer is ignored and cleaned up by the
//! next write, and a torn snapshot is rejected by its checksum (the
//! daemon starts cold instead of crashing or mis-loading).

use std::io::Write as IoWrite;
use std::net::{Ipv4Addr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use flowdns::dns::framing::FrameEncoder;
use flowdns::ingest::{DaemonConfig, IngestRuntime};
use flowdns::netflow::{V5Header, V5Packet, V5Record};
use flowdns::snapshot::part_path;
use flowdns::types::{DnsRecord, DomainName, SimTime};

fn config_with_snapshot(path: &Path) -> DaemonConfig {
    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    cfg.correlator.snapshot_path = Some(path.to_string_lossy().into_owned());
    // Shutdown-only snapshots: the restart below must be served by the
    // file the first run wrote when it stopped.
    cfg.correlator.snapshot_interval = Duration::ZERO;
    cfg
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn dns_record(name: &str, last_octet: u8, ttl: u32) -> DnsRecord {
    DnsRecord::address(
        SimTime::from_secs(900),
        DomainName::literal(name),
        Ipv4Addr::new(203, 0, 113, last_octet).into(),
        ttl,
    )
}

fn v5_flows(sources: impl Iterator<Item = u8>) -> V5Packet {
    V5Packet {
        header: V5Header {
            unix_secs: 1000,
            ..Default::default()
        },
        records: sources
            .map(|i| V5Record {
                src_addr: Ipv4Addr::new(203, 0, 113, i),
                dst_addr: Ipv4Addr::new(10, 0, 0, 1),
                packets: 10,
                octets: 1_000,
                ..Default::default()
            })
            .collect(),
    }
}

#[test]
fn warm_restarted_daemon_answers_lookups_before_any_new_dns() {
    let dir = std::env::temp_dir().join("flowdns-snapshot-restart-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("store.fdns");
    // A stale .part file, as a daemon killed mid-write would leave
    // behind: the loader must never read it.
    std::fs::write(part_path(&snapshot), b"torn partial write").unwrap();

    // ---- Run 1: learn DNS over the real TCP feed, then shut down. ----
    let first = IngestRuntime::start_in_memory(&config_with_snapshot(&snapshot)).unwrap();
    assert!(
        !first.correlator().snapshot_stats().warm_started(),
        "run 1 must be a cold start"
    );
    let records: Vec<DnsRecord> = (0..16u8)
        .map(|i| {
            // Mix of short-TTL (Active map) and long-TTL (Long map)
            // records: both must survive the round trip.
            let ttl = if i % 2 == 0 { 300 } else { 86_400 };
            dns_record(&format!("svc{i}.cdn.example"), i, ttl)
        })
        .collect();
    let batch = FrameEncoder::new().encode_batch(&records).unwrap();
    let mut feed = TcpStream::connect(first.dns_addr()).unwrap();
    feed.write_all(&batch).unwrap();
    feed.flush().unwrap();
    drop(feed);
    assert!(
        wait_until(Duration::from_secs(10), || {
            first.correlator().stored_entries() >= 16
        }),
        "DNS records never reached the store: {:?}",
        first.snapshot()
    );
    let report = first.shutdown().unwrap();
    assert_eq!(report.metrics.snapshot.snapshots_written, 1);
    assert!(snapshot.exists(), "shutdown must persist the store");
    assert!(
        !part_path(&snapshot).exists(),
        "the atomic rename must consume (or replace) any .part file"
    );

    // ---- Run 2: restart against the snapshot, flows only. ----
    let second = IngestRuntime::start_in_memory(&config_with_snapshot(&snapshot)).unwrap();
    let stats = second.correlator().snapshot_stats();
    assert!(stats.warm_started(), "expected a warm start: {stats:?}");
    assert_eq!(stats.warm_start_entries, 16);

    // The very first traffic this run sees is NetFlow — not one DNS
    // record has been ingested.
    let sender = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    sender
        .send_to(&v5_flows(0..16u8).encode().unwrap(), second.netflow_addr())
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            second.snapshot().pipeline.lookup.total() >= 16
        }),
        "flows never traversed the pipeline: {:?}",
        second.snapshot()
    );
    let report = second.shutdown().unwrap();
    assert_eq!(report.metrics.lookup.total(), 16);
    assert!(
        report.metrics.lookup.ip_hits > 0,
        "warm-started daemon answered no lookups from snapshotted state: {:?}",
        report.metrics.lookup
    );
    // With a quick restart every flow hits — the fill-up phase was
    // skipped entirely.
    assert_eq!(report.metrics.lookup.ip_hits, 16);
    assert_eq!(report.metrics.lookup.ip_misses, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_snapshot_is_rejected_by_checksum_and_daemon_starts_cold() {
    let dir = std::env::temp_dir().join("flowdns-snapshot-torn-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("store.fdns");

    // Produce a valid snapshot, then tear it (simulating a crash of a
    // non-atomic writer / disk truncation).
    let first = IngestRuntime::start_in_memory(&config_with_snapshot(&snapshot)).unwrap();
    let batch = FrameEncoder::new()
        .encode_batch(&[dns_record("svc.cdn.example", 1, 86_400)])
        .unwrap();
    let mut feed = TcpStream::connect(first.dns_addr()).unwrap();
    feed.write_all(&batch).unwrap();
    feed.flush().unwrap();
    drop(feed);
    assert!(wait_until(Duration::from_secs(10), || {
        first.correlator().stored_entries() >= 1
    }));
    first.shutdown().unwrap();
    let bytes = std::fs::read(&snapshot).unwrap();
    std::fs::write(&snapshot, &bytes[..bytes.len() - 3]).unwrap();

    // The restart must come up cold — serving traffic, not dying — with
    // the rejection recorded for the operator.
    let second = IngestRuntime::start_in_memory(&config_with_snapshot(&snapshot)).unwrap();
    let stats = second.correlator().snapshot_stats();
    assert!(!stats.warm_started());
    assert!(
        stats
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("warm start")),
        "expected a recorded rejection: {stats:?}"
    );
    assert_eq!(second.correlator().stored_entries(), 0);
    // A clean shutdown replaces the torn file with a valid one.
    second.shutdown().unwrap();
    assert!(flowdns::snapshot::read_snapshot(&snapshot).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
