//! Loopback tests of the batched NetFlow drain path.
//!
//! The listener's contract (see `flowdns_ingest::netflow_listener`) is
//! that a burst of queued datagrams is taken in *drains* — many
//! datagrams per blocking wake-up, pushed to the pipeline as one batch —
//! and that a malformed datagram inside a drain is counted against its
//! exporter without poisoning the valid datagrams around it. Both
//! properties are observable from [`IngestRuntime::snapshot`]: the
//! per-listener [`ListenerCounters`] expose drains/batch-pushes/max
//! drain depth, and the summary exposes decode totals.

use std::net::{Ipv4Addr, UdpSocket};
use std::time::{Duration, Instant};

use flowdns::ingest::mmsg::send_burst;
use flowdns::ingest::{DaemonConfig, IngestRuntime};
use flowdns::netflow::{V5Header, V5Packet, V5Record};

const BURST: usize = 200;
const RECORDS_PER_DATAGRAM: usize = 2;

fn loopback_config() -> DaemonConfig {
    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    // One listener so every datagram lands on the same drain counters;
    // recv_batch stays at its (batched) default.
    cfg.ingest.netflow_listeners = 1;
    cfg
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn v5_datagram(seq: u8) -> Vec<u8> {
    V5Packet {
        header: V5Header {
            unix_secs: 1000,
            ..Default::default()
        },
        records: (0..RECORDS_PER_DATAGRAM as u8)
            .map(|r| V5Record {
                src_addr: Ipv4Addr::new(203, 0, 113, seq.wrapping_add(r)),
                dst_addr: Ipv4Addr::new(10, 0, 0, 1),
                packets: 10,
                octets: 1_400,
                ..Default::default()
            })
            .collect(),
    }
    .encode()
    .unwrap()
}

#[test]
fn queued_burst_is_drained_in_batches() {
    let rt = IngestRuntime::start(&loopback_config()).unwrap();
    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
    sender.connect(rt.netflow_addr()).unwrap();

    // Enqueue the whole burst in a handful of sendmmsg(2) calls so the
    // kernel socket queue is deep before the listener can keep up.
    let datagrams: Vec<Vec<u8>> = (0..BURST as u8).map(v5_datagram).collect();
    let views: Vec<&[u8]> = datagrams.iter().map(|d| d.as_slice()).collect();
    let mut sent = 0;
    while sent < views.len() {
        sent += send_burst(&sender, &views[sent..]).unwrap().max(1);
    }

    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.snapshot().summary.netflow_datagrams >= BURST as u64
        }),
        "burst never fully received: {:?}",
        rt.snapshot().summary
    );

    let listeners = rt.snapshot().netflow_listeners;
    assert_eq!(listeners.len(), 1);
    let counters = listeners[0];
    assert_eq!(counters.datagrams, BURST as u64);
    // The whole point of the drain loop: strictly fewer wake-ups and
    // queue offers than datagrams, with at least one multi-datagram
    // drain. (Equality would mean the burst was taken one datagram per
    // blocking receive — the recv_batch=1 baseline behaviour.)
    assert!(
        counters.drains < counters.datagrams,
        "no batching happened: {counters:?}"
    );
    assert!(
        counters.batch_pushes < counters.datagrams,
        "one queue offer per datagram: {counters:?}"
    );
    assert!(
        counters.max_drain > 1,
        "no drain took more than one datagram"
    );
    assert!(counters.avg_drain() > 1.0);

    // Every record of every datagram survived to the decode totals and
    // none were shed at the LookUp queue.
    let snap = rt.snapshot();
    assert_eq!(
        snap.summary.netflow_flows,
        (BURST * RECORDS_PER_DATAGRAM) as u64
    );
    assert_eq!(snap.summary.netflow_queue_drops, 0);
    rt.shutdown().unwrap();
}

#[test]
fn malformed_datagram_in_burst_is_counted_not_poisonous() {
    let rt = IngestRuntime::start(&loopback_config()).unwrap();
    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
    sender.connect(rt.netflow_addr()).unwrap();

    // A burst whose middle datagram is garbage: an unknown NetFlow
    // version from the same exporter socket as its valid neighbours.
    let good_before = v5_datagram(1);
    let malformed = vec![0xFFu8; 24];
    let good_after = v5_datagram(7);
    let views: Vec<&[u8]> = vec![&good_before, &malformed, &good_after];
    assert_eq!(send_burst(&sender, &views).unwrap(), 3);

    // `netflow_datagrams` counts *decoded* datagrams, so wait on the
    // listener's own receive counter, which includes the malformed one.
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.snapshot().netflow_listeners[0].datagrams >= 3
        }),
        "burst never fully received: {:?}",
        rt.snapshot().summary
    );

    let snap = rt.snapshot();
    assert_eq!(snap.netflow_listeners[0].datagrams, 3);
    // The malformed datagram is counted...
    assert_eq!(snap.summary.netflow_malformed, 1);
    // ...and the valid records around it still decode and reach the
    // pipeline: nothing else in the drain is lost.
    assert_eq!(snap.summary.netflow_flows, 2 * RECORDS_PER_DATAGRAM as u64);
    assert_eq!(snap.summary.netflow_queue_drops, 0);
    rt.shutdown().unwrap();
}
