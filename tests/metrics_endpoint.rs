//! Loopback integration test of the telemetry subsystem: a live
//! [`IngestRuntime`] with the scrape endpoint and flight recorder on,
//! fed real NetFlow v5 datagrams and a framed DNS feed, scraped over
//! real HTTP while traffic flows.
//!
//! Asserts the three routes work, the Prometheus exposition is
//! well-formed (every family announced by `# HELP`/`# TYPE` before its
//! samples), counters are monotonic across scrapes, the scraped totals
//! match the final shutdown report, and the flight recorder emitted
//! valid JSONL spans end-to-end.

use std::collections::HashMap;
use std::io::{Read, Write as IoWrite};
use std::net::{Ipv4Addr, SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use flowdns::dns::framing::FrameEncoder;
use flowdns::ingest::{DaemonConfig, IngestRuntime};
use flowdns::netflow::{V5Header, V5Packet, V5Record};
use flowdns::types::{DnsRecord, DomainName, SimTime};

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

/// Parse a Prometheus text exposition into sample values keyed by the
/// full series id (`name{labels}`), validating its structure: every
/// sample line belongs to a family previously announced with `# HELP`
/// and `# TYPE`, and every value parses as a float.
fn parse_exposition(body: &str) -> HashMap<String, f64> {
    let mut announced: Vec<String> = Vec::new();
    let mut samples = HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP name");
            announced.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE name");
            let kind = parts.next().expect("TYPE kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind} for {name}"
            );
            assert!(
                announced.contains(&name.to_string()),
                "# TYPE {name} before its # HELP"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let name = series.split('{').next().unwrap();
        assert!(
            announced.iter().any(|a| {
                // Histogram samples use the family name + suffix.
                name == a
                    || name == format!("{a}_bucket")
                    || name == format!("{a}_sum")
                    || name == format!("{a}_count")
            }),
            "sample {name} was never announced: {line}"
        );
        let value: f64 = value.parse().unwrap_or_else(|_| {
            if value == "+Inf" {
                f64::INFINITY
            } else {
                panic!("unparseable value in: {line}")
            }
        });
        samples.insert(series.to_string(), value);
    }
    samples
}

fn dns_record(name: &str, ip: [u8; 4]) -> DnsRecord {
    DnsRecord::address(
        SimTime::from_secs(900),
        DomainName::literal(name),
        Ipv4Addr::from(ip).into(),
        3600,
    )
}

fn v5_wave(unix_secs: u32, flows: &[(Ipv4Addr, u32)]) -> Vec<u8> {
    V5Packet {
        header: V5Header {
            unix_secs,
            ..Default::default()
        },
        records: flows
            .iter()
            .map(|&(src, octets)| V5Record {
                src_addr: src,
                dst_addr: Ipv4Addr::new(10, 0, 0, 1),
                packets: 1,
                octets,
                ..Default::default()
            })
            .collect(),
    }
    .encode()
    .unwrap()
}

#[test]
fn scrape_endpoint_tracks_live_traffic_and_traces_flows() {
    let dir = std::env::temp_dir().join(format!("flowdns-metrics-endpoint-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    // A routing table so the BGP gauges register and spans get stamped.
    let rib = dir.join("rib.txt");
    std::fs::write(&rib, "# test table\n203.0.113.0/24 64510\n").unwrap();
    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.metrics_addr = Some("127.0.0.1:0".parse().unwrap());
    cfg.correlator.routing_table = Some(rib.to_string_lossy().into_owned());
    cfg.correlator.trace_sample_every = 1; // trace every flow
    cfg.correlator.trace_path = Some(trace_path.to_string_lossy().into_owned());

    let rt = IngestRuntime::start_in_memory(&cfg).expect("start runtime");
    let metrics = rt.metrics_addr().expect("metrics endpoint bound");

    // ---- Wave 1: 2 DNS records, 3 flows that resolve against them. ----
    let encoder = FrameEncoder::new();
    let mut conn = TcpStream::connect(rt.dns_addr()).expect("connect resolver");
    conn.write_all(
        &encoder
            .encode_batch(&[
                dns_record("a.cdn.example", [203, 0, 113, 1]),
                dns_record("b.cdn.example", [203, 0, 113, 2]),
            ])
            .unwrap(),
    )
    .unwrap();
    conn.flush().unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.correlator().stored_entries() >= 2
        }),
        "DNS records never reached the store"
    );

    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
    sender
        .send_to(
            &v5_wave(
                1000,
                &[
                    (Ipv4Addr::new(203, 0, 113, 1), 1_000),
                    (Ipv4Addr::new(203, 0, 113, 2), 2_000),
                    (Ipv4Addr::new(203, 0, 113, 1), 3_000),
                ],
            ),
            rt.netflow_addr(),
        )
        .unwrap();

    // Scrape while the first wave settles; the scrape itself must agree
    // with the pipeline once its workers idle-flush.
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.registry()
                .snapshot()
                .counter("flowdns_egress_records_total")
                == 3
        }),
        "first wave never reached egress (per the registry)"
    );
    let (code, body1) = http_get(metrics, "/metrics");
    assert_eq!(code, 200);
    let scrape1 = parse_exposition(&body1);

    // The exposition covers every subsystem named in the issue.
    for family in [
        "flowdns_ingest_netflow_datagrams_total{listener=\"0\"}",
        "flowdns_ingest_dns_records_total",
        "flowdns_queue_dropped_total{queue=\"fillup\"}",
        "flowdns_queue_depth{queue=\"lookup\"}",
        "flowdns_fillup_records_total{kind=\"addresses\"}",
        "flowdns_lookup_flows_total{result=\"ip_hit\"}",
        "flowdns_egress_records_total",
        "flowdns_egress_queue_depth{shard=\"0\"}",
        "flowdns_snapshots_written_total",
        "flowdns_bgp_routing_epoch",
        "flowdns_trace_spans_total",
    ] {
        assert!(scrape1.contains_key(family), "missing series {family}");
    }
    // Histograms for queue wait and per-stage service time exist with
    // the +Inf bucket and a count.
    for series in [
        "flowdns_queue_wait_us_bucket{queue=\"lookup\",le=\"+Inf\"}",
        "flowdns_stage_service_us_count{stage=\"lookup\"}",
        "flowdns_stage_service_us_count{stage=\"write\"}",
    ] {
        assert!(scrape1.contains_key(series), "missing series {series}");
    }
    assert_eq!(scrape1["flowdns_egress_records_total"], 3.0);
    assert_eq!(
        scrape1["flowdns_ingest_records_total{feed=\"netflow\"}"], 3.0,
        "meter totals disagree with the wave"
    );

    // ---- The other two routes, while traffic is live. ----
    let (code, health) = http_get(metrics, "/healthz");
    assert_eq!(code, 200, "healthy pipeline: {health}");
    let (code, json) = http_get(metrics, "/stats.json");
    assert_eq!(code, 200);
    assert!(json.trim_start().starts_with('{'), "not JSON: {json}");
    assert!(json.contains("\"flowdns_egress_records_total\""));

    // ---- Wave 2, then a second scrape: counters are monotonic. ----
    sender
        .send_to(
            &v5_wave(1010, &[(Ipv4Addr::new(203, 0, 113, 2), 4_000)]),
            rt.netflow_addr(),
        )
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.registry()
                .snapshot()
                .counter("flowdns_egress_records_total")
                == 4
        }),
        "second wave never reached egress"
    );
    let (_, body2) = http_get(metrics, "/metrics");
    let scrape2 = parse_exposition(&body2);
    let mut counters_checked = 0usize;
    for (series, &v1) in &scrape1 {
        // Counter families end in _total / _bucket / _count / _sum by
        // convention in this exposition; gauges may go up or down.
        let monotonic = ["_total", "_bucket", "_count", "_sum"]
            .iter()
            .any(|suffix| series.split('{').next().unwrap().ends_with(suffix));
        if !monotonic {
            continue;
        }
        let v2 = *scrape2
            .get(series)
            .unwrap_or_else(|| panic!("series {series} vanished between scrapes"));
        assert!(v2 >= v1, "counter {series} went backwards: {v1} -> {v2}");
        counters_checked += 1;
    }
    assert!(counters_checked > 30, "only {counters_checked} counters");
    assert_eq!(scrape2["flowdns_egress_records_total"], 4.0);

    // ---- Shutdown: scraped totals match the final report. ----
    drop(conn);
    let report = rt.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.write.records_written, 4);
    assert_eq!(
        scrape2["flowdns_egress_records_total"] as u64,
        report.metrics.write.records_written,
    );
    assert_eq!(
        scrape2["flowdns_ingest_netflow_datagrams_total{listener=\"0\"}"] as u64,
        report.metrics.ingest.netflow_datagrams,
    );
    assert_eq!(
        scrape2["flowdns_ingest_dns_records_total"] as u64,
        report.metrics.ingest.dns_records,
    );
    assert_eq!(
        scrape2["flowdns_fillup_records_total{kind=\"addresses\"}"] as u64,
        report.metrics.fillup.addresses_stored,
    );

    // ---- The flight recorder emitted valid JSONL spans end-to-end. ----
    let spans = std::fs::read_to_string(&trace_path).expect("trace file");
    let lines: Vec<&str> = spans.lines().collect();
    assert_eq!(lines.len(), 4, "one span per flow: {spans}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for key in [
            "\"trace_id\":",
            "\"decode_us\":",
            "\"enqueue_us\":",
            "\"queue_wait_us\":",
            "\"lookup_us\":",
            "\"egress_us\":",
            "\"total_us\":",
            "\"asn_stamped\":",
            "\"shard\":",
        ] {
            assert!(line.contains(key), "span missing {key}: {line}");
        }
        // All sources sit in the RIB's 203.0.113.0/24, so every span
        // records a successful origin-AS stamp.
        assert!(line.contains("\"asn_stamped\":true"), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthz_reports_queue_saturation() {
    // A pipeline with tiny queues and no traffic is healthy; this guards
    // the 200 path and the detail text (the 503 path is unit-tested in
    // the obs crate against a synthetic probe).
    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.metrics_addr = Some("127.0.0.1:0".parse().unwrap());
    let rt = IngestRuntime::start_in_memory(&cfg).expect("start runtime");
    let (code, body) = http_get(rt.metrics_addr().unwrap(), "/healthz");
    assert_eq!(code, 200);
    assert!(body.contains("fillup"), "detail names the queues: {body}");
    rt.shutdown().expect("clean shutdown");
}
