//! Loopback integration test of the sharded egress: a correlator fed
//! over real sockets, writing paper-style time-rotated TSV files whose
//! records carry origin-AS attribution from a routing table loaded via
//! the `routing_table` config key.
//!
//! The whole path under test is the configuration-driven one: the
//! announcement file on disk → `CorrelatorConfig::routing_table` →
//! frozen table → LookUp-side stamping, and `output` +
//! `output_rotate_interval` → `RotatingFileSink` shards → window files
//! appearing under their final names (no `.part` leftovers) after a
//! clean shutdown.

use std::io::Write as IoWrite;
use std::net::{Ipv4Addr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use flowdns::dns::framing::FrameEncoder;
use flowdns::ingest::{DaemonConfig, IngestRuntime};
use flowdns::netflow::{V5Header, V5Packet, V5Record};
use flowdns::types::{DnsRecord, DomainName, SimTime};

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn v5_packet(unix_secs: u32, sources: &[[u8; 4]]) -> V5Packet {
    V5Packet {
        header: V5Header {
            unix_secs,
            ..Default::default()
        },
        records: sources
            .iter()
            .map(|src| V5Record {
                src_addr: Ipv4Addr::from(*src),
                dst_addr: Ipv4Addr::new(10, 0, 0, 1),
                packets: 10,
                octets: 1_000,
                ..Default::default()
            })
            .collect(),
    }
}

#[test]
fn rotated_files_carry_stamped_asns_end_to_end() {
    let dir = std::env::temp_dir().join("flowdns-rotating-egress-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // The announcement file the config points at.
    let rib = dir.join("rib.txt");
    std::fs::write(&rib, "# test table\n203.0.113.0/24 64510\n").unwrap();

    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.output = Some(dir.join("corr").to_string_lossy().into_owned());
    cfg.ingest.output_rotate_interval = Some(Duration::from_secs(60));
    cfg.correlator.routing_table = Some(rib.to_string_lossy().into_owned());
    cfg.correlator.write_workers = 1;

    let rt = IngestRuntime::start(&cfg).expect("start runtime");
    assert!(rt.correlator().asn_view().is_some());

    // DNS over the framed TCP feed.
    let encoder = FrameEncoder::new();
    let batch = encoder
        .encode_batch(&[
            DnsRecord::address(
                SimTime::from_secs(900),
                DomainName::literal("alpha.cdn.example"),
                Ipv4Addr::new(203, 0, 113, 1).into(),
                3600,
            ),
            DnsRecord::address(
                SimTime::from_secs(900),
                DomainName::literal("beta.cdn.example"),
                Ipv4Addr::new(203, 0, 113, 2).into(),
                3600,
            ),
        ])
        .unwrap();
    let mut conn = TcpStream::connect(rt.dns_addr()).expect("connect dns feed");
    conn.write_all(&batch).unwrap();
    conn.flush().unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.correlator().stored_entries() >= 2
        }),
        "DNS records never reached the store"
    );

    // First output window: two flows at t=1000 (window start 960).
    let exporter = UdpSocket::bind("127.0.0.1:0").unwrap();
    exporter
        .send_to(
            &v5_packet(1_000, &[[203, 0, 113, 1], [203, 0, 113, 2]])
                .encode()
                .unwrap(),
            rt.netflow_addr(),
        )
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.snapshot().pipeline.write.records_written >= 2
        }),
        "first window was never written: {:?}",
        rt.snapshot()
    );

    // Second window: one flow at t=1100 (window start 1080) — crossing
    // the boundary must rotate the first file out under its final name.
    exporter
        .send_to(
            &v5_packet(1_100, &[[203, 0, 113, 1]]).encode().unwrap(),
            rt.netflow_addr(),
        )
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            dir.join("corr-0000000960.tsv").exists()
        }),
        "first window file never rotated to its final name"
    );

    drop(conn);
    let report = rt.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.write.records_written, 3);
    assert_eq!(report.metrics.lookup.ip_hits, 3);
    assert_eq!(report.metrics.lookup.asn_stamped, 3);
    assert_eq!(report.metrics.writes_dropped, 0);

    // Both window files exist under their final names, nothing half-open.
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("corr-"))
        .collect();
    names.sort();
    assert_eq!(names, vec!["corr-0000000960.tsv", "corr-0000001080.tsv"]);

    let first = std::fs::read_to_string(dir.join("corr-0000000960.tsv")).unwrap();
    let second = std::fs::read_to_string(dir.join("corr-0000001080.tsv")).unwrap();
    assert_eq!(first.lines().count(), 2);
    assert_eq!(second.lines().count(), 1);

    // Every line: stamped source AS from the loaded table, unannounced
    // destination left unattributed, and the correlated name present.
    for line in first.lines().chain(second.lines()) {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 8, "line: {line}");
        assert_eq!(cols[4], "64510", "src_asn column: {line}");
        assert_eq!(cols[5], "-", "dst_asn column: {line}");
        assert!(cols[7].ends_with("cdn.example"), "final name: {line}");
    }
    assert!(first.contains("alpha.cdn.example"));
    assert!(first.contains("beta.cdn.example"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_tsv_output_splits_by_flow_key() {
    // No rotation: plain per-shard TSV files (`.w{shard}` suffix) must
    // jointly hold every record exactly once.
    let dir = std::env::temp_dir().join("flowdns-sharded-tsv-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.output = Some(dir.join("out.tsv").to_string_lossy().into_owned());
    cfg.correlator.write_workers = 2;

    let rt = IngestRuntime::start(&cfg).expect("start runtime");
    let exporter = UdpSocket::bind("127.0.0.1:0").unwrap();
    let sources: Vec<[u8; 4]> = (1..=20u8).map(|i| [198, 51, 100, i]).collect();
    exporter
        .send_to(
            &v5_packet(500, &sources).encode().unwrap(),
            rt.netflow_addr(),
        )
        .unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        rt.snapshot().pipeline.write.records_written >= 20
    }));
    let report = rt.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.write.records_written, 20);

    let shard0 = std::fs::read_to_string(dir.join("out.tsv.w0")).unwrap();
    let shard1 = std::fs::read_to_string(dir.join("out.tsv.w1")).unwrap();
    assert_eq!(shard0.lines().count() + shard1.lines().count(), 20);
    // Twenty distinct 5-tuples over two shards: both sides get work.
    assert!(!shard0.is_empty() && !shard1.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}
