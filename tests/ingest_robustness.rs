//! Robustness of the live listeners against hostile or broken peers.
//!
//! Feeds truncated and garbage datagrams into the UDP listener and cuts
//! TCP streams mid-frame; asserts the process never panics, malformed
//! counters increment, and the listeners keep serving well-formed traffic
//! afterwards. The property tests use the vendored `proptest` shim, so
//! the byte soup is deterministic across runs.

use std::io::Write as IoWrite;
use std::net::{Ipv4Addr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use flowdns::dns::framing::FrameEncoder;
use flowdns::ingest::{DaemonConfig, IngestRuntime};
use flowdns::netflow::template::Template;
use flowdns::netflow::v9::{encode_standard_ipv4_record, V9PacketBuilder};
use flowdns::types::{DnsRecord, DomainName, SimTime};

fn loopback_config() -> DaemonConfig {
    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    cfg
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn valid_v9_packet() -> Vec<u8> {
    let template = Template::standard_ipv4(256);
    let mut b = V9PacketBuilder::new(1, 1, 1000);
    b.add_templates(std::slice::from_ref(&template));
    b.add_data(
        &template,
        &[encode_standard_ipv4_record(
            Ipv4Addr::new(203, 0, 113, 8),
            Ipv4Addr::new(10, 0, 0, 1),
            443,
            50_000,
            6,
            1_234,
            7,
            0,
            1,
        )],
    )
    .unwrap();
    b.build(1)
}

#[test]
fn crafted_bad_inputs_are_counted_and_survived() {
    let rt = IngestRuntime::start_in_memory(&loopback_config()).expect("start runtime");
    let nf = rt.netflow_addr();
    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();

    // Unknown version word, truncated v9 header, truncated v5 body, and a
    // v9 packet with a flowset running past the end: all malformed.
    let valid = valid_v9_packet();
    let mut overrun = valid.clone();
    overrun[22] = 0xFF; // inflate the first flowset length
    overrun[23] = 0xFF;
    let bad: Vec<Vec<u8>> = vec![
        vec![0xde, 0xad, 0xbe, 0xef],
        vec![0x00], // too short even for a version word
        valid[..10].to_vec(),
        {
            let mut v5ish = vec![0x00, 0x05];
            v5ish.extend_from_slice(&[0u8; 10]);
            v5ish
        },
        overrun,
    ];
    for datagram in &bad {
        sender.send_to(datagram, nf).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.snapshot().summary.netflow_malformed >= bad.len() as u64
        }),
        "malformed counter stuck: {:?}",
        rt.snapshot()
    );

    // ---- TCP: a stream cut mid-frame, then an oversized length prefix. ----
    let record = DnsRecord::address(
        SimTime::from_secs(900),
        DomainName::literal("ok.example"),
        Ipv4Addr::new(203, 0, 113, 8).into(),
        300,
    );
    let frame = FrameEncoder::new()
        .encode_batch(std::slice::from_ref(&record))
        .unwrap();
    {
        // Cut after 6 bytes of the frame; the handler must just end the
        // stream, buffered partial bytes discarded.
        let mut cut = TcpStream::connect(rt.dns_addr()).unwrap();
        cut.write_all(&frame[..6]).unwrap();
        cut.flush().unwrap();
    }
    {
        // A length prefix beyond MAX_FRAME_LEN is a malformed stream.
        let mut hostile = TcpStream::connect(rt.dns_addr()).unwrap();
        hostile.write_all(&u32::MAX.to_be_bytes()).unwrap();
        hostile.flush().unwrap();
        assert!(
            wait_until(Duration::from_secs(10), || {
                rt.snapshot().summary.dns_malformed_streams >= 1
            }),
            "malformed stream never counted: {:?}",
            rt.snapshot()
        );
    }

    // ---- Both listeners still serve well-formed traffic. DNS first and
    // into the store, so the flow that follows is guaranteed a hit. ----
    let mut good = TcpStream::connect(rt.dns_addr()).unwrap();
    good.write_all(&frame).unwrap();
    good.flush().unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.correlator().stored_entries() >= 1
        }),
        "DNS listener stopped serving after garbage: {:?}",
        rt.snapshot()
    );
    sender.send_to(&valid_v9_packet(), nf).unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.snapshot().summary.netflow_flows >= 1
        }),
        "NetFlow listener stopped serving after garbage: {:?}",
        rt.snapshot()
    );
    drop(good);

    let report = rt.shutdown().expect("clean shutdown");
    let ingest = &report.metrics.ingest;
    assert!(ingest.netflow_malformed >= bad.len() as u64);
    assert!(ingest.dns_malformed_streams >= 1);
    assert_eq!(ingest.netflow_flows, 1);
    assert_eq!(ingest.dns_records, 1);
    assert_eq!(report.metrics.write.records_written, 1);
    assert_eq!(report.metrics.lookup.ip_hits, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Arbitrary byte soup over UDP and TCP never panics a listener and
    // never stops the runtime from shutting down cleanly.
    #[test]
    fn random_garbage_never_kills_the_listeners(
        datagrams in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..12),
        tcp_chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..80), 1..6),
    ) {
        let rt = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        for d in &datagrams {
            sender.send_to(d, rt.netflow_addr()).unwrap();
        }
        let mut conn = TcpStream::connect(rt.dns_addr()).unwrap();
        for chunk in &tcp_chunks {
            if conn.write_all(chunk).is_err() {
                break; // handler already rejected the stream — fine
            }
        }
        drop(conn);
        // Every datagram is either decoded or counted malformed; nothing
        // vanishes and nothing panics.
        let sent = datagrams.len() as u64;
        wait_until(Duration::from_secs(10), || {
            let s = rt.snapshot().summary;
            s.netflow_datagrams + s.netflow_malformed >= sent
        });
        let report = rt.shutdown().unwrap();
        let ingest = report.metrics.ingest;
        prop_assert_eq!(ingest.netflow_datagrams + ingest.netflow_malformed, sent);
    }
}
