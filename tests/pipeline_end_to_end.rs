//! Cross-crate integration tests: generator → wire formats → correlator →
//! analysis, exercised through the public facade crate.

use flowdns::analysis::CardinalityAnalysis;
use flowdns::core::simulate::Event;
use flowdns::core::{Correlator, CorrelatorConfig, OfflineSimulator, Variant};
use flowdns::dns::{records_from_message, DnsMessage, FrameDecoder, FrameEncoder};
use flowdns::gen::workload::StreamEvent;
use flowdns::gen::{Workload, WorkloadConfig};
use flowdns::netflow::v9::{encode_standard_ipv4_record, V9PacketBuilder, V9Parser};
use flowdns::netflow::{ExtractorConfig, FlowExtractor, Template};
use flowdns::types::{DnsRecord, DomainName, FlowRecord, SimDuration, SimTime};
use std::net::Ipv4Addr;

fn to_event(e: StreamEvent) -> Event {
    match e {
        StreamEvent::Dns(r) => Event::Dns(r),
        StreamEvent::Flow(f) => Event::Flow(f),
    }
}

fn small_workload(minutes: u64) -> Workload {
    let mut cfg = WorkloadConfig::small();
    cfg.duration = SimDuration::from_secs(minutes * 60);
    Workload::new(cfg)
}

#[test]
fn generated_workload_correlates_in_paper_ballpark_offline() {
    let workload = small_workload(30);
    let sim = OfflineSimulator::new(CorrelatorConfig::default());
    let outcome = sim.run_with(workload.events().map(to_event), |_| {});
    let rate = outcome.report.correlation_rate_pct();
    // The generator targets 0.86 x 0.95 ~ 82%; leave generous slack for a
    // short trace.
    assert!(rate > 65.0 && rate < 95.0, "correlation rate {rate}");
    assert!(outcome.report.metrics.flow_loss_pct() < 1.0);
    assert!(outcome.report.metrics.dns_loss_pct() < 1.0);
    assert!(!outcome.hourly.is_empty());
}

#[test]
fn offline_and_threaded_pipelines_agree_on_correlation() {
    let workload = small_workload(10);
    let events: Vec<Event> = workload.events().map(to_event).collect();

    let offline = OfflineSimulator::new(CorrelatorConfig::default()).run(&events);

    let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
    // Feed DNS slightly ahead of flows per timestamp order: the events are
    // already time-ordered, which is what the live streams deliver too. A
    // live deployment delivers them in real time, so FillUp keeps pace with
    // the flow stream; replaying at full speed instead lets flows overtake
    // their DNS records whenever the scheduler starves the FillUp workers.
    // Draining the FillUp queue before each flow restores the real-time
    // ordering without hiding genuine pipeline races (the handful of
    // popped-but-not-yet-stored records stays within the slack below).
    for event in &events {
        match event {
            Event::Dns(record) => {
                correlator.push_dns(record.clone());
            }
            Event::Flow(flow) => {
                while correlator.queue_depths().0 > 0 {
                    std::thread::yield_now();
                }
                correlator.push_flow(flow.clone());
            }
        }
    }
    let live = correlator.finish().unwrap();

    let diff = (offline.report.correlation_rate_pct() - live.correlation_rate_pct()).abs();
    // Thread scheduling can reorder lookups relative to fills, so allow a
    // few percent of slack — but the two paths must tell the same story.
    assert!(
        diff < 6.0,
        "offline {:.1}% vs live {:.1}%",
        offline.report.correlation_rate_pct(),
        live.correlation_rate_pct()
    );
    assert_eq!(
        live.metrics.write.records_written,
        offline.report.metrics.write.records_written
    );
}

#[test]
fn variant_ordering_matches_the_paper() {
    let workload = small_workload(45);
    let events: Vec<Event> = workload.events().map(to_event).collect();
    let run = |variant: Variant| {
        OfflineSimulator::new(CorrelatorConfig::for_variant(variant))
            .run(&events)
            .report
            .correlation_rate_pct()
    };
    let main = run(Variant::Main);
    let no_clear_up = run(Variant::NoClearUp);
    let no_rotation = run(Variant::NoRotation);
    let no_split = run(Variant::NoSplit);
    // Paper: NoClearUp >= Main = NoSplit >= NoLong >= NoRotation.
    assert!(no_clear_up >= main - 1e-9);
    // Splitting only changes which shard a record lands in, not whether it
    // is found; per-split clear-up clocks introduce sub-percent jitter.
    assert!(
        (no_split - main).abs() < 0.5,
        "NoSplit {no_split} vs Main {main}"
    );
    assert!(no_rotation <= main + 1e-9);
}

#[test]
fn wire_format_ingestion_end_to_end() {
    // Build a DNS response + a NetFlow v9 packet, cross the resolver-feed
    // framing, and correlate.
    let shop = DomainName::literal("www.wire.example");
    let edge = DomainName::literal("edge.wire-cdn.example");
    let response = DnsMessage::response(
        1,
        flowdns::dns::Question {
            name: shop.clone(),
            qtype: flowdns::types::RecordType::A,
            qclass: flowdns::dns::message::DnsClass::In,
        },
        vec![
            flowdns::dns::ResourceRecord::cname(shop.clone(), edge.clone(), 300),
            flowdns::dns::ResourceRecord::a(edge.clone(), Ipv4Addr::new(100, 99, 1, 1), 120),
        ],
    );
    let wire = response.encode().unwrap();
    let decoded = DnsMessage::decode(&wire).unwrap();
    let records = records_from_message(&decoded, SimTime::from_secs(1));

    // Push the records through the length-prefixed resolver-feed framing.
    let framed = FrameEncoder::new().encode_batch(&records).unwrap();
    let mut decoder = FrameDecoder::new();
    let delivered: Vec<DnsRecord> = decoder.feed(&framed).unwrap();
    assert_eq!(delivered, records);

    // NetFlow v9 packet carrying one flow from the announced edge IP.
    let template = Template::standard_ipv4(256);
    let mut builder = V9PacketBuilder::new(9, 0, 100);
    builder.add_templates(std::slice::from_ref(&template));
    builder
        .add_data(
            &template,
            &[encode_standard_ipv4_record(
                Ipv4Addr::new(100, 99, 1, 1),
                Ipv4Addr::new(10, 0, 0, 7),
                443,
                51_000,
                6,
                1_000_000,
                700,
                0,
                1,
            )],
        )
        .unwrap();
    let mut parser = V9Parser::new();
    let packet = parser.parse(&builder.build(0)).unwrap();
    let mut extractor = FlowExtractor::new(ExtractorConfig::default());
    let flows = extractor.from_v9(&packet);
    assert_eq!(flows.len(), 1);

    let correlator = Correlator::start(CorrelatorConfig::default()).unwrap();
    for record in delivered {
        correlator.push_dns(record);
    }
    while correlator.queue_depths().0 > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    for flow in flows {
        correlator.push_flow(flow);
    }
    let report = correlator.finish().unwrap();
    assert_eq!(report.metrics.lookup.ip_hits, 1);
    assert!(report.correlation_rate_pct() > 99.0);
    // The CNAME chain was followed back to the customer-facing name.
    assert_eq!(report.metrics.lookup.cname_hops, 1);
}

#[test]
fn exact_ttl_variant_loses_data_where_main_does_not() {
    let mut cfg = WorkloadConfig::small();
    cfg.duration = SimDuration::from_secs(1200);
    cfg.peak_flows_per_sec = 40.0;
    let workload = Workload::new(cfg);
    let events: Vec<Event> = workload.events().map(to_event).collect();

    let main = OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::Main)).run(&events);
    let exact =
        OfflineSimulator::new(CorrelatorConfig::for_variant(Variant::ExactTtl)).run(&events);

    assert!(main.report.metrics.flow_loss_pct() < 2.0);
    assert!(
        exact.report.metrics.flow_loss_pct() > 30.0,
        "exact-TTL should overload: {:.1}%",
        exact.report.metrics.flow_loss_pct()
    );
    assert!(exact.mean_cpu_pct() > main.mean_cpu_pct());
}

#[test]
fn cardinality_analysis_over_generated_dns_matches_paper_shape() {
    let workload = small_workload(60);
    let mut analysis = CardinalityAnalysis::new();
    for event in workload.events() {
        if let StreamEvent::Dns(record) = event {
            analysis.observe(&record);
        }
    }
    assert!(analysis.ip_count() > 50);
    // Most IPs carry a single name; a minority of names span several IPs.
    assert!(analysis.single_name_ip_share() > 0.75);
    assert!(analysis.multi_ip_name_share() < 0.7);
}

#[test]
fn config_file_round_trip_drives_the_pipeline() {
    let text = "
# integration-test deployment
num_split = 4
lookup_workers = 2
fillup_workers = 1
variant = Main
";
    let config = CorrelatorConfig::from_config_text(text).unwrap();
    assert_eq!(config.effective_num_split(), 4);
    let correlator = Correlator::start(config).unwrap();
    correlator.push_dns(DnsRecord::address(
        SimTime::from_secs(1),
        DomainName::literal("cfg.example"),
        Ipv4Addr::new(100, 80, 0, 1).into(),
        60,
    ));
    while correlator.queue_depths().0 > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    std::thread::sleep(std::time::Duration::from_millis(10));
    correlator.push_flow(FlowRecord::inbound(
        SimTime::from_secs(2),
        Ipv4Addr::new(100, 80, 0, 1).into(),
        Ipv4Addr::new(10, 0, 0, 1).into(),
        1234,
    ));
    let report = correlator.finish().unwrap();
    assert_eq!(report.metrics.lookup.ip_hits, 1);
}
