//! The streaming generator's constant-memory claim, *measured*.
//!
//! `Workload::events()` is documented as the generator's real interface:
//! constant memory regardless of trace length. This test streams a
//! 10-million-event week through the iterator in its own test binary (a
//! fresh process, so the high-water mark baseline is clean) and reads
//! the kernel's own accounting — `VmHWM` in `/proc/self/status` — before
//! and after. Materializing those events instead costs gigabytes
//! (`StreamEvent` is ~100 bytes plus its interned strings), so the
//! 64 MiB growth budget cleanly separates "streams" from "collects"
//! while leaving room for the store of interned service names.
//!
//! On platforms without procfs the probe is skipped (the determinism and
//! cap tests in `crates/gen` still cover the contract).

use flowdns_gen::workload::StreamEvent;
use flowdns_gen::{SubscriberPopulation, Workload, WorkloadConfig};
use flowdns_types::SimDuration;

/// Peak resident set in KiB, from the kernel's accounting.
fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn ten_million_events_stream_in_constant_memory() {
    let Some(baseline_kib) = vm_hwm_kib() else {
        eprintln!("no /proc/self/status on this platform — skipping the RSS probe");
        return;
    };

    // A full week of the residential population at a rate that yields
    // well over 10M events; `.take` keeps the wall-clock bounded.
    let workload = Workload::new(WorkloadConfig {
        population: SubscriberPopulation::residential(),
        duration: SimDuration::from_hours(168),
        peak_flows_per_sec: 60.0,
        background_dns_per_sec: 8.0,
        ..WorkloadConfig::default()
    });

    const TARGET: u64 = 10_000_000;
    let mut events = 0u64;
    let mut last_ts = 0u64;
    let mut byte_sum = 0u64;
    for event in workload.events().take(TARGET as usize) {
        // Touch the event so the optimizer cannot elide generation.
        let ts = event.ts().as_micros();
        assert!(ts >= last_ts, "timestamp regressed mid-stream");
        last_ts = ts;
        if let StreamEvent::Flow(f) = &event {
            byte_sum = byte_sum.wrapping_add(f.bytes);
        }
        events += 1;
    }
    assert_eq!(events, TARGET, "trace ended before 10M events");
    assert!(byte_sum > 0);

    let after_kib = vm_hwm_kib().expect("procfs stayed readable");
    let growth_kib = after_kib.saturating_sub(baseline_kib);
    assert!(
        growth_kib < 64 * 1024,
        "streaming 10M events grew the peak RSS by {growth_kib} KiB \
         (baseline {baseline_kib}, after {after_kib}) — the iterator is \
         materializing state proportional to the trace"
    );
}
