//! Loopback integration test of the live ingestion subsystem.
//!
//! Spawns an [`IngestRuntime`] on ephemeral ports and feeds it exactly
//! what a real deployment would see: NetFlow v5 and v9 datagrams over UDP
//! from several exporter sockets (template-before-data and
//! data-before-template orderings, plus two exporters reusing the same
//! template id with **different** field layouts) and a framed DNS
//! cache-miss feed over TCP (including a frame split across writes).
//! Asserts that correlated records come out of the Write stage and that
//! data-before-template is counted as a drop, not an error.

use std::io::Write as IoWrite;
use std::net::{Ipv4Addr, SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use flowdns::dns::framing::FrameEncoder;
use flowdns::ingest::{DaemonConfig, IngestRuntime};
use flowdns::netflow::template::{FieldSpec, FieldType, Template};
use flowdns::netflow::v9::{encode_standard_ipv4_record, V9PacketBuilder};
use flowdns::netflow::{V5Header, V5Packet, V5Record};
use flowdns::types::{DnsRecord, DomainName, SimTime};

fn loopback_config() -> DaemonConfig {
    let mut cfg = DaemonConfig::default();
    cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
    cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
    cfg
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn send_udp(target: SocketAddr, payload: &[u8]) -> UdpSocket {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind sender socket");
    socket.send_to(payload, target).expect("send datagram");
    socket
}

fn dns_record(name: &str, ip: [u8; 4]) -> DnsRecord {
    DnsRecord::address(
        SimTime::from_secs(900),
        DomainName::literal(name),
        Ipv4Addr::from(ip).into(),
        3600,
    )
}

/// A v9 template reusing id 256 with a field layout *different* from
/// [`Template::standard_ipv4`]: other order, other lengths, 15-byte
/// records instead of 29.
fn exotic_template() -> Template {
    Template {
        id: 256,
        fields: vec![
            FieldSpec {
                ftype: FieldType::InBytes,
                length: 4,
            },
            FieldSpec {
                ftype: FieldType::L4DstPort,
                length: 2,
            },
            FieldSpec {
                ftype: FieldType::Ipv4DstAddr,
                length: 4,
            },
            FieldSpec {
                ftype: FieldType::Ipv4SrcAddr,
                length: 4,
            },
            FieldSpec {
                ftype: FieldType::Protocol,
                length: 1,
            },
        ],
    }
}

fn exotic_record(src: Ipv4Addr, bytes: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(15);
    out.extend_from_slice(&bytes.to_be_bytes());
    out.extend_from_slice(&443u16.to_be_bytes());
    out.extend_from_slice(&Ipv4Addr::new(10, 0, 0, 9).octets());
    out.extend_from_slice(&src.octets());
    out.push(6);
    out
}

#[test]
fn live_ingest_correlates_over_real_sockets() {
    run_live_ingest(0);
}

/// The same loopback exercise against the sharded correlator: listener
/// threads route per-shard through their own `ShardRouter`s, and the
/// per-shard routed counters must account for every accepted record.
#[test]
fn live_ingest_correlates_with_sharded_correlator() {
    run_live_ingest(2);
}

fn run_live_ingest(correlator_shards: usize) {
    let mut config = loopback_config();
    config.correlator.correlator_shards = correlator_shards;
    let rt = IngestRuntime::start_in_memory(&config).expect("start runtime");

    // ---- DNS feed over TCP: two resolver connections. ----
    let encoder = FrameEncoder::new();
    let batch_a = encoder
        .encode_batch(&[
            dns_record("v5a.cdn.example", [203, 0, 113, 1]),
            dns_record("v5b.cdn.example", [203, 0, 113, 2]),
        ])
        .unwrap();
    let mut conn_a = TcpStream::connect(rt.dns_addr()).expect("connect resolver a");
    // Worst-case socket behaviour: a frame split mid-message across two
    // writes with a pause in between.
    conn_a.write_all(&batch_a[..10]).unwrap();
    conn_a.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    conn_a.write_all(&batch_a[10..]).unwrap();
    conn_a.flush().unwrap();

    let batch_b = encoder
        .encode_batch(&[
            dns_record("v9a.cdn.example", [203, 0, 113, 3]),
            dns_record("v9b.cdn.example", [203, 0, 113, 4]),
        ])
        .unwrap();
    let mut conn_b = TcpStream::connect(rt.dns_addr()).expect("connect resolver b");
    conn_b.write_all(&batch_b).unwrap();
    conn_b.flush().unwrap();

    assert!(
        wait_until(Duration::from_secs(10), || {
            rt.correlator().stored_entries() >= 4
        }),
        "DNS records never reached the store: {:?}",
        rt.snapshot()
    );

    // ---- NetFlow over UDP from four distinct exporter sockets. ----
    let nf = rt.netflow_addr();

    // Exporter 1: NetFlow v5 (fixed layout, auto-detected).
    let v5 = V5Packet {
        header: V5Header {
            unix_secs: 1000,
            ..Default::default()
        },
        records: vec![
            V5Record {
                src_addr: Ipv4Addr::new(203, 0, 113, 1),
                dst_addr: Ipv4Addr::new(10, 0, 0, 1),
                packets: 10,
                octets: 1_000,
                ..Default::default()
            },
            V5Record {
                src_addr: Ipv4Addr::new(203, 0, 113, 2),
                dst_addr: Ipv4Addr::new(10, 0, 0, 2),
                packets: 20,
                octets: 2_000,
                ..Default::default()
            },
        ],
    };
    let _e1 = send_udp(nf, &v5.encode().unwrap());

    // Exporter 2: v9, template-before-data in one packet, standard layout,
    // template id 256, source id 7.
    let standard = Template::standard_ipv4(256);
    let mut pkt_a = V9PacketBuilder::new(7, 1, 1000);
    pkt_a.add_templates(std::slice::from_ref(&standard));
    pkt_a
        .add_data(
            &standard,
            &[encode_standard_ipv4_record(
                Ipv4Addr::new(203, 0, 113, 3),
                Ipv4Addr::new(10, 0, 0, 3),
                443,
                50_000,
                6,
                3_000,
                30,
                0,
                1,
            )],
        )
        .unwrap();
    let _e2 = send_udp(nf, &pkt_a.build(1));

    // Exporter 3: v9 with the SAME source id (7) and SAME template id
    // (256) but a different field layout — only per-exporter template
    // state can decode both correctly.
    let exotic = exotic_template();
    let mut pkt_b = V9PacketBuilder::new(7, 1, 1000);
    pkt_b.add_templates(std::slice::from_ref(&exotic));
    pkt_b
        .add_data(
            &exotic,
            &[exotic_record(Ipv4Addr::new(203, 0, 113, 4), 4_000)],
        )
        .unwrap();
    let _e3 = send_udp(nf, &pkt_b.build(1));

    // Exporter 4: data-before-template — must be counted as a drop, not
    // an error, and not crash anything.
    let mut pkt_c = V9PacketBuilder::new(9, 1, 1000);
    pkt_c
        .add_data(
            &standard,
            &[encode_standard_ipv4_record(
                Ipv4Addr::new(198, 51, 100, 77),
                Ipv4Addr::new(10, 0, 0, 4),
                443,
                50_001,
                6,
                9_999,
                5,
                0,
                1,
            )],
        )
        .unwrap();
    let _e4 = send_udp(nf, &pkt_c.build(1));

    assert!(
        wait_until(Duration::from_secs(10), || {
            let s = rt.snapshot().summary;
            s.netflow_flows >= 4 && s.netflow_unknown_template_drops >= 1 && s.dns_records >= 4
        }),
        "ingest counters never converged: {:?}",
        rt.snapshot()
    );

    drop(conn_a);
    drop(conn_b);

    // Sharded mode: the per-shard routed counters must sum to exactly
    // what the listeners accepted — nothing lost, nothing double-routed.
    if correlator_shards > 0 {
        let (dns_routed, flow_routed) = rt
            .correlator()
            .shard_routed_counts()
            .expect("sharded correlator exposes routed counters");
        assert_eq!(dns_routed.len(), correlator_shards);
        assert_eq!(dns_routed.iter().sum::<u64>(), 4);
        assert_eq!(flow_routed.iter().sum::<u64>(), 4);
    } else {
        assert!(rt.correlator().shard_routed_counts().is_none());
    }

    let report = rt.shutdown().expect("clean shutdown");

    // ≥ 1 correlated enriched record produced from bytes that entered via
    // UDP and TCP — in fact all four flows correlate.
    assert_eq!(report.metrics.write.records_written, 4);
    assert_eq!(report.metrics.lookup.ip_hits, 4);
    assert_eq!(report.metrics.lookup.ip_misses, 0);
    assert_eq!(report.volumes.total.bytes(), 1_000 + 2_000 + 3_000 + 4_000);
    assert!(report.correlation_rate_pct() > 99.0);

    // Ingest summary folded into core metrics.
    let ingest = &report.metrics.ingest;
    assert!(ingest.is_live());
    assert_eq!(ingest.netflow_datagrams, 4);
    assert_eq!(ingest.netflow_flows, 4);
    assert_eq!(ingest.netflow_malformed, 0);
    assert_eq!(ingest.netflow_unknown_template_drops, 1);
    assert_eq!(ingest.netflow_queue_drops, 0);
    assert_eq!(ingest.per_exporter.len(), 4);
    assert_eq!(ingest.dns_connections, 2);
    assert_eq!(ingest.dns_records, 4);
    assert_eq!(ingest.dns_malformed_streams, 0);
    assert_eq!(ingest.dns_queue_drops, 0);

    // The drop is attributed to the right exporter.
    let droppers: Vec<_> = ingest
        .per_exporter
        .iter()
        .filter(|e| e.unknown_template_drops > 0)
        .collect();
    assert_eq!(droppers.len(), 1);
    assert_eq!(droppers[0].flows, 0);

    // And the report's human summary mentions the live ingest line.
    assert!(report.summary().contains("netflow: 4 datagrams"));
}

#[test]
fn late_template_recovers_an_exporter() {
    // One exporter, data first (dropped), then template+data (decoded):
    // the per-exporter cache warms up exactly like a real collector's.
    let rt = IngestRuntime::start_in_memory(&loopback_config()).expect("start runtime");
    let nf = rt.netflow_addr();
    let standard = Template::standard_ipv4(300);
    let record = || {
        encode_standard_ipv4_record(
            Ipv4Addr::new(203, 0, 113, 50),
            Ipv4Addr::new(10, 0, 0, 1),
            443,
            50_000,
            6,
            500,
            5,
            0,
            1,
        )
    };

    let exporter = UdpSocket::bind("127.0.0.1:0").unwrap();
    let mut data_only = V9PacketBuilder::new(3, 1, 1000);
    data_only.add_data(&standard, &[record()]).unwrap();
    exporter.send_to(&data_only.build(1), nf).unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        rt.snapshot().summary.netflow_unknown_template_drops == 1
    }));

    let mut with_template = V9PacketBuilder::new(3, 2, 1001);
    with_template.add_templates(std::slice::from_ref(&standard));
    with_template.add_data(&standard, &[record()]).unwrap();
    exporter.send_to(&with_template.build(2), nf).unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        rt.snapshot().summary.netflow_flows == 1
    }));

    let report = rt.shutdown().expect("clean shutdown");
    let ingest = &report.metrics.ingest;
    assert_eq!(ingest.per_exporter.len(), 1);
    assert_eq!(ingest.per_exporter[0].datagrams, 2);
    assert_eq!(ingest.per_exporter[0].flows, 1);
    assert_eq!(ingest.per_exporter[0].unknown_template_drops, 1);
    assert_eq!(ingest.netflow_malformed, 0);
    // No DNS was fed, so the flow goes through uncorrelated.
    assert_eq!(report.metrics.write.records_written, 1);
    assert_eq!(report.metrics.lookup.ip_misses, 1);
}
