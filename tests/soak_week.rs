//! The compressed week-at-an-ISP soak, as a repo-level test.
//!
//! This is the acceptance surface of the soak tier: a scaled-down week
//! (small population, fast clear-ups) streamed through the **real**
//! threaded correlator in both the classic shared-queue layout and the
//! 2-shard shared-nothing layout, with a kill-and-warm-restart in the
//! middle of each. The full-size run (mixed population, 2.4M
//! subscribers, 168 simulated hours, > 13M events per mode) produces the
//! committed `BENCH_soak.json` via `exp_soak`; this test keeps the same
//! three claims — bounded memory across ≥ 3 rotation clear-ups, snapshot
//! continuity across the restart, zero accepted-record loss — green on
//! every `cargo test`.

use flowdns_bench::soak::{self, SoakConfig};

fn scaled_week() -> SoakConfig {
    let mut config = SoakConfig::smoke();
    config
        .apply_file_text(
            "population = small\n\
             subscribers = 20000\n\
             sim_hours = 2\n\
             peak_flows_per_sec = 50\n\
             background_dns_per_sec = 7\n\
             a_clear_up_secs = 600\n\
             c_clear_up_secs = 1200\n\
             restart_at_hour = 1.0\n\
             soak_shards = 2\n",
        )
        .expect("valid soak overrides");
    config
}

#[test]
fn compressed_week_holds_the_three_soak_claims() {
    let report = soak::run(&scaled_week(), |_| {}).expect("soak completes");

    assert_eq!(report.modes.len(), 2, "classic and sharded modes");
    assert_eq!(report.modes[0].label, "classic");
    assert_eq!(report.modes[0].shards, 0);
    assert_eq!(report.modes[1].label, "sharded");
    assert_eq!(report.modes[1].shards, 2);

    for mode in &report.modes {
        // ≥ 3 rotation clear-ups actually observed, each with a memory
        // reading taken right after it.
        assert!(
            mode.memory_samples.len() >= 3,
            "{}: only {} post-clear-up samples",
            mode.label,
            mode.memory_samples.len()
        );
        // Bounded memory: rotation returns the store to its working set.
        assert!(
            mode.memory_bounded(report.config.memory_band_factor),
            "{}: post-clear-up entries outside the band: {:?}",
            mode.label,
            mode.memory_samples
        );
        // Snapshot continuity: the warm restart restored exactly what
        // the shutdown snapshot serialized.
        assert!(mode.restart.warm_started, "{}: no warm start", mode.label);
        assert!(
            mode.restart.continuity,
            "{}: snapshot had {} entries but warm start restored {}",
            mode.label,
            mode.restart.snapshot_entries,
            mode.restart.warm_start_entries
        );
        // Zero accepted-record loss, reconciled against the pipeline's
        // own metrics (and in sharded mode the per-shard routed
        // counters).
        assert!(
            mode.loss.zero_accepted_loss(),
            "{}: loss ledger does not reconcile: {:?}",
            mode.label,
            mode.loss
        );
        // The correlator did real work the whole way through.
        assert!(
            mode.correlation_rate_pct > 60.0,
            "{}: correlation collapsed to {:.1}%",
            mode.label,
            mode.correlation_rate_pct
        );
    }

    // Both modes consumed the identical stream.
    assert_eq!(
        report.modes[0].events_streamed, report.modes[1].events_streamed,
        "classic and sharded modes must replay the same workload"
    );
    assert_eq!(
        report.modes[0].loss.dns_offered + report.modes[0].loss.flows_offered,
        report.modes[1].loss.dns_offered + report.modes[1].loss.flows_offered,
    );

    // The emitted document round-trips through its own schema check.
    soak::validate_json(&report.to_json()).expect("soak JSON validates");
}
