//! The domain blocklist (Spamhaus-DBL stand-in).

use std::collections::HashMap;

use flowdns_types::{DomainName, SimDuration, SimTime};

/// Blocklist categories, matching the composition the paper reports for
/// its 1M-name hourly sample (512 spam, 41 botnet C&C, 34 abused
/// redirectors, 11 malware, 3 phishing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlocklistCategory {
    /// Spam / generic bad reputation.
    Spam,
    /// Botnet command and control.
    BotnetCc,
    /// Abused spammed redirector.
    AbusedRedirector,
    /// Malware distribution.
    Malware,
    /// Phishing.
    Phishing,
}

impl BlocklistCategory {
    /// All categories in the paper's order.
    pub fn all() -> [BlocklistCategory; 5] {
        [
            BlocklistCategory::Spam,
            BlocklistCategory::BotnetCc,
            BlocklistCategory::AbusedRedirector,
            BlocklistCategory::Malware,
            BlocklistCategory::Phishing,
        ]
    }

    /// The label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            BlocklistCategory::Spam => "spam",
            BlocklistCategory::BotnetCc => "botnet",
            BlocklistCategory::AbusedRedirector => "abused-redirector",
            BlocklistCategory::Malware => "malware",
            BlocklistCategory::Phishing => "phish",
        }
    }
}

/// An in-memory domain blocklist with category labels.
///
/// Lookups match the exact name or any listed parent domain (listing
/// `bad.example` also flags `cdn.bad.example`), which is how DNSBL
/// services behave. Lookups are counted so deployments can respect
/// bandwidth limits (the paper samples once an hour for this reason).
#[derive(Debug, Default, Clone)]
pub struct Blocklist {
    entries: HashMap<DomainName, BlocklistCategory>,
    /// Number of lookups performed.
    pub lookups: u64,
}

impl Blocklist {
    /// An empty blocklist.
    pub fn new() -> Self {
        Blocklist::default()
    }

    /// Add a domain to the blocklist.
    pub fn add(&mut self, domain: DomainName, category: BlocklistCategory) {
        self.entries.insert(domain, category);
    }

    /// Number of listed domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the blocklist empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a domain: returns the category of the name itself or of the
    /// closest listed parent.
    pub fn lookup(&mut self, domain: &DomainName) -> Option<BlocklistCategory> {
        self.lookups += 1;
        if let Some(cat) = self.entries.get(domain) {
            return Some(*cat);
        }
        // Walk parent domains: a.b.c -> b.c -> c
        let labels: Vec<&str> = domain.labels().collect();
        for start in 1..labels.len() {
            let parent = labels[start..].join(".");
            if let Some(cat) = self.entries.get(parent.as_str()) {
                return Some(*cat);
            }
        }
        None
    }

    /// Counts per category.
    pub fn category_counts(&self) -> HashMap<BlocklistCategory, usize> {
        let mut counts = HashMap::new();
        for cat in self.entries.values() {
            *counts.entry(*cat).or_insert(0) += 1;
        }
        counts
    }
}

/// Samples domain names once per interval (the paper samples once an hour
/// "to avoid bandwidth limitations on Spamhaus DBL").
#[derive(Debug)]
pub struct HourlySampler {
    interval: SimDuration,
    last_sample: Option<SimTime>,
    /// Names accepted into the sample.
    pub sampled: Vec<DomainName>,
    /// Names skipped because the interval had not elapsed.
    pub skipped: u64,
    seen_in_window: std::collections::HashSet<DomainName>,
}

impl HourlySampler {
    /// A sampler emitting at most one batch per `interval`.
    pub fn new(interval: SimDuration) -> Self {
        HourlySampler {
            interval,
            last_sample: None,
            sampled: Vec::new(),
            skipped: 0,
            seen_in_window: std::collections::HashSet::new(),
        }
    }

    /// The paper's once-an-hour sampler.
    pub fn hourly() -> Self {
        HourlySampler::new(SimDuration::from_hours(1))
    }

    /// Offer a domain observed at `ts`. Within a sampling window each
    /// distinct name is accepted once; once the window closes the next
    /// offer opens a new window.
    pub fn offer(&mut self, domain: &DomainName, ts: SimTime) -> bool {
        let window_open = match self.last_sample {
            None => true,
            Some(start) => ts.saturating_since(start) < self.interval,
        };
        if !window_open {
            // Start a new window.
            self.last_sample = Some(ts);
            self.seen_in_window.clear();
        } else if self.last_sample.is_none() {
            self.last_sample = Some(ts);
        }
        if self.seen_in_window.insert(domain.clone()) {
            self.sampled.push(domain.clone());
            true
        } else {
            self.skipped += 1;
            false
        }
    }

    /// Number of distinct names sampled so far.
    pub fn len(&self) -> usize {
        self.sampled.len()
    }

    /// Has nothing been sampled yet?
    pub fn is_empty(&self) -> bool {
        self.sampled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocklist() -> Blocklist {
        let mut bl = Blocklist::new();
        bl.add(
            DomainName::literal("spamhub.example"),
            BlocklistCategory::Spam,
        );
        bl.add(
            DomainName::literal("cc-node3.bad.example"),
            BlocklistCategory::BotnetCc,
        );
        bl.add(
            DomainName::literal("dropper.example"),
            BlocklistCategory::Malware,
        );
        bl
    }

    #[test]
    fn exact_and_subdomain_matches() {
        let mut bl = blocklist();
        assert_eq!(
            bl.lookup(&DomainName::literal("spamhub.example")),
            Some(BlocklistCategory::Spam)
        );
        assert_eq!(
            bl.lookup(&DomainName::literal("promo.spamhub.example")),
            Some(BlocklistCategory::Spam)
        );
        assert_eq!(
            bl.lookup(&DomainName::literal("cc-node3.bad.example")),
            Some(BlocklistCategory::BotnetCc)
        );
        assert_eq!(bl.lookup(&DomainName::literal("benign.example")), None);
        assert_eq!(bl.lookups, 4);
    }

    #[test]
    fn parent_listing_does_not_leak_sideways() {
        let mut bl = blocklist();
        // "bad.example" itself is not listed, only cc-node3.bad.example.
        assert_eq!(bl.lookup(&DomainName::literal("bad.example")), None);
        assert_eq!(bl.lookup(&DomainName::literal("other.bad.example")), None);
    }

    #[test]
    fn category_counts() {
        let bl = blocklist();
        let counts = bl.category_counts();
        assert_eq!(counts[&BlocklistCategory::Spam], 1);
        assert_eq!(counts[&BlocklistCategory::BotnetCc], 1);
        assert_eq!(counts[&BlocklistCategory::Malware], 1);
        assert_eq!(bl.len(), 3);
        assert!(!bl.is_empty());
    }

    #[test]
    fn hourly_sampler_dedups_within_window() {
        let mut sampler = HourlySampler::hourly();
        let a = DomainName::literal("a.example");
        let b = DomainName::literal("b.example");
        assert!(sampler.offer(&a, SimTime::from_secs(0)));
        assert!(!sampler.offer(&a, SimTime::from_secs(10)));
        assert!(sampler.offer(&b, SimTime::from_secs(20)));
        assert_eq!(sampler.len(), 2);
        assert_eq!(sampler.skipped, 1);
        // A new window re-admits the same name.
        assert!(sampler.offer(&a, SimTime::from_secs(3_700)));
        assert_eq!(sampler.len(), 3);
        assert!(!sampler.is_empty());
    }
}
