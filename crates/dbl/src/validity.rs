//! RFC 1035 domain-name validity analysis (Section 5, Invalid Domain
//! Names).
//!
//! The paper checks three rules:
//!
//! 1. the total length of the domain name is 255 bytes or less,
//! 2. each label is limited to 63 bytes,
//! 3. each label starts with a letter, ends with a letter or digit, and
//!    interior characters are limited to letters, digits and hyphens.
//!
//! It reports that 666k names per day violate at least one rule, that the
//! most common violation is a disallowed interior character, and that the
//! most common disallowed character (87% of malformed names) is the
//! underscore. [`validate_domain`] produces the per-name breakdown;
//! [`ValidityStats`] aggregates it over a trace.

use std::collections::HashMap;

use flowdns_types::domain::{DomainName, MAX_LABEL_LEN, MAX_NAME_LEN};

/// One rule violation found in a domain name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RuleViolation {
    /// Rule 1: the whole name exceeds 255 bytes.
    NameTooLong {
        /// Actual length in bytes.
        length: usize,
    },
    /// Rule 2: a label exceeds 63 bytes.
    LabelTooLong {
        /// The offending label length.
        length: usize,
    },
    /// Rule 3: a label starts with a character that is not a letter.
    BadLeadingCharacter {
        /// The offending character.
        character: char,
    },
    /// Rule 3: a label ends with a character that is not a letter/digit.
    BadTrailingCharacter {
        /// The offending character.
        character: char,
    },
    /// Rule 3: a label contains a disallowed interior character.
    DisallowedCharacter {
        /// The offending character.
        character: char,
    },
    /// A label is empty (consecutive dots).
    EmptyLabel,
}

/// The validity report for one domain name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidityReport {
    /// Every violation found (possibly several per name).
    pub violations: Vec<RuleViolation>,
}

impl ValidityReport {
    /// Does the name satisfy all three rules?
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// Does any violation involve an underscore character?
    pub fn has_underscore(&self) -> bool {
        self.violations.iter().any(|v| {
            matches!(
                v,
                RuleViolation::DisallowedCharacter { character: '_' }
                    | RuleViolation::BadLeadingCharacter { character: '_' }
                    | RuleViolation::BadTrailingCharacter { character: '_' }
            )
        })
    }
}

/// Check a domain name against the three RFC 1035 rules.
pub fn validate_domain(domain: &DomainName) -> ValidityReport {
    let mut report = ValidityReport::default();
    if domain.len() > MAX_NAME_LEN {
        report.violations.push(RuleViolation::NameTooLong {
            length: domain.len(),
        });
    }
    for label in domain.labels() {
        if label.is_empty() {
            report.violations.push(RuleViolation::EmptyLabel);
            continue;
        }
        if label.len() > MAX_LABEL_LEN {
            report.violations.push(RuleViolation::LabelTooLong {
                length: label.len(),
            });
        }
        let chars: Vec<char> = label.chars().collect();
        let first = chars[0];
        let last = chars[chars.len() - 1];
        if !first.is_ascii_alphabetic() {
            report
                .violations
                .push(RuleViolation::BadLeadingCharacter { character: first });
        }
        if !last.is_ascii_alphanumeric() {
            report
                .violations
                .push(RuleViolation::BadTrailingCharacter { character: last });
        }
        for c in &chars {
            if !c.is_ascii_alphanumeric() && *c != '-' {
                report
                    .violations
                    .push(RuleViolation::DisallowedCharacter { character: *c });
            }
        }
    }
    report
}

/// Aggregated validity statistics over many names.
#[derive(Debug, Clone, Default)]
pub struct ValidityStats {
    /// Names examined.
    pub total: u64,
    /// Names violating at least one rule.
    pub invalid: u64,
    /// Invalid names containing an underscore.
    pub with_underscore: u64,
    /// Count of names per violation kind (a name counts once per kind).
    pub by_kind: HashMap<&'static str, u64>,
}

impl ValidityStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        ValidityStats::default()
    }

    /// Examine one name and fold its report into the statistics.
    pub fn observe(&mut self, domain: &DomainName) -> ValidityReport {
        let report = validate_domain(domain);
        self.total += 1;
        if !report.is_valid() {
            self.invalid += 1;
            if report.has_underscore() {
                self.with_underscore += 1;
            }
            let mut kinds: Vec<&'static str> = report.violations.iter().map(kind_label).collect();
            kinds.sort_unstable();
            kinds.dedup();
            for kind in kinds {
                *self.by_kind.entry(kind).or_insert(0) += 1;
            }
        }
        report
    }

    /// Share of examined names that are invalid (the paper: 1.7% of all
    /// names).
    pub fn invalid_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.invalid as f64 / self.total as f64
        }
    }

    /// Share of invalid names containing an underscore (the paper: 87%).
    pub fn underscore_share(&self) -> f64 {
        if self.invalid == 0 {
            0.0
        } else {
            self.with_underscore as f64 / self.invalid as f64
        }
    }

    /// The most common violation kind, if any names were invalid.
    pub fn most_common_kind(&self) -> Option<&'static str> {
        self.by_kind
            .iter()
            .max_by_key(|(_, count)| **count)
            .map(|(kind, _)| *kind)
    }
}

fn kind_label(v: &RuleViolation) -> &'static str {
    match v {
        RuleViolation::NameTooLong { .. } => "name-too-long",
        RuleViolation::LabelTooLong { .. } => "label-too-long",
        RuleViolation::BadLeadingCharacter { .. } => "bad-leading-character",
        RuleViolation::BadTrailingCharacter { .. } => "bad-trailing-character",
        RuleViolation::DisallowedCharacter { .. } => "disallowed-character",
        RuleViolation::EmptyLabel => "empty-label",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names_pass() {
        for name in ["example.com", "a-b-c.example", "xn--idn.example.org"] {
            let report = validate_domain(&DomainName::literal(name));
            assert!(report.is_valid(), "{name} should be valid: {report:?}");
        }
    }

    #[test]
    fn underscore_is_a_disallowed_interior_character() {
        let report = validate_domain(&DomainName::literal("_dmarc.example.com"));
        assert!(!report.is_valid());
        assert!(report.has_underscore());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, RuleViolation::DisallowedCharacter { character: '_' })));
    }

    #[test]
    fn length_rules_are_checked() {
        let long_label = format!("{}.example", "a".repeat(70));
        let report = validate_domain(&DomainName::literal(&long_label));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, RuleViolation::LabelTooLong { length: 70 })));

        let long_name = vec!["abcdefghij"; 30].join(".");
        let report = validate_domain(&DomainName::literal(&long_name));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, RuleViolation::NameTooLong { .. })));
    }

    #[test]
    fn leading_and_trailing_rules_are_checked() {
        let report = validate_domain(&DomainName::literal("1start.example"));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, RuleViolation::BadLeadingCharacter { character: '1' })));
        let report = validate_domain(&DomainName::literal("bad-.example"));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, RuleViolation::BadTrailingCharacter { character: '-' })));
        let report = validate_domain(&DomainName::literal("a..example"));
        assert!(report.violations.contains(&RuleViolation::EmptyLabel));
    }

    #[test]
    fn stats_aggregate_shares() {
        let mut stats = ValidityStats::new();
        // 87 underscore names, 13 other violations, 900 valid names.
        for i in 0..87 {
            stats.observe(&DomainName::literal(&format!("host_name{i}.example")));
        }
        for i in 0..13 {
            stats.observe(&DomainName::literal(&format!("{i}lead.example")));
        }
        for i in 0..900 {
            stats.observe(&DomainName::literal(&format!("ok{i}.example")));
        }
        assert_eq!(stats.total, 1000);
        assert_eq!(stats.invalid, 100);
        assert!((stats.invalid_share() - 0.1).abs() < 1e-9);
        assert!((stats.underscore_share() - 0.87).abs() < 1e-9);
        assert_eq!(stats.most_common_kind(), Some("disallowed-character"));
    }

    #[test]
    fn empty_stats_have_zero_shares() {
        let stats = ValidityStats::new();
        assert_eq!(stats.invalid_share(), 0.0);
        assert_eq!(stats.underscore_share(), 0.0);
        assert_eq!(stats.most_common_kind(), None);
    }
}
