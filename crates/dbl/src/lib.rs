//! # flowdns-dbl
//!
//! Domain blocklist and domain-name validity substrate.
//!
//! Section 5 of the paper checks the domain names FlowDNS correlates
//! against the Spamhaus DBL (spam, botnet C&C, abused redirectors,
//! malware, phishing) and against three RFC 1035 syntax rules. This crate
//! provides both pieces:
//!
//! * [`blocklist`] — an in-memory domain blocklist with category labels,
//!   exact and subdomain matching, and the hourly sampling helper the
//!   paper uses to avoid hammering the external service;
//! * [`validity`] — the RFC 1035 rule checker with per-rule breakdown
//!   (total length, label length, character rules) and the "which
//!   disallowed character" statistic dominated by underscores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocklist;
pub mod validity;

pub use blocklist::{Blocklist, BlocklistCategory, HourlySampler};
pub use validity::{validate_domain, RuleViolation, ValidityReport, ValidityStats};
