//! Memory accounting.
//!
//! The paper's Figures 2b and 3b plot resident memory of the correlator.
//! We cannot (portably and cheaply) read RSS from inside the process for
//! every variant, and the absolute number would be dominated by the Rust
//! allocator anyway — what matters for reproducing the figures' *shape* is
//! how the number of retained DNS records evolves under each clear-up
//! policy. [`MemoryEstimate`] converts entry counts and string sizes into
//! estimated bytes using fixed per-entry overheads, so the week-long and
//! ablation runs produce comparable memory curves.

/// Estimated bytes of hashmap overhead per entry (bucket slot, hashes,
/// `Arc` allocations for the interned strings).
pub const ENTRY_OVERHEAD_BYTES: usize = 96;

/// A running memory estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Number of stored entries.
    pub entries: usize,
    /// Total payload bytes (key + value string lengths).
    pub payload_bytes: usize,
}

impl MemoryEstimate {
    /// An empty estimate.
    pub fn new() -> Self {
        MemoryEstimate::default()
    }

    /// Account for one entry whose key and value have the given lengths.
    pub fn add_entry(&mut self, key_len: usize, value_len: usize) {
        self.entries += 1;
        self.payload_bytes += key_len + value_len;
    }

    /// Merge another estimate into this one.
    pub fn merge(&mut self, other: MemoryEstimate) {
        self.entries += other.entries;
        self.payload_bytes += other.payload_bytes;
    }

    /// Estimated total bytes.
    pub fn total_bytes(&self) -> usize {
        self.entries * ENTRY_OVERHEAD_BYTES + self.payload_bytes
    }

    /// Estimated total in gigabytes.
    pub fn total_gb(&self) -> f64 {
        self.total_bytes() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_entries_and_payload() {
        let mut m = MemoryEstimate::new();
        m.add_entry(15, 30);
        m.add_entry(7, 20);
        assert_eq!(m.entries, 2);
        assert_eq!(m.payload_bytes, 72);
        assert_eq!(m.total_bytes(), 2 * ENTRY_OVERHEAD_BYTES + 72);
    }

    #[test]
    fn merge_combines() {
        let mut a = MemoryEstimate::new();
        a.add_entry(10, 10);
        let mut b = MemoryEstimate::new();
        b.add_entry(5, 5);
        a.merge(b);
        assert_eq!(a.entries, 2);
        assert_eq!(a.payload_bytes, 30);
    }

    #[test]
    fn gigabyte_conversion() {
        let m = MemoryEstimate {
            entries: 0,
            payload_bytes: 2_000_000_000,
        };
        assert!((m.total_gb() - 2.0).abs() < 1e-9);
    }
}
