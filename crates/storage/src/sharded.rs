//! A lock-striped concurrent hashmap.
//!
//! This is the Rust equivalent of the Go `concurrent-map` module the paper
//! uses: the key space is split across `N` shards, each protected by its
//! own `RwLock`, "which allows for high-performance concurrent reads and
//! writes by sharding the map". Reads take a shard read lock; writes take
//! a shard write lock; bulk operations (`clear`, `retain`, snapshots) go
//! shard by shard so they never hold the whole map.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::RwLock;

/// Default number of shards (matches the Go concurrent-map default of 32).
pub const DEFAULT_SHARD_COUNT: usize = 32;

/// A concurrent hashmap with per-shard locking.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new(DEFAULT_SHARD_COUNT)
    }
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Create a map with `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        assert!(shard_count > 0, "shard count must be positive");
        ShardedMap {
            shards: (0..shard_count)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index<Q>(&self, key: &Q) -> usize
    where
        Q: Hash + ?Sized,
    {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Insert a key/value pair, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let idx = self.shard_index(&key);
        self.shards[idx].write().insert(key, value)
    }

    /// Remove a key, returning its value if present.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = self.shard_index(key);
        self.shards[idx].write().remove(key)
    }

    /// Is the key present?
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = self.shard_index(key);
        self.shards[idx].read().contains_key(key)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Remove every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Keep only the entries for which `pred` returns true.
    pub fn retain<F>(&self, mut pred: F)
    where
        F: FnMut(&K, &V) -> bool,
    {
        for shard in &self.shards {
            shard.write().retain(|k, v| pred(k, v));
        }
    }

    /// Apply `f` to the value for `key`, if present, and return its result.
    pub fn with<Q, R, F>(&self, key: &Q, f: F) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        F: FnOnce(&V) -> R,
    {
        let idx = self.shard_index(key);
        self.shards[idx].read().get(key).map(f)
    }

    /// Fold every entry into an accumulator (takes each shard's read lock
    /// in turn).
    pub fn fold<A, F>(&self, init: A, mut f: F) -> A
    where
        F: FnMut(A, &K, &V) -> A,
    {
        let mut acc = init;
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// Get a clone of the value for `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = self.shard_index(key);
        self.shards[idx].read().get(key).cloned()
    }

    /// Snapshot the whole map into a plain `HashMap`.
    pub fn snapshot(&self) -> HashMap<K, V> {
        let mut out = HashMap::with_capacity(self.len());
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }

    /// Copy every entry of `self` into `other`, overwriting existing keys
    /// (the "copy the contents of the active hashmap into the inactive
    /// hashmap" operation of the clear-up step).
    pub fn copy_into(&self, other: &ShardedMap<K, V>) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                other.insert(k.clone(), v.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_get_remove() {
        let m: ShardedMap<String, u32> = ShardedMap::default();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.get("a"), Some(2));
        assert!(m.contains_key("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove("a"), Some(2));
        assert_eq!(m.get("a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn clear_and_retain() {
        let m: ShardedMap<u32, u32> = ShardedMap::new(8);
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 50);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn snapshot_and_copy_into() {
        let a: ShardedMap<u32, String> = ShardedMap::new(4);
        a.insert(1, "one".into());
        a.insert(2, "two".into());
        let b: ShardedMap<u32, String> = ShardedMap::new(16);
        b.insert(2, "old-two".into());
        b.insert(3, "three".into());
        a.copy_into(&b);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(&2).unwrap(), "two"); // overwritten by the copy
        let snap = a.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&1], "one");
    }

    #[test]
    fn with_and_fold() {
        let m: ShardedMap<&'static str, u64> = ShardedMap::new(4);
        m.insert("x", 10);
        m.insert("y", 32);
        assert_eq!(m.with("x", |v| v + 1), Some(11));
        assert_eq!(m.with("zz", |v| v + 1), None);
        let sum = m.fold(0u64, |acc, _, v| acc + v);
        assert_eq!(sum, 42);
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(16));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for i in 0..5_000u64 {
                        m.insert(t * 5_000 + i, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 40_000);
        // Concurrent readers while a writer overwrites.
        let writer = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for i in 0..5_000u64 {
                    m.insert(i, 999);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let mut found = 0;
                    for i in 0..5_000u64 {
                        if m.get(&i).is_some() {
                            found += 1;
                        }
                    }
                    found
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            assert_eq!(r.join().unwrap(), 5_000);
        }
    }

    #[test]
    #[should_panic]
    fn zero_shards_is_rejected() {
        let _ = ShardedMap::<u32, u32>::new(0);
    }
}
