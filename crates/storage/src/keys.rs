//! Key and value traits of the typed store API.
//!
//! The rotating/split/exact-TTL stores are generic over their key and
//! value types so the hot IP-NAME path can use compact [`IpKey`]s and
//! interned [`NameRef`] handles while tests and ablation harnesses keep
//! using plain strings. Beyond the obvious `Hash + Eq + Clone` bounds,
//! the stores need one extra capability: estimating the bytes an entry
//! retains, which feeds [`crate::memory::MemoryEstimate`] and the
//! paper's memory figures.

use std::hash::Hash;

use flowdns_types::{DomainName, IpKey, NameRef};

/// A type usable as a store key: hashable, comparable, cheap to clone,
/// and able to report its retained payload size.
pub trait StoreKey: Hash + Eq + Clone + Send + Sync + 'static {
    /// Estimated bytes of payload this key retains (string length for
    /// textual keys, address width for [`IpKey`]s). Excludes hashmap
    /// overhead, which [`crate::memory::ENTRY_OVERHEAD_BYTES`] covers.
    fn estimate_bytes(&self) -> usize;
}

/// A type usable as a store value: cheap to clone (values are cloned on
/// every lookup hit and rotation copy) and size-accountable.
pub trait StoreValue: Clone + Send + Sync + 'static {
    /// Estimated bytes of payload this value retains.
    fn estimate_bytes(&self) -> usize;
}

impl StoreKey for String {
    fn estimate_bytes(&self) -> usize {
        self.len()
    }
}

impl StoreValue for String {
    fn estimate_bytes(&self) -> usize {
        self.len()
    }
}

impl StoreKey for IpKey {
    fn estimate_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl StoreKey for NameRef {
    // Interned handles share one allocation across every clone; charging
    // the full text length per entry over-counts shared bytes but keeps
    // the estimate comparable with the string-keyed baseline.
    fn estimate_bytes(&self) -> usize {
        self.len()
    }
}

impl StoreValue for NameRef {
    fn estimate_bytes(&self) -> usize {
        self.len()
    }
}

impl StoreKey for DomainName {
    fn estimate_bytes(&self) -> usize {
        self.len()
    }
}

impl StoreValue for DomainName {
    fn estimate_bytes(&self) -> usize {
        self.len()
    }
}

macro_rules! impl_for_ints {
    ($($t:ty),*) => {
        $(
            impl StoreKey for $t {
                fn estimate_bytes(&self) -> usize {
                    std::mem::size_of::<$t>()
                }
            }
            impl StoreValue for $t {
                fn estimate_bytes(&self) -> usize {
                    std::mem::size_of::<$t>()
                }
            }
        )*
    };
}

impl_for_ints!(u8, u16, u32, u64, u128, usize);

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key_bytes<K: StoreKey>(key: &K) -> usize {
        key.estimate_bytes()
    }

    fn value_bytes<V: StoreValue>(value: &V) -> usize {
        value.estimate_bytes()
    }

    #[test]
    fn estimates_track_payload_width() {
        assert_eq!(key_bytes(&"1.2.3.4".to_string()), 7);
        assert_eq!(value_bytes(&"1.2.3.4".to_string()), 7);
        assert_eq!(key_bytes(&IpKey::from(Ipv4Addr::new(1, 2, 3, 4))), 4);
        assert_eq!(
            key_bytes(&IpKey::from_ip("2001:db8::1".parse().unwrap())),
            16
        );
        assert_eq!(value_bytes(&NameRef::new("cdn.example")), 11);
        assert_eq!(key_bytes(&DomainName::literal("a.example")), 9);
        assert_eq!(key_bytes(&7u32), 4);
        assert_eq!(value_bytes(&7u64), 8);
    }
}
