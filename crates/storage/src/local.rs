//! Single-owner mirrors of the rotating/split stores for the sharded
//! correlator.
//!
//! The shared [`RotatingStore`](crate::RotatingStore) pays a lock-stripe
//! acquisition per map touch and a clock/stats mutex per record — fine
//! when many workers share one store, pure overhead when a correlator
//! shard is the *only* writer and reader of its partition. These mirrors
//! take `&mut self` and use plain `HashMap`s: zero locks, zero atomics,
//! identical semantics (clock arming, rotation boundaries, long-map
//! routing, lookup cascade, import aging) and the same
//! [`GenerationsImage`] snapshot currency, so a partition can be
//! exported by the snapshot thread and re-imported on warm restart — or
//! even moved between the shared and local implementations.
//!
//! Behavioural parity with the shared stores is pinned by the
//! `local_mirrors_shared_store` test below, which drives both through a
//! randomized schedule and compares every observable.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

use flowdns_types::{FlowDnsError, SimDuration, SimTime};

use crate::keys::{StoreKey, StoreValue};
use crate::memory::MemoryEstimate;
use crate::rotating::{Generation, GenerationsImage, RotatingStoreStats, RotationPolicy};

/// A single-owner Active/Inactive/Long store: the `&mut` twin of
/// [`RotatingStore`](crate::RotatingStore).
#[derive(Debug)]
pub struct LocalRotatingStore<K: StoreKey, V: StoreValue> {
    policy: RotationPolicy,
    active: HashMap<K, V>,
    inactive: HashMap<K, V>,
    long: HashMap<K, V>,
    last_clear_ts: Option<SimTime>,
    last_seen_ts: Option<SimTime>,
    stats: RotatingStoreStats,
}

impl<K: StoreKey, V: StoreValue> LocalRotatingStore<K, V> {
    /// Create an empty store with the given policy.
    pub fn new(policy: RotationPolicy) -> Self {
        LocalRotatingStore {
            policy,
            active: HashMap::default(),
            inactive: HashMap::default(),
            long: HashMap::default(),
            last_clear_ts: None,
            last_seen_ts: None,
            stats: RotatingStoreStats::default(),
        }
    }

    /// The store's policy.
    pub fn policy(&self) -> RotationPolicy {
        self.policy
    }

    /// Insert a record observed at `ts` with the given TTL: clear-up
    /// check first (Algorithm 1), then Active or Long by TTL.
    pub fn insert(&mut self, key: K, value: V, ttl: u32, ts: SimTime) {
        self.maybe_clear_up(ts);
        let goes_long = self.policy.long_maps
            && SimDuration::from_secs(ttl as u64) >= self.policy.clear_up_interval;
        if goes_long {
            self.long.insert(key, value);
            self.stats.long_inserts += 1;
        } else {
            self.active.insert(key, value);
            self.stats.active_inserts += 1;
        }
    }

    /// Advance the clear-up clock without inserting.
    pub fn observe_time(&mut self, ts: SimTime) {
        self.maybe_clear_up(ts);
    }

    fn maybe_clear_up(&mut self, ts: SimTime) {
        if !self.policy.clear_up {
            return;
        }
        if self.last_seen_ts.map_or(true, |last| ts > last) {
            self.last_seen_ts = Some(ts);
        }
        match self.last_clear_ts {
            None => self.last_clear_ts = Some(ts),
            Some(last) => {
                if ts.saturating_since(last) >= self.policy.clear_up_interval {
                    if self.policy.rotation {
                        self.stats.rotated_entries += self.active.len() as u64;
                        // Moving Active wholesale is the single-owner
                        // shortcut for "clear Inactive, copy Active in,
                        // clear Active" — same end state, no clones.
                        self.inactive = std::mem::take(&mut self.active);
                    } else {
                        self.active.clear();
                    }
                    self.stats.clear_ups += 1;
                    self.last_clear_ts = Some(ts);
                }
            }
        }
    }

    /// The `deepLookUp` of Algorithm 2: Active → Inactive → Long.
    pub fn lookup<Q>(&mut self, key: &Q) -> Option<(V, Generation)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if let Some(v) = self.active.get(key) {
            self.stats.hits.0 += 1;
            return Some((v.clone(), Generation::Active));
        }
        if self.policy.rotation {
            if let Some(v) = self.inactive.get(key) {
                self.stats.hits.1 += 1;
                return Some((v.clone(), Generation::Inactive));
            }
        }
        if self.policy.long_maps {
            if let Some(v) = self.long.get(key) {
                self.stats.hits.2 += 1;
                return Some((v.clone(), Generation::Long));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Insert directly into Active without the clear-up check (CNAME
    /// memoization).
    pub fn memoize(&mut self, key: K, value: V) {
        self.active.insert(key, value);
    }

    /// Entry counts per generation: (active, inactive, long).
    pub fn entry_counts(&self) -> (usize, usize, usize) {
        (self.active.len(), self.inactive.len(), self.long.len())
    }

    /// Total entries across generations.
    pub fn total_entries(&self) -> usize {
        self.active.len() + self.inactive.len() + self.long.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RotatingStoreStats {
        self.stats
    }

    /// Export generations and clock as a plain-data image. Unlike the
    /// shared store there is nothing to fence against: the caller holds
    /// the only handle.
    pub fn export_image(&self) -> GenerationsImage<K, V> {
        let collect = |map: &HashMap<K, V>| {
            map.iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect::<Vec<_>>()
        };
        GenerationsImage {
            last_clear_ts: self.last_clear_ts,
            last_seen_ts: self.last_seen_ts,
            active: collect(&self.active),
            inactive: collect(&self.inactive),
            long: collect(&self.long),
        }
    }

    /// Import an image exported earlier, aging its generations to `now`
    /// exactly as [`RotatingStore::import_image`](crate::RotatingStore::import_image)
    /// does: same window → verbatim with a resumed clock, one missed
    /// rotation → Active demotes to Inactive, older → Long only.
    pub fn import_image(&mut self, image: GenerationsImage<K, V>, now: SimTime) {
        let GenerationsImage {
            last_clear_ts,
            last_seen_ts,
            mut active,
            inactive,
            mut long,
        } = image;
        if !self.policy.long_maps {
            active.append(&mut long);
        }
        let anchor = last_clear_ts.or(last_seen_ts);
        let elapsed = match (self.policy.clear_up, anchor) {
            (false, _) | (_, None) => SimDuration::ZERO,
            (true, Some(anchor)) => now.saturating_since(anchor),
        };
        let interval = self.policy.clear_up_interval;
        if self.last_seen_ts.map_or(true, |cur| cur < now) {
            self.last_seen_ts = Some(now);
        }
        if elapsed < interval {
            self.active.extend(active);
            if self.policy.rotation {
                self.inactive.extend(inactive);
            }
            if self.last_clear_ts.is_none() {
                self.last_clear_ts = anchor;
            }
        } else if self.policy.rotation && elapsed < interval + interval {
            self.inactive.extend(active);
            if self.last_clear_ts.map_or(true, |cur| cur < now) {
                self.last_clear_ts = Some(now);
            }
        } else if self.last_clear_ts.map_or(true, |cur| cur < now) {
            self.last_clear_ts = Some(now);
        }
        self.long.extend(long);
    }

    /// Estimate the memory held by the store.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut est = MemoryEstimate::new();
        for map in [&self.active, &self.inactive, &self.long] {
            for (k, v) in map {
                est.add_entry(k.estimate_bytes(), v.estimate_bytes());
            }
        }
        est
    }
}

/// A single-owner set of `num_split` rotating stores: the `&mut` twin of
/// [`SplitStore`](crate::SplitStore), with the identical label function
/// so split membership survives moves between the two implementations.
#[derive(Debug)]
pub struct LocalSplitStore<K: StoreKey, V: StoreValue> {
    splits: Vec<LocalRotatingStore<K, V>>,
}

impl<K: StoreKey, V: StoreValue> LocalSplitStore<K, V> {
    /// Create `num_split` stores with the given policy.
    pub fn new(policy: RotationPolicy, num_split: usize) -> Self {
        assert!(num_split > 0, "num_split must be positive");
        LocalSplitStore {
            splits: (0..num_split)
                .map(|_| LocalRotatingStore::new(policy))
                .collect(),
        }
    }

    /// Number of splits.
    pub fn num_split(&self) -> usize {
        self.splits.len()
    }

    /// The label function of Algorithm 1/2 — byte-for-byte the same hash
    /// as [`SplitStore::label`](crate::SplitStore::label).
    pub fn label<Q>(&self, key: &Q) -> usize
    where
        Q: Hash + ?Sized,
    {
        use std::hash::Hasher;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.splits.len() as u64) as usize
    }

    /// Access a split by label (for tests and diagnostics).
    pub fn split(&self, label: usize) -> &LocalRotatingStore<K, V> {
        &self.splits[label]
    }

    /// Insert a record into the split chosen by its key label.
    pub fn insert(&mut self, key: K, value: V, ttl: u32, ts: SimTime) {
        let label = self.label(&key);
        self.splits[label].insert(key, value, ttl, ts);
    }

    /// Advance the clear-up clock of every split.
    pub fn observe_time(&mut self, ts: SimTime) {
        for split in &mut self.splits {
            split.observe_time(ts);
        }
    }

    /// Look a key up in its split (Active → Inactive → Long).
    pub fn lookup<Q>(&mut self, key: &Q) -> Option<(V, Generation)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let label = self.label(key);
        self.splits[label].lookup(key)
    }

    /// Memoize a derived mapping into the Active map of the key's split.
    pub fn memoize(&mut self, key: K, value: V) {
        let label = self.label(&key);
        self.splits[label].memoize(key, value);
    }

    /// Total entries across all splits and generations.
    pub fn total_entries(&self) -> usize {
        self.splits.iter().map(|s| s.total_entries()).sum()
    }

    /// Aggregate statistics across splits.
    pub fn stats(&self) -> RotatingStoreStats {
        let mut agg = RotatingStoreStats::default();
        for s in self.splits.iter().map(|s| s.stats()) {
            agg.active_inserts += s.active_inserts;
            agg.long_inserts += s.long_inserts;
            agg.clear_ups += s.clear_ups;
            agg.rotated_entries += s.rotated_entries;
            agg.hits.0 += s.hits.0;
            agg.hits.1 += s.hits.1;
            agg.hits.2 += s.hits.2;
            agg.misses += s.misses;
        }
        agg
    }

    /// Export every split's generations in split-label order.
    pub fn export_images(&self) -> Vec<GenerationsImage<K, V>> {
        self.splits.iter().map(|s| s.export_image()).collect()
    }

    /// Import previously exported split images, aging each to `now`.
    /// The image count must match this store's split count, exactly as
    /// [`SplitStore::import_images`](crate::SplitStore::import_images)
    /// requires.
    pub fn import_images(
        &mut self,
        images: Vec<GenerationsImage<K, V>>,
        now: SimTime,
    ) -> Result<(), FlowDnsError> {
        if images.len() != self.splits.len() {
            return Err(FlowDnsError::Snapshot(format!(
                "snapshot has {} splits, this store is configured for {} \
                 (num_split changed between runs?)",
                images.len(),
                self.splits.len()
            )));
        }
        for (split, image) in self.splits.iter_mut().zip(images) {
            split.import_image(image, now);
        }
        Ok(())
    }

    /// Aggregate memory estimate across splits.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut est = MemoryEstimate::new();
        for s in &self.splits {
            est.merge(s.memory_estimate());
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotating::RotatingStore;
    use crate::split::SplitStore;

    fn policy(secs: u64) -> RotationPolicy {
        RotationPolicy {
            clear_up_interval: SimDuration::from_secs(secs),
            clear_up: true,
            rotation: true,
            long_maps: true,
        }
    }

    /// Drive the local and shared stores through the same schedule and
    /// compare every observable after each step. This is the parity
    /// contract the sharded correlator relies on.
    #[test]
    fn local_mirrors_shared_store() {
        for variant in 0..4usize {
            let mut p = policy(100);
            match variant {
                1 => p.rotation = false,
                2 => p.long_maps = false,
                3 => p.clear_up = false,
                _ => {}
            }
            let mut local: LocalRotatingStore<String, String> = LocalRotatingStore::new(p);
            let shared: RotatingStore<String, String> = RotatingStore::new(p, 4);
            // Deterministic pseudo-random schedule (xorshift).
            let mut x = 0x9e3779b97f4a7c15u64 ^ variant as u64;
            let mut step = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for i in 0..2000u64 {
                let ts = SimTime::from_secs(i * 7 % 1000 + i / 2);
                match step() % 5 {
                    0 | 1 => {
                        let key = format!("k{}", step() % 64);
                        let ttl = if step() % 4 == 0 { 86_400 } else { 30 };
                        local.insert(key.clone(), format!("v{i}"), ttl, ts);
                        shared.insert(key, format!("v{i}"), ttl, ts);
                    }
                    2 => {
                        let key = format!("k{}", step() % 64);
                        assert_eq!(local.lookup(&key), shared.lookup(key.as_str()));
                    }
                    3 => {
                        local.observe_time(ts);
                        shared.observe_time(ts);
                    }
                    _ => {
                        let key = format!("m{}", step() % 16);
                        local.memoize(key.clone(), "memo".into());
                        shared.memoize(key, "memo".into());
                    }
                }
                assert_eq!(
                    local.entry_counts(),
                    shared.entry_counts(),
                    "variant {variant} step {i}"
                );
                assert_eq!(local.stats(), shared.stats(), "variant {variant} step {i}");
            }
            let li = local.export_image();
            let si = shared.export_image();
            assert_eq!(li.last_clear_ts, si.last_clear_ts);
            assert_eq!(li.last_seen_ts, si.last_seen_ts);
            let sorted = |mut v: Vec<(String, String)>| {
                v.sort();
                v
            };
            assert_eq!(sorted(li.active), sorted(si.active));
            assert_eq!(sorted(li.inactive), sorted(si.inactive));
            assert_eq!(sorted(li.long), sorted(si.long));
        }
    }

    #[test]
    fn export_import_round_trips_across_implementations() {
        let mut local: LocalRotatingStore<String, String> = LocalRotatingStore::new(policy(3600));
        local.insert("a".into(), "v-a".into(), 60, SimTime::from_secs(0));
        local.insert("b".into(), "v-b".into(), 86_400, SimTime::from_secs(10));
        local.insert("c".into(), "v-c".into(), 60, SimTime::from_secs(3600)); // rotates a
        let image = local.export_image();

        // Local image into a shared store…
        let shared: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        shared.import_image(image.clone(), SimTime::from_secs(3700));
        assert_eq!(shared.lookup("a").unwrap().1, Generation::Inactive);
        assert_eq!(shared.lookup("b").unwrap().1, Generation::Long);
        assert_eq!(shared.lookup("c").unwrap().1, Generation::Active);

        // …and a shared image into a local store, one missed rotation.
        let back = shared.export_image();
        let mut aged: LocalRotatingStore<String, String> = LocalRotatingStore::new(policy(3600));
        aged.import_image(back, SimTime::from_secs(3600 + 5400));
        assert_eq!(aged.lookup("c").unwrap().1, Generation::Inactive);
        assert_eq!(aged.lookup("a"), None);
        assert_eq!(aged.lookup("b").unwrap().1, Generation::Long);
    }

    #[test]
    fn split_label_matches_shared_split_store() {
        let local: LocalSplitStore<String, String> = LocalSplitStore::new(policy(3600), 10);
        let shared: SplitStore<String, String> = SplitStore::new(policy(3600), 10, 4);
        for i in 0..500 {
            let key = format!("198.51.100.{i}");
            assert_eq!(local.label(&key), shared.label(&key));
        }
    }

    #[test]
    fn split_store_routes_and_round_trips() {
        let mut s: LocalSplitStore<String, String> = LocalSplitStore::new(policy(3600), 10);
        for i in 0..200 {
            s.insert(
                format!("198.51.100.{i}"),
                format!("host{i}.example"),
                if i % 3 == 0 { 86_400 } else { 60 },
                SimTime::from_secs(10),
            );
        }
        assert_eq!(s.total_entries(), 200);
        let images = s.export_images();
        assert_eq!(images.len(), 10);

        let mut restored: LocalSplitStore<String, String> = LocalSplitStore::new(policy(3600), 10);
        restored
            .import_images(images, SimTime::from_secs(20))
            .unwrap();
        for i in 0..200 {
            let key = format!("198.51.100.{i}");
            assert_eq!(restored.lookup(&key).unwrap().0, format!("host{i}.example"));
        }
        assert_eq!(restored.memory_estimate().entries, 200);
    }

    #[test]
    fn split_import_rejects_mismatched_counts() {
        let s: LocalSplitStore<String, String> = LocalSplitStore::new(policy(3600), 10);
        let images = s.export_images();
        let mut other: LocalSplitStore<String, String> = LocalSplitStore::new(policy(3600), 4);
        assert!(matches!(
            other.import_images(images, SimTime::ZERO),
            Err(FlowDnsError::Snapshot(_))
        ));
    }

    #[test]
    fn observe_time_rotates_every_split() {
        let mut s: LocalSplitStore<String, String> = LocalSplitStore::new(policy(100), 4);
        for i in 0..40 {
            s.insert(format!("k{i}"), "v".into(), 60, SimTime::ZERO);
        }
        s.observe_time(SimTime::from_secs(7200));
        assert_eq!(s.stats().clear_ups, 4);
        assert!(matches!(s.lookup("k0"), Some((_, Generation::Inactive))));
    }
}
