//! Split stores: NUM_SPLIT independent rotating stores.
//!
//! Step 4 of the DNS processing labels each A/AAAA record by its IP
//! address ("If ... the IP for an A/AAAA response gets the label n,
//! 0 ≤ n < 10, it goes to IP-NAMEn"), and the LookUp workers consult only
//! the split matching a flow's source IP. Splitting "isolates each split
//! as much as possible" so concurrent LookUp workers contend on different
//! maps. The *No Split* ablation is simply `num_split = 1`.

use std::borrow::Borrow;
use std::hash::Hash;

use flowdns_types::{FlowDnsError, SimTime};

use crate::keys::{StoreKey, StoreValue};
use crate::memory::MemoryEstimate;
use crate::rotating::{
    Generation, GenerationsImage, RotatingStore, RotatingStoreStats, RotationPolicy,
};

/// The paper's empirically chosen number of splits.
pub const DEFAULT_NUM_SPLIT: usize = 10;

/// A set of `num_split` rotating stores indexed by a key label.
#[derive(Debug)]
pub struct SplitStore<K: StoreKey, V: StoreValue> {
    splits: Vec<RotatingStore<K, V>>,
}

impl<K: StoreKey, V: StoreValue> SplitStore<K, V> {
    /// Create `num_split` stores, each with `shards` shards and the given
    /// policy.
    pub fn new(policy: RotationPolicy, num_split: usize, shards: usize) -> Self {
        assert!(num_split > 0, "num_split must be positive");
        SplitStore {
            splits: (0..num_split)
                .map(|_| RotatingStore::new(policy, shards))
                .collect(),
        }
    }

    /// Number of splits.
    pub fn num_split(&self) -> usize {
        self.splits.len()
    }

    /// The label function of Algorithm 1/2: a stable hash of the key,
    /// reduced to `0..num_split`. The same function labels A/AAAA answers
    /// on insert and flow source IPs on lookup, so both sides agree; any
    /// borrowed form of the key hashes identically (the `Borrow`
    /// contract).
    pub fn label<Q>(&self, key: &Q) -> usize
    where
        Q: Hash + ?Sized,
    {
        use std::hash::Hasher;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.splits.len() as u64) as usize
    }

    /// Access a split by label (for tests and diagnostics).
    pub fn split(&self, label: usize) -> &RotatingStore<K, V> {
        &self.splits[label]
    }

    /// Insert a record into the split chosen by its key label.
    pub fn insert(&self, key: K, value: V, ttl: u32, ts: SimTime) {
        let label = self.label(&key);
        self.splits[label].insert(key, value, ttl, ts);
    }

    /// Advance the clear-up clock of every split.
    pub fn observe_time(&self, ts: SimTime) {
        for split in &self.splits {
            split.observe_time(ts);
        }
    }

    /// Look a key up in its split (Active → Inactive → Long).
    pub fn lookup<Q>(&self, key: &Q) -> Option<(V, Generation)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.splits[self.label(key)].lookup(key)
    }

    /// Memoize a derived mapping into the Active map of the key's split.
    pub fn memoize(&self, key: K, value: V) {
        let label = self.label(&key);
        self.splits[label].memoize(key, value);
    }

    /// Total entries across all splits and generations.
    pub fn total_entries(&self) -> usize {
        self.splits.iter().map(|s| s.total_entries()).sum()
    }

    /// Aggregate statistics across splits.
    pub fn stats(&self) -> RotatingStoreStats {
        let mut agg = RotatingStoreStats::default();
        for s in self.splits.iter().map(|s| s.stats()) {
            agg.active_inserts += s.active_inserts;
            agg.long_inserts += s.long_inserts;
            agg.clear_ups += s.clear_ups;
            agg.rotated_entries += s.rotated_entries;
            agg.hits.0 += s.hits.0;
            agg.hits.1 += s.hits.1;
            agg.hits.2 += s.hits.2;
            agg.misses += s.misses;
        }
        agg
    }

    /// Export every split's generations, in split-label order (index `i`
    /// of the result is split `i`'s image). Each split exports under its
    /// own shard read locks; the live store is never globally blocked.
    pub fn export_images(&self) -> Vec<GenerationsImage<K, V>> {
        self.splits.iter().map(|s| s.export_image()).collect()
    }

    /// Import previously exported split images, aging each split's
    /// generations to `now` (see [`RotatingStore::import_image`]).
    ///
    /// The image count must equal this store's split count: the label
    /// function is deterministic, so entries keep their split membership
    /// across restarts — but an image from a differently-split deployment
    /// cannot be mapped generation-by-generation and is rejected.
    pub fn import_images(
        &self,
        images: Vec<GenerationsImage<K, V>>,
        now: SimTime,
    ) -> Result<(), FlowDnsError> {
        if images.len() != self.splits.len() {
            return Err(FlowDnsError::Snapshot(format!(
                "snapshot has {} splits, this store is configured for {} \
                 (num_split changed between runs?)",
                images.len(),
                self.splits.len()
            )));
        }
        for (split, image) in self.splits.iter().zip(images) {
            split.import_image(image, now);
        }
        Ok(())
    }

    /// Aggregate memory estimate across splits.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut est = MemoryEstimate::new();
        for s in &self.splits {
            est.merge(s.memory_estimate());
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::SimDuration;

    fn store(num_split: usize) -> SplitStore<String, String> {
        SplitStore::new(
            RotationPolicy {
                clear_up_interval: SimDuration::from_secs(3600),
                clear_up: true,
                rotation: true,
                long_maps: true,
            },
            num_split,
            8,
        )
    }

    #[test]
    fn insert_and_lookup_route_to_same_split() {
        let s = store(10);
        for i in 0..100 {
            let key = format!("198.51.100.{i}");
            s.insert(key.clone(), format!("host{i}.example"), 60, SimTime::ZERO);
            assert_eq!(s.lookup(&key).unwrap().0, format!("host{i}.example"));
        }
        assert_eq!(s.total_entries(), 100);
    }

    #[test]
    fn label_is_stable_and_in_range() {
        let s = store(10);
        for i in 0..1000 {
            let key = format!("key-{i}");
            let l1 = s.label(&key);
            let l2 = s.label(&key);
            assert_eq!(l1, l2);
            assert!(l1 < 10);
        }
    }

    #[test]
    fn keys_spread_across_splits() {
        let s = store(10);
        for i in 0..1000 {
            s.insert(
                format!("203.0.113.{}", i % 256),
                "x".into(),
                60,
                SimTime::ZERO,
            );
        }
        let populated = (0..10).filter(|i| s.split(*i).total_entries() > 0).count();
        assert!(
            populated >= 8,
            "expected most splits populated, got {populated}"
        );
    }

    #[test]
    fn single_split_behaves_like_no_split_variant() {
        let s = store(1);
        assert_eq!(s.num_split(), 1);
        for i in 0..50 {
            s.insert(format!("k{i}"), "v".into(), 60, SimTime::ZERO);
        }
        assert_eq!(s.split(0).total_entries(), 50);
    }

    #[test]
    fn observe_time_propagates_clear_up_to_all_splits() {
        let s = store(4);
        for i in 0..40 {
            s.insert(format!("k{i}"), "v".into(), 60, SimTime::ZERO);
        }
        s.observe_time(SimTime::from_secs(7200));
        let stats = s.stats();
        assert_eq!(stats.clear_ups, 4);
        // Everything rotated to inactive, still findable.
        assert!(s.lookup("k0").is_some());
    }

    #[test]
    fn aggregate_stats_and_memory() {
        let s = store(5);
        s.insert("a".into(), "1".into(), 60, SimTime::ZERO);
        s.insert("b".into(), "2".into(), 999_999, SimTime::ZERO);
        let _ = s.lookup("a");
        let _ = s.lookup("missing");
        let stats = s.stats();
        assert_eq!(stats.active_inserts, 1);
        assert_eq!(stats.long_inserts, 1);
        assert_eq!(stats.hits.0, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(s.memory_estimate().entries, 2);
    }

    #[test]
    fn export_import_preserves_split_membership() {
        let s = store(10);
        for i in 0..200 {
            s.insert(
                format!("198.51.100.{i}"),
                format!("host{i}.example"),
                if i % 3 == 0 { 86_400 } else { 60 },
                SimTime::from_secs(10),
            );
        }
        let images = s.export_images();
        assert_eq!(images.len(), 10);
        assert_eq!(images.iter().map(|i| i.entry_count()).sum::<usize>(), 200);

        let restored = store(10);
        restored
            .import_images(images, SimTime::from_secs(20))
            .unwrap();
        assert_eq!(restored.total_entries(), 200);
        for i in 0..200 {
            let key = format!("198.51.100.{i}");
            // Same label function, so the entry is found via its split.
            assert_eq!(restored.lookup(&key).unwrap().0, format!("host{i}.example"),);
        }
    }

    #[test]
    fn import_rejects_mismatched_split_counts() {
        let s = store(10);
        s.insert("a".into(), "v".into(), 60, SimTime::ZERO);
        let images = s.export_images();
        let other = store(4);
        assert!(matches!(
            other.import_images(images, SimTime::ZERO),
            Err(flowdns_types::FlowDnsError::Snapshot(_))
        ));
    }

    #[test]
    #[should_panic]
    fn zero_splits_is_rejected() {
        let _ = store(0);
    }
}
