//! The rotating Active/Inactive/Long store (Algorithm 1's storage side).
//!
//! FlowDNS cannot expire DNS records by their exact TTL (too expensive —
//! see Appendix A.8 and [`crate::exact_ttl`]) and cannot keep them forever
//! (memory). Instead it rotates:
//!
//! * new records with TTL below the clear-up interval go to the **Active**
//!   map;
//! * every `clear_up_interval` seconds of *data time* the Active contents
//!   are copied to the **Inactive** map (replacing its previous contents)
//!   and the Active map is cleared;
//! * records with TTL ≥ the interval go to the **Long** map, which is
//!   never cleared;
//! * look-ups cascade Active → Inactive → Long.
//!
//! [`RotationPolicy`] exposes the switches used by the paper's ablation
//! variants (No Clear-Up, No Rotation, No Long Hashmaps).

use parking_lot::Mutex;

use flowdns_types::{SimDuration, SimTime};

use crate::keys::{StoreKey, StoreValue};
use crate::memory::MemoryEstimate;
use crate::sharded::ShardedMap;

/// A plain-data picture of one rotating store: the three generation maps
/// as entry lists plus the rotation clock. This is the storage half of
/// the snapshot/warm-restart path — `flowdns-snapshot` defines the byte
/// format, this type carries live keys and values between a store and
/// the codec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenerationsImage<K, V> {
    /// When the store last cleared up, in data time (`None`: never; the
    /// clock arms at the first inserted record).
    pub last_clear_ts: Option<SimTime>,
    /// The latest data timestamp the store observed (`None`: no record
    /// or `observe_time` call yet, or a store that never clears up —
    /// those skip the clock entirely, and their import skips aging).
    pub last_seen_ts: Option<SimTime>,
    /// Entries of the Active generation.
    pub active: Vec<(K, V)>,
    /// Entries of the Inactive generation.
    pub inactive: Vec<(K, V)>,
    /// Entries of the Long generation.
    pub long: Vec<(K, V)>,
}

impl<K, V> GenerationsImage<K, V> {
    /// Total entries across the three generations.
    pub fn entry_count(&self) -> usize {
        self.active.len() + self.inactive.len() + self.long.len()
    }
}

/// Which generation a lookup hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Generation {
    /// The actively written map.
    Active,
    /// The previous generation kept by buffer rotation.
    Inactive,
    /// The long-TTL map.
    Long,
}

/// Policy switches of a rotating store, corresponding to the paper's
/// benchmark variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationPolicy {
    /// The clear-up interval in seconds of data time (`AClearUpInterval` /
    /// `CClearUpInterval`). Ignored when `clear_up` is false.
    pub clear_up_interval: SimDuration,
    /// Perform clear-up at all (`false` ⇒ the *No Clear-Up* variant: maps
    /// grow forever).
    pub clear_up: bool,
    /// Keep an Inactive copy when clearing (`false` ⇒ the *No Rotation*
    /// variant: clear-up simply discards the Active contents).
    pub rotation: bool,
    /// Divert records with TTL ≥ the interval into the Long map
    /// (`false` ⇒ the *No Long Hashmaps* variant: they land in Active and
    /// are cleared like everything else).
    pub long_maps: bool,
}

impl RotationPolicy {
    /// The paper's A/AAAA policy: 3600-second clear-up with rotation and
    /// long maps.
    pub fn address_default() -> Self {
        RotationPolicy {
            clear_up_interval: SimDuration::from_secs(3600),
            clear_up: true,
            rotation: true,
            long_maps: true,
        }
    }

    /// The paper's CNAME policy: 7200-second clear-up with rotation and
    /// long maps.
    pub fn cname_default() -> Self {
        RotationPolicy {
            clear_up_interval: SimDuration::from_secs(7200),
            clear_up: true,
            rotation: true,
            long_maps: true,
        }
    }
}

/// Statistics of one rotating store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RotatingStoreStats {
    /// Inserts into the Active map.
    pub active_inserts: u64,
    /// Inserts into the Long map.
    pub long_inserts: u64,
    /// Number of clear-up rounds performed.
    pub clear_ups: u64,
    /// Entries copied into the Inactive map across all rotations.
    pub rotated_entries: u64,
    /// Lookup hits per generation: (active, inactive, long).
    pub hits: (u64, u64, u64),
    /// Lookup misses.
    pub misses: u64,
}

/// A typed rotating store.
///
/// Generic over its key and value: the IP-NAME store keys by compact
/// [`flowdns_types::IpKey`] with interned [`flowdns_types::NameRef`]
/// values, the NAME-CNAME store keys interned names by interned names —
/// in both cases matching the paper's "the key is the answer section,
/// and the value is the query". Plain `String` keys/values still satisfy
/// the bounds for tests and ad-hoc tooling.
#[derive(Debug)]
pub struct RotatingStore<K: StoreKey, V: StoreValue> {
    policy: RotationPolicy,
    active: ShardedMap<K, V>,
    inactive: ShardedMap<K, V>,
    long: ShardedMap<K, V>,
    state: Mutex<ClockState>,
    stats: Mutex<RotatingStoreStats>,
}

#[derive(Debug, Clone, Copy)]
struct ClockState {
    last_clear_ts: Option<SimTime>,
    /// Latest data timestamp observed — exported with snapshots so a
    /// warm restart knows how old the image is in data time.
    last_seen_ts: Option<SimTime>,
}

impl<K: StoreKey, V: StoreValue> RotatingStore<K, V> {
    /// Create a store with the given policy and shard count per map.
    pub fn new(policy: RotationPolicy, shards: usize) -> Self {
        RotatingStore {
            policy,
            active: ShardedMap::new(shards),
            inactive: ShardedMap::new(shards),
            long: ShardedMap::new(shards),
            state: Mutex::new(ClockState {
                last_clear_ts: None,
                last_seen_ts: None,
            }),
            stats: Mutex::new(RotatingStoreStats::default()),
        }
    }

    /// The store's policy.
    pub fn policy(&self) -> RotationPolicy {
        self.policy
    }

    /// Insert a record observed at `ts` with the given TTL.
    ///
    /// This performs the clear-up check of Algorithm 1 first (driven by
    /// the record's own timestamp), then routes the record to the Active
    /// or Long map depending on its TTL.
    pub fn insert(&self, key: K, value: V, ttl: u32, ts: SimTime) {
        self.maybe_clear_up(ts);
        let goes_long = self.policy.long_maps
            && SimDuration::from_secs(ttl as u64) >= self.policy.clear_up_interval;
        if goes_long {
            self.long.insert(key, value);
            self.stats.lock().long_inserts += 1;
        } else {
            self.active.insert(key, value);
            self.stats.lock().active_inserts += 1;
        }
    }

    /// Advance the store's clear-up clock without inserting (used by
    /// workers that only see flow records for long stretches).
    pub fn observe_time(&self, ts: SimTime) {
        self.maybe_clear_up(ts);
    }

    fn maybe_clear_up(&self, ts: SimTime) {
        if !self.policy.clear_up {
            // Keep the pre-snapshot fast path: a store that never clears
            // up (the NoClearUp variant) takes no clock lock per record.
            // Its snapshot aging is skipped on import anyway, so not
            // tracking last_seen_ts costs nothing.
            return;
        }
        let mut state = self.state.lock();
        if state.last_seen_ts.map_or(true, |last| ts > last) {
            state.last_seen_ts = Some(ts);
        }
        match state.last_clear_ts {
            None => {
                state.last_clear_ts = Some(ts);
            }
            Some(last) => {
                if ts.saturating_since(last) >= self.policy.clear_up_interval {
                    // Perform the rotation while holding the clock lock so
                    // concurrent inserts cannot trigger a second clear-up
                    // for the same window.
                    if self.policy.rotation {
                        self.inactive.clear();
                        self.active.copy_into(&self.inactive);
                        let mut stats = self.stats.lock();
                        stats.rotated_entries += self.active.len() as u64;
                        stats.clear_ups += 1;
                    } else {
                        self.stats.lock().clear_ups += 1;
                    }
                    self.active.clear();
                    state.last_clear_ts = Some(ts);
                }
            }
        }
    }

    /// The `deepLookUp` of Algorithm 2: Active, then Inactive, then Long.
    ///
    /// Accepts any borrowed form of the key (`&str` for `String` keys,
    /// `&IpKey` for typed keys) so callers never materialize an owned key
    /// just to look it up.
    pub fn lookup<Q>(&self, key: &Q) -> Option<(V, Generation)>
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        if let Some(v) = self.active.get(key) {
            self.stats.lock().hits.0 += 1;
            return Some((v, Generation::Active));
        }
        if self.policy.rotation {
            if let Some(v) = self.inactive.get(key) {
                self.stats.lock().hits.1 += 1;
                return Some((v, Generation::Inactive));
            }
        }
        if self.policy.long_maps {
            if let Some(v) = self.long.get(key) {
                self.stats.lock().hits.2 += 1;
                return Some((v, Generation::Long));
            }
        }
        self.stats.lock().misses += 1;
        None
    }

    /// Insert directly into the Active map without the clear-up check.
    /// Used by the LookUp workers to memoize multi-hop CNAME resolutions
    /// ("we add it to NAME-CNAMEactive for later use").
    pub fn memoize(&self, key: K, value: V) {
        self.active.insert(key, value);
    }

    /// Entry counts per generation: (active, inactive, long).
    pub fn entry_counts(&self) -> (usize, usize, usize) {
        (self.active.len(), self.inactive.len(), self.long.len())
    }

    /// Total entries across generations.
    pub fn total_entries(&self) -> usize {
        let (a, i, l) = self.entry_counts();
        a + i + l
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RotatingStoreStats {
        *self.stats.lock()
    }

    /// Export the store's generations and clock as a plain-data image.
    ///
    /// The export walks each map shard under its *read* lock — concurrent
    /// inserts are never blocked globally, so this is safe to call from a
    /// background snapshot thread against a live store. The image is a
    /// point-in-time-ish view: entries inserted while the walk is in
    /// flight may or may not appear, which is exactly the guarantee a
    /// periodic snapshot needs (the next snapshot catches them).
    ///
    /// Generation *boundaries* are exact, though: if a clear-up rotates
    /// the maps mid-walk (which would duplicate the Active contents into
    /// both the active and inactive sections of the image, resurrecting
    /// them a generation fresher than the truth), the walk is retried.
    /// Clear-ups happen at most once per `clear_up_interval` of data
    /// time, so a retry is vanishingly rare; after a few collisions the
    /// export falls back to holding the clock lock, which keeps clear-up
    /// (and inserts) out for one final walk.
    pub fn export_image(&self) -> GenerationsImage<K, V> {
        let collect = |map: &ShardedMap<K, V>| {
            map.fold(Vec::with_capacity(map.len()), |mut acc, k, v| {
                acc.push((k.clone(), v.clone()));
                acc
            })
        };
        for _ in 0..3 {
            // Read the clear-up counter *under the clock lock*: rotations
            // run entirely inside that lock, so an unchanged counter at
            // both fence points proves no rotation overlapped the walk.
            let (clock, clear_ups_before) = {
                let state = self.state.lock();
                (*state, self.stats.lock().clear_ups)
            };
            let image = GenerationsImage {
                last_clear_ts: clock.last_clear_ts,
                last_seen_ts: clock.last_seen_ts,
                active: collect(&self.active),
                inactive: collect(&self.inactive),
                long: collect(&self.long),
            };
            let clear_ups_after = {
                let _state = self.state.lock();
                self.stats.lock().clear_ups
            };
            if clear_ups_after == clear_ups_before {
                return image;
            }
        }
        // Pathological clock churn: take the clock lock so no clear-up
        // can run during this walk (inserts block on the same lock in
        // `maybe_clear_up`, so this is a bounded, last-resort stall).
        let state = self.state.lock();
        GenerationsImage {
            last_clear_ts: state.last_clear_ts,
            last_seen_ts: state.last_seen_ts,
            active: collect(&self.active),
            inactive: collect(&self.inactive),
            long: collect(&self.long),
        }
    }

    /// Import an image exported earlier, aging its generations to `now`
    /// (data time) so TTL/rotation semantics survive the round trip:
    ///
    /// * less than one `clear_up_interval` since the image's last
    ///   clear-up: all three generations load verbatim and the rotation
    ///   clock resumes where it left off;
    /// * between one and two intervals: the snapshotted Active generation
    ///   would have been rotated by now, so it loads as Inactive, the
    ///   snapshotted Inactive is discarded, and the clock restarts at
    ///   `now`;
    /// * two intervals or more: only the Long generation (which a live
    ///   store never clears) survives.
    ///
    /// Policy switches are honored: without `rotation` nothing is demoted
    /// (stale Active entries are simply dropped), without `long_maps` the
    /// image's Long entries join the Active generation, and without
    /// `clear_up` everything loads verbatim. Entries land *on top of* any
    /// current contents; importing into a freshly built store (the warm
    /// restart path) reproduces the exported state exactly when `now` is
    /// within the rotation window.
    pub fn import_image(&self, image: GenerationsImage<K, V>, now: SimTime) {
        let GenerationsImage {
            last_clear_ts,
            last_seen_ts,
            mut active,
            inactive,
            mut long,
        } = image;
        if !self.policy.long_maps {
            // No Long maps: those entries live (and die) with Active.
            active.append(&mut long);
        }
        let anchor = last_clear_ts.or(last_seen_ts);
        let elapsed = match (self.policy.clear_up, anchor) {
            (false, _) | (_, None) => SimDuration::ZERO,
            (true, Some(anchor)) => now.saturating_since(anchor),
        };
        let interval = self.policy.clear_up_interval;
        let mut state = self.state.lock();
        if state.last_seen_ts.map_or(true, |cur| cur < now) {
            state.last_seen_ts = Some(now);
        }
        if elapsed < interval {
            // Same window: restore verbatim and resume the clock.
            for (k, v) in active {
                self.active.insert(k, v);
            }
            if self.policy.rotation {
                for (k, v) in inactive {
                    self.inactive.insert(k, v);
                }
            }
            if state.last_clear_ts.is_none() {
                state.last_clear_ts = anchor;
            }
        } else if self.policy.rotation && elapsed < interval + interval {
            // One missed rotation: the old Active is now the Inactive
            // generation; the old Inactive aged out.
            for (k, v) in active {
                self.inactive.insert(k, v);
            }
            if state.last_clear_ts.map_or(true, |cur| cur < now) {
                state.last_clear_ts = Some(now);
            }
        } else {
            // Older than the rotation window: short-TTL state is stale.
            if state.last_clear_ts.map_or(true, |cur| cur < now) {
                state.last_clear_ts = Some(now);
            }
        }
        for (k, v) in long {
            self.long.insert(k, v);
        }
    }

    /// Estimate the memory held by the store.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut est = MemoryEstimate::new();
        for map in [&self.active, &self.inactive, &self.long] {
            let partial = map.fold(MemoryEstimate::new(), |mut acc, k, v| {
                acc.add_entry(k.estimate_bytes(), v.estimate_bytes());
                acc
            });
            est.merge(partial);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(secs: u64) -> RotationPolicy {
        RotationPolicy {
            clear_up_interval: SimDuration::from_secs(secs),
            clear_up: true,
            rotation: true,
            long_maps: true,
        }
    }

    #[test]
    fn short_ttl_goes_active_long_ttl_goes_long() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 8);
        store.insert(
            "1.2.3.4".into(),
            "a.example".into(),
            300,
            SimTime::from_secs(0),
        );
        store.insert(
            "5.6.7.8".into(),
            "b.example".into(),
            86_400,
            SimTime::from_secs(1),
        );
        let (a, i, l) = store.entry_counts();
        assert_eq!((a, i, l), (1, 0, 1));
        assert_eq!(
            store.lookup("1.2.3.4"),
            Some(("a.example".into(), Generation::Active))
        );
        assert_eq!(
            store.lookup("5.6.7.8"),
            Some(("b.example".into(), Generation::Long))
        );
        assert_eq!(store.lookup("9.9.9.9"), None);
        let s = store.stats();
        assert_eq!(s.active_inserts, 1);
        assert_eq!(s.long_inserts, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn clear_up_rotates_active_into_inactive() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 8);
        store.insert(
            "1.1.1.1".into(),
            "one.example".into(),
            60,
            SimTime::from_secs(0),
        );
        // One hour later a new record triggers the clear-up.
        store.insert(
            "2.2.2.2".into(),
            "two.example".into(),
            60,
            SimTime::from_secs(3600),
        );
        let (a, i, _) = store.entry_counts();
        assert_eq!((a, i), (1, 1));
        // The old record is now only reachable via the Inactive map.
        assert_eq!(
            store.lookup("1.1.1.1"),
            Some(("one.example".into(), Generation::Inactive))
        );
        assert_eq!(
            store.lookup("2.2.2.2"),
            Some(("two.example".into(), Generation::Active))
        );
        assert_eq!(store.stats().clear_ups, 1);
    }

    #[test]
    fn second_clear_up_overwrites_inactive() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(100), 4);
        store.insert("gen0".into(), "v0".into(), 1, SimTime::from_secs(0));
        store.insert("gen1".into(), "v1".into(), 1, SimTime::from_secs(100));
        store.insert("gen2".into(), "v2".into(), 1, SimTime::from_secs(200));
        // gen0 lived in Inactive after the first clear-up, but the second
        // clear-up replaced Inactive with {gen1}; gen0 is gone.
        assert_eq!(store.lookup("gen0"), None);
        assert_eq!(
            store.lookup("gen1"),
            Some(("v1".into(), Generation::Inactive))
        );
        assert_eq!(
            store.lookup("gen2"),
            Some(("v2".into(), Generation::Active))
        );
        assert_eq!(store.stats().clear_ups, 2);
    }

    #[test]
    fn no_clear_up_variant_keeps_everything() {
        let mut p = policy(100);
        p.clear_up = false;
        let store: RotatingStore<String, String> = RotatingStore::new(p, 4);
        for i in 0..10u64 {
            store.insert(
                format!("k{i}"),
                format!("v{i}"),
                1,
                SimTime::from_secs(i * 1000),
            );
        }
        assert_eq!(store.entry_counts().0, 10);
        assert_eq!(store.stats().clear_ups, 0);
        assert!(store.lookup("k0").is_some());
    }

    #[test]
    fn no_rotation_variant_discards_on_clear_up() {
        let mut p = policy(100);
        p.rotation = false;
        let store: RotatingStore<String, String> = RotatingStore::new(p, 4);
        store.insert("old".into(), "v".into(), 1, SimTime::from_secs(0));
        store.insert("new".into(), "v".into(), 1, SimTime::from_secs(150));
        assert_eq!(store.lookup("old"), None);
        assert!(store.lookup("new").is_some());
        assert_eq!(store.entry_counts().1, 0);
    }

    #[test]
    fn no_long_variant_routes_long_ttls_to_active() {
        let mut p = policy(3600);
        p.long_maps = false;
        let store: RotatingStore<String, String> = RotatingStore::new(p, 4);
        store.insert(
            "ip".into(),
            "stable.example".into(),
            86_400,
            SimTime::from_secs(0),
        );
        assert_eq!(store.entry_counts(), (1, 0, 0));
        // After a clear-up + another, the long-TTL record is lost — the
        // behaviour that costs the NoLong variant 0.6% correlation rate.
        store.insert("x1".into(), "v".into(), 1, SimTime::from_secs(3600));
        store.insert("x2".into(), "v".into(), 1, SimTime::from_secs(7200));
        assert_eq!(store.lookup("ip"), None);
    }

    #[test]
    fn observe_time_alone_triggers_clear_up() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(100), 4);
        store.insert("k".into(), "v".into(), 1, SimTime::from_secs(0));
        store.observe_time(SimTime::from_secs(500));
        assert_eq!(store.lookup("k"), Some(("v".into(), Generation::Inactive)));
    }

    #[test]
    fn memoize_bypasses_clear_up_clock() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(100), 4);
        store.memoize("alias".into(), "canonical.example".into());
        assert_eq!(
            store.lookup("alias"),
            Some(("canonical.example".into(), Generation::Active))
        );
        // memoize must not have started the clear-up clock
        assert_eq!(store.stats().clear_ups, 0);
    }

    #[test]
    fn same_key_overwrites_value() {
        // The accuracy caveat of Section 4: a second domain observed for
        // the same IP overwrites the first.
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        store.insert(
            "9.9.9.9".into(),
            "first.example".into(),
            60,
            SimTime::from_secs(0),
        );
        store.insert(
            "9.9.9.9".into(),
            "second.example".into(),
            60,
            SimTime::from_secs(1),
        );
        assert_eq!(
            store.lookup("9.9.9.9").unwrap().0,
            "second.example".to_string()
        );
        assert_eq!(store.total_entries(), 1);
    }

    #[test]
    fn export_import_round_trips_within_the_window() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        store.insert("a".into(), "v-a".into(), 60, SimTime::from_secs(0));
        store.insert("b".into(), "v-b".into(), 86_400, SimTime::from_secs(10));
        store.insert("c".into(), "v-c".into(), 60, SimTime::from_secs(3600)); // rotates a
        let image = store.export_image();
        assert_eq!(image.entry_count(), 3);
        assert_eq!(image.last_clear_ts, Some(SimTime::from_secs(3600)));
        assert_eq!(image.last_seen_ts, Some(SimTime::from_secs(3600)));

        // Restart within the same window: every generation survives.
        let restored: RotatingStore<String, String> = RotatingStore::new(policy(3600), 8);
        restored.import_image(image.clone(), SimTime::from_secs(3700));
        assert_eq!(
            restored.lookup("a"),
            Some(("v-a".into(), Generation::Inactive))
        );
        assert_eq!(restored.lookup("b"), Some(("v-b".into(), Generation::Long)));
        assert_eq!(
            restored.lookup("c"),
            Some(("v-c".into(), Generation::Active))
        );
        // The rotation clock resumed: the next clear-up comes one interval
        // after the snapshot's last clear-up, not after the import.
        restored.observe_time(SimTime::from_secs(7200));
        assert_eq!(restored.lookup("c").unwrap().1, Generation::Inactive);
        assert_eq!(restored.lookup("a"), None);
    }

    #[test]
    fn import_ages_one_missed_rotation() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        store.insert("act".into(), "v".into(), 60, SimTime::from_secs(0));
        store.insert("inact".into(), "v".into(), 60, SimTime::from_secs(3600));
        store.insert("long".into(), "v".into(), 86_400, SimTime::from_secs(3601));
        // "inact" is Active, "act" is Inactive in the image.
        let image = store.export_image();
        let restored: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        // Restart 1.5 intervals after the last clear-up: the snapshotted
        // Active demotes to Inactive, the snapshotted Inactive ages out.
        restored.import_image(image, SimTime::from_secs(3600 + 5400));
        assert_eq!(
            restored.lookup("inact"),
            Some(("v".into(), Generation::Inactive))
        );
        assert_eq!(restored.lookup("act"), None);
        assert_eq!(restored.lookup("long").unwrap().1, Generation::Long);
    }

    #[test]
    fn import_of_a_stale_image_keeps_only_long() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        store.insert("short".into(), "v".into(), 60, SimTime::from_secs(0));
        store.insert("stable".into(), "v".into(), 86_400, SimTime::from_secs(1));
        let image = store.export_image();
        let restored: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        restored.import_image(image, SimTime::from_secs(50_000));
        assert_eq!(restored.lookup("short"), None);
        assert_eq!(
            restored.lookup("stable"),
            Some(("v".into(), Generation::Long))
        );
    }

    #[test]
    fn import_honors_policy_switches() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        store.insert("a".into(), "v".into(), 60, SimTime::from_secs(0));
        store.insert("l".into(), "v".into(), 86_400, SimTime::from_secs(1));
        let image = store.export_image();

        // No Long maps: the Long entry joins Active.
        let mut p = policy(3600);
        p.long_maps = false;
        let no_long: RotatingStore<String, String> = RotatingStore::new(p, 4);
        no_long.import_image(image.clone(), SimTime::from_secs(100));
        assert_eq!(no_long.lookup("l").unwrap().1, Generation::Active);
        assert_eq!(no_long.entry_counts(), (2, 0, 0));

        // No rotation: a one-interval-old Active cannot demote; it drops.
        let mut p = policy(3600);
        p.rotation = false;
        let no_rot: RotatingStore<String, String> = RotatingStore::new(p, 4);
        no_rot.import_image(image.clone(), SimTime::from_secs(5400));
        assert_eq!(no_rot.lookup("a"), None);
        assert_eq!(no_rot.lookup("l").unwrap().1, Generation::Long);

        // No clear-up: age is irrelevant, everything loads.
        let mut p = policy(3600);
        p.clear_up = false;
        let no_clear: RotatingStore<String, String> = RotatingStore::new(p, 4);
        no_clear.import_image(image, SimTime::from_secs(1_000_000));
        assert!(no_clear.lookup("a").is_some());
        assert!(no_clear.lookup("l").is_some());
    }

    #[test]
    fn export_does_not_disturb_the_live_store() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        store.insert("k".into(), "v".into(), 60, SimTime::from_secs(0));
        let before = store.stats();
        let _ = store.export_image();
        assert_eq!(store.stats(), before);
        assert_eq!(store.lookup("k").unwrap().1, Generation::Active);
    }

    #[test]
    fn memory_estimate_tracks_entries() {
        let store: RotatingStore<String, String> = RotatingStore::new(policy(3600), 4);
        assert_eq!(store.memory_estimate().entries, 0);
        store.insert("1.2.3.4".into(), "example.com".into(), 60, SimTime::ZERO);
        store.insert("5.6.7.8".into(), "other.org".into(), 999_999, SimTime::ZERO);
        let est = store.memory_estimate();
        assert_eq!(est.entries, 2);
        assert!(est.total_bytes() > est.payload_bytes);
    }
}
