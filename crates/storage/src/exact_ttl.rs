//! The exact-TTL strawman store (Appendix A.8).
//!
//! The paper evaluates what happens if DNS records are expired using their
//! exact TTLs: a record may only be used while
//! `TTL_dns + Timestamp_dns >= Timestamp_netflow`, and a regular process
//! walks the whole map to purge expired entries. The result is disastrous
//! (loss above 90%, memory doubling) because the purge walks and the
//! per-record checks contend with the hot lookup path. [`ExactTtlStore`]
//! implements exactly that design so the ablation harness can reproduce
//! the comparison; its `work_units` counter exposes how much scanning the
//! purge does, which the harness converts into simulated CPU cost.

use parking_lot::Mutex;

use flowdns_types::{SimDuration, SimTime};

use crate::keys::{StoreKey, StoreValue};
use crate::memory::MemoryEstimate;
use crate::sharded::ShardedMap;

/// A value plus its absolute expiry time.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<V> {
    value: V,
    expires_at: SimTime,
}

/// Statistics of the exact-TTL store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactTtlStats {
    /// Records inserted.
    pub inserts: u64,
    /// Lookups that found a live record.
    pub hits: u64,
    /// Lookups that found only an expired record.
    pub expired_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries examined by purge scans (the dominant cost).
    pub purge_scanned: u64,
    /// Entries removed by purge scans.
    pub purge_removed: u64,
    /// Number of purge rounds executed.
    pub purge_rounds: u64,
}

/// Store that applies the exact TTL of every DNS record.
#[derive(Debug)]
pub struct ExactTtlStore<K: StoreKey, V: StoreValue> {
    map: ShardedMap<K, Entry<V>>,
    purge_interval: SimDuration,
    last_purge: Mutex<Option<SimTime>>,
    stats: Mutex<ExactTtlStats>,
}

impl<K: StoreKey, V: StoreValue> ExactTtlStore<K, V> {
    /// Create a store whose purge process runs every `purge_interval` of
    /// data time.
    pub fn new(purge_interval: SimDuration, shards: usize) -> Self {
        ExactTtlStore {
            map: ShardedMap::new(shards),
            purge_interval,
            last_purge: Mutex::new(None),
            stats: Mutex::new(ExactTtlStats::default()),
        }
    }

    /// Insert a record observed at `ts` with TTL `ttl`, and run the purge
    /// process if it is due.
    pub fn insert(&self, key: K, value: V, ttl: u32, ts: SimTime) {
        self.map.insert(
            key,
            Entry {
                value,
                expires_at: ts + SimDuration::from_secs(ttl as u64),
            },
        );
        self.stats.lock().inserts += 1;
        self.maybe_purge(ts);
    }

    /// Look `key` up at flow time `now`; only records whose TTL has not
    /// yet expired are returned. Accepts any borrowed form of the key.
    pub fn lookup<Q>(&self, key: &Q, now: SimTime) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        match self.map.get(key) {
            Some(entry) if entry.expires_at >= now => {
                self.stats.lock().hits += 1;
                Some(entry.value)
            }
            Some(_) => {
                self.stats.lock().expired_hits += 1;
                None
            }
            None => {
                self.stats.lock().misses += 1;
                None
            }
        }
    }

    /// Run the purge process if the purge interval has elapsed since the
    /// last run. Returns how many entries were scanned (0 when not due).
    pub fn maybe_purge(&self, now: SimTime) -> u64 {
        {
            let mut last = self.last_purge.lock();
            match *last {
                None => {
                    *last = Some(now);
                    return 0;
                }
                Some(prev) if now.saturating_since(prev) < self.purge_interval => return 0,
                Some(_) => {
                    *last = Some(now);
                }
            }
        }
        self.purge(now)
    }

    /// Unconditionally scan the whole map and remove expired entries.
    /// Every scanned entry is a unit of work; this is the cost Appendix
    /// A.8 blames for the strawman's collapse.
    pub fn purge(&self, now: SimTime) -> u64 {
        let before = self.map.len() as u64;
        let mut removed = 0u64;
        self.map.retain(|_, entry| {
            let keep = entry.expires_at >= now;
            if !keep {
                removed += 1;
            }
            keep
        });
        let mut stats = self.stats.lock();
        stats.purge_scanned += before;
        stats.purge_removed += removed;
        stats.purge_rounds += 1;
        before
    }

    /// Number of stored entries (live and expired-but-not-yet-purged).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ExactTtlStats {
        *self.stats.lock()
    }

    /// Memory estimate of the stored entries.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        self.map.fold(MemoryEstimate::new(), |mut acc, k, v| {
            // The expiry timestamp adds 16 bytes of payload per entry on
            // top of the key/value payloads.
            acc.add_entry(k.estimate_bytes(), v.value.estimate_bytes() + 16);
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ExactTtlStore<String, String> {
        ExactTtlStore::new(SimDuration::from_secs(300), 8)
    }

    #[test]
    fn live_records_hit_expired_records_miss() {
        let s = store();
        s.insert(
            "1.2.3.4".into(),
            "a.example".into(),
            60,
            SimTime::from_secs(0),
        );
        assert_eq!(
            s.lookup("1.2.3.4", SimTime::from_secs(30)),
            Some("a.example".into())
        );
        assert_eq!(s.lookup("1.2.3.4", SimTime::from_secs(61)), None);
        assert_eq!(s.lookup("unknown", SimTime::ZERO), None);
        let st = s.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.expired_hits, 1);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn boundary_expiry_is_inclusive() {
        let s = store();
        s.insert("k".into(), "v".into(), 100, SimTime::from_secs(0));
        // Exactly at expiry the record is still usable (TTL + ts >= now).
        assert!(s.lookup("k", SimTime::from_secs(100)).is_some());
        assert!(s.lookup("k", SimTime::from_secs(101)).is_none());
    }

    #[test]
    fn purge_removes_expired_and_counts_work() {
        let s = store();
        for i in 0..100 {
            s.insert(format!("k{i}"), "v".into(), 10, SimTime::from_secs(0));
        }
        for i in 100..150 {
            s.insert(format!("k{i}"), "v".into(), 10_000, SimTime::from_secs(0));
        }
        let scanned = s.purge(SimTime::from_secs(100));
        assert_eq!(scanned, 150);
        assert_eq!(s.len(), 50);
        let st = s.stats();
        assert_eq!(st.purge_removed, 100);
        assert!(st.purge_scanned >= 150);
    }

    #[test]
    fn maybe_purge_respects_interval() {
        let s = store();
        s.insert("a".into(), "v".into(), 1, SimTime::from_secs(0));
        // First call only arms the clock.
        assert_eq!(s.maybe_purge(SimTime::from_secs(10)), 0);
        // Not yet due.
        assert_eq!(s.maybe_purge(SimTime::from_secs(100)), 0);
        // Due: scans the map.
        assert!(s.maybe_purge(SimTime::from_secs(400)) > 0);
        assert_eq!(s.stats().purge_rounds, 1);
    }

    #[test]
    fn memory_estimate_reflects_entries() {
        let s = store();
        assert!(s.is_empty());
        s.insert(
            "203.0.113.1".into(),
            "cdn.example.net".into(),
            60,
            SimTime::ZERO,
        );
        let est = s.memory_estimate();
        assert_eq!(est.entries, 1);
        assert!(est.payload_bytes >= "203.0.113.1".len() + "cdn.example.net".len());
    }
}
