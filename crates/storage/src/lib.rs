//! # flowdns-storage
//!
//! In-memory DNS storage substrate for the FlowDNS reproduction.
//!
//! The Go implementation keeps DNS records in hashmaps built on the
//! `concurrent-map` library (lock-striped shards) and layers FlowDNS's own
//! structure on top: Active/Inactive/Long generations, periodic clear-up
//! driven by data time, and NUM_SPLIT independent splits for the IP-NAME
//! maps. This crate rebuilds all of that:
//!
//! * [`sharded`] — [`ShardedMap`], a lock-striped concurrent hashmap (the
//!   `concurrent-map` equivalent),
//! * [`keys`] — the [`StoreKey`]/[`StoreValue`] traits every store is
//!   generic over, implemented for compact [`flowdns_types::IpKey`]s,
//!   interned [`flowdns_types::NameRef`] handles, and plain strings,
//! * [`rotating`] — [`RotatingStore`], one Active/Inactive/Long triple with
//!   clear-up and buffer rotation (Algorithm 1's storage side),
//! * [`split`] — [`SplitStore`], NUM_SPLIT rotating stores indexed by a
//!   label function over the key (the "IP-NAME hashmap splits"),
//! * [`local`] — [`LocalRotatingStore`]/[`LocalSplitStore`], single-owner
//!   `&mut` twins of the rotating/split stores for the shared-nothing
//!   correlator shards (zero locks, same semantics and snapshot images),
//! * [`exact_ttl`] — [`ExactTtlStore`], the per-record-TTL strawman from
//!   Appendix A.8, kept for the ablation experiment,
//! * [`memory`] — byte-level memory accounting used by the resource
//!   figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact_ttl;
pub mod keys;
pub mod local;
pub mod memory;
pub mod rotating;
pub mod sharded;
pub mod split;

pub use exact_ttl::ExactTtlStore;
pub use keys::{StoreKey, StoreValue};
pub use local::{LocalRotatingStore, LocalSplitStore};
pub use memory::MemoryEstimate;
pub use rotating::{Generation, GenerationsImage, RotatingStore, RotationPolicy};
pub use sharded::ShardedMap;
pub use split::SplitStore;
