//! Property-based tests for the storage substrate.
//!
//! * `ShardedMap` must behave exactly like a `HashMap` under any sequence
//!   of insert/remove/get/clear operations (single-threaded linearization
//!   check).
//! * `RotatingStore` must agree with a simple reference simulator of the
//!   Active/Inactive/Long semantics for any sequence of timestamped
//!   inserts and lookups with non-decreasing timestamps.

use std::collections::HashMap;

use flowdns_storage::{Generation, RotatingStore, RotationPolicy, ShardedMap};
use flowdns_types::{IpKey, NameInterner, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    Remove(u8),
    Get(u8),
    Clear,
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        2 => any::<u8>().prop_map(MapOp::Remove),
        3 => any::<u8>().prop_map(MapOp::Get),
        1 => Just(MapOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sharded_map_matches_hashmap(ops in proptest::collection::vec(map_op(), 0..200),
                                   shards in 1usize..32) {
        let sharded: ShardedMap<u8, u16> = ShardedMap::new(shards);
        let mut model: HashMap<u8, u16> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(sharded.insert(k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(sharded.remove(&k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(sharded.get(&k), model.get(&k).copied());
                }
                MapOp::Clear => {
                    sharded.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(sharded.len(), model.len());
        }
        prop_assert_eq!(sharded.snapshot(), model);
    }
}

/// Reference model of the rotating store: plain HashMaps plus the same
/// clear-up rule, written as directly from Algorithm 1 as possible.
struct ModelStore {
    interval: u64,
    active: HashMap<String, String>,
    inactive: HashMap<String, String>,
    long: HashMap<String, String>,
    last_clear: Option<u64>,
}

impl ModelStore {
    fn new(interval: u64) -> Self {
        ModelStore {
            interval,
            active: HashMap::new(),
            inactive: HashMap::new(),
            long: HashMap::new(),
            last_clear: None,
        }
    }

    fn maybe_clear(&mut self, ts: u64) {
        match self.last_clear {
            None => self.last_clear = Some(ts),
            Some(last) if ts.saturating_sub(last) >= self.interval => {
                self.inactive = std::mem::take(&mut self.active);
                self.last_clear = Some(ts);
            }
            _ => {}
        }
    }

    fn insert(&mut self, key: String, value: String, ttl: u32, ts: u64) {
        self.maybe_clear(ts);
        if ttl as u64 >= self.interval {
            self.long.insert(key, value);
        } else {
            self.active.insert(key, value);
        }
    }

    fn lookup(&self, key: &str) -> Option<(String, Generation)> {
        if let Some(v) = self.active.get(key) {
            return Some((v.clone(), Generation::Active));
        }
        if let Some(v) = self.inactive.get(key) {
            return Some((v.clone(), Generation::Inactive));
        }
        self.long.get(key).map(|v| (v.clone(), Generation::Long))
    }
}

#[derive(Debug, Clone)]
enum StoreOp {
    /// Insert key (small space), ttl, time advance.
    Insert(u8, u32, u64),
    Lookup(u8),
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        3 => (any::<u8>(), 0u32..10_000, 0u64..2_000).prop_map(|(k, ttl, dt)| StoreOp::Insert(k, ttl, dt)),
        2 => any::<u8>().prop_map(StoreOp::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rotating_store_matches_reference_model(ops in proptest::collection::vec(store_op(), 0..200)) {
        let interval_secs = 3600u64;
        let policy = RotationPolicy {
            clear_up_interval: SimDuration::from_secs(interval_secs),
            clear_up: true,
            rotation: true,
            long_maps: true,
        };
        let store: RotatingStore<String, String> = RotatingStore::new(policy, 8);
        let mut model = ModelStore::new(interval_secs);
        let mut now = 0u64;
        for op in ops {
            match op {
                StoreOp::Insert(k, ttl, dt) => {
                    now += dt;
                    let key = format!("10.0.0.{k}");
                    let value = format!("host-{k}.example");
                    store.insert(key.clone(), value.clone(), ttl, SimTime::from_secs(now));
                    model.insert(key, value, ttl, now);
                }
                StoreOp::Lookup(k) => {
                    let key = format!("10.0.0.{k}");
                    prop_assert_eq!(store.lookup(&key), model.lookup(&key));
                }
            }
        }
        let (a, i, l) = store.entry_counts();
        prop_assert_eq!(a, model.active.len());
        prop_assert_eq!(i, model.inactive.len());
        prop_assert_eq!(l, model.long.len());
    }

    #[test]
    fn no_clear_up_store_never_loses_records(
        inserts in proptest::collection::vec((any::<u8>(), 0u32..10_000, 0u64..5_000), 1..100)
    ) {
        let policy = RotationPolicy {
            clear_up_interval: SimDuration::from_secs(3600),
            clear_up: false,
            rotation: true,
            long_maps: true,
        };
        let store: RotatingStore<String, String> = RotatingStore::new(policy, 8);
        let mut now = 0u64;
        let mut keys = Vec::new();
        for (k, ttl, dt) in inserts {
            now += dt;
            let key = format!("key-{k}");
            store.insert(key.clone(), "value".into(), ttl, SimTime::from_secs(now));
            keys.push(key);
        }
        for key in keys {
            prop_assert!(store.lookup(&key).is_some());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The typed-key store must expose the same Active/Inactive/Long and
    /// TTL-routing semantics as the string-keyed reference model when
    /// keyed by `IpKey` with interned `NameRef` values.
    #[test]
    fn typed_key_store_matches_reference_model(
        ops in proptest::collection::vec(store_op(), 0..200)
    ) {
        let interval_secs = 3600u64;
        let policy = RotationPolicy {
            clear_up_interval: SimDuration::from_secs(interval_secs),
            clear_up: true,
            rotation: true,
            long_maps: true,
        };
        let names = NameInterner::new();
        let store: RotatingStore<IpKey, flowdns_types::NameRef> =
            RotatingStore::new(policy, 8);
        let mut model = ModelStore::new(interval_secs);
        let mut now = 0u64;
        for op in ops {
            match op {
                StoreOp::Insert(k, ttl, dt) => {
                    now += dt;
                    let ip: std::net::IpAddr = format!("10.0.0.{k}").parse().unwrap();
                    let value = names.intern(&format!("host-{k}.example"));
                    store.insert(IpKey::from_ip(ip), value, ttl, SimTime::from_secs(now));
                    model.insert(
                        format!("10.0.0.{k}"),
                        format!("host-{k}.example"),
                        ttl,
                        now,
                    );
                }
                StoreOp::Lookup(k) => {
                    let ip: std::net::IpAddr = format!("10.0.0.{k}").parse().unwrap();
                    let got = store
                        .lookup(&IpKey::from_ip(ip))
                        .map(|(v, g)| (v.as_str().to_string(), g));
                    prop_assert_eq!(got, model.lookup(&format!("10.0.0.{k}")));
                }
            }
        }
        let (a, i, l) = store.entry_counts();
        prop_assert_eq!(a, model.active.len());
        prop_assert_eq!(i, model.inactive.len());
        prop_assert_eq!(l, model.long.len());
        // Typed keys shrink the per-entry footprint versus the textual
        // baseline whenever anything is stored.
        if store.total_entries() > 0 {
            prop_assert!(store.memory_estimate().total_bytes() > 0);
        }
    }
}
