//! Property-based tests for the DNS wire codec and the resolver-feed
//! framing: arbitrary (valid-shaped) messages and records must round-trip,
//! and the decoder must never panic on arbitrary bytes.

use flowdns_dns::message::{DnsClass, DnsHeader, Opcode, Rcode};
use flowdns_dns::{DnsMessage, FrameDecoder, FrameEncoder, Question, ResourceRecord, RrData};
use flowdns_types::{DnsAnswer, DnsRecord, DomainName, RecordType, SimTime};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Strategy for DNS-safe labels (letters/digits/hyphens, 1..=15 chars).
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9-]{0,14}").unwrap()
}

/// Strategy for domain names with 1..=5 labels.
fn domain() -> impl Strategy<Value = DomainName> {
    proptest::collection::vec(label(), 1..=5)
        .prop_map(|labels| DomainName::literal(&labels.join(".")))
}

fn rr() -> impl Strategy<Value = ResourceRecord> {
    (
        domain(),
        0u32..1_000_000,
        0usize..5usize,
        domain(),
        any::<[u8; 4]>(),
        any::<[u8; 16]>(),
    )
        .prop_map(|(name, ttl, kind, target, v4, v6)| {
            let (rtype, data) = match kind {
                0 => (RecordType::A, RrData::A(Ipv4Addr::from(v4))),
                1 => (RecordType::Aaaa, RrData::Aaaa(Ipv6Addr::from(v6))),
                2 => (RecordType::Cname, RrData::Cname(target)),
                3 => (RecordType::Ns, RrData::Ns(target)),
                _ => (RecordType::Txt, RrData::Txt(vec!["probe".into()])),
            };
            ResourceRecord {
                name,
                rtype,
                class: DnsClass::In,
                ttl,
                data,
            }
        })
}

fn message() -> impl Strategy<Value = DnsMessage> {
    (
        any::<u16>(),
        any::<bool>(),
        0u8..6u8,
        domain(),
        proptest::collection::vec(rr(), 0..8),
        proptest::collection::vec(rr(), 0..3),
    )
        .prop_map(
            |(id, is_response, rcode, qname, answers, additionals)| DnsMessage {
                header: DnsHeader {
                    id,
                    is_response,
                    opcode: Opcode::Query,
                    authoritative: false,
                    truncated: false,
                    recursion_desired: true,
                    recursion_available: is_response,
                    rcode: match rcode {
                        0 => Rcode::NoError,
                        1 => Rcode::FormErr,
                        2 => Rcode::ServFail,
                        3 => Rcode::NxDomain,
                        4 => Rcode::NotImp,
                        _ => Rcode::Refused,
                    },
                },
                questions: vec![Question {
                    name: qname,
                    qtype: RecordType::A,
                    qclass: DnsClass::In,
                }],
                answers,
                authorities: Vec::new(),
                additionals,
            },
        )
}

fn dns_record() -> impl Strategy<Value = DnsRecord> {
    (
        any::<u64>(),
        domain(),
        0u32..1_000_000,
        prop_oneof![
            any::<[u8; 4]>().prop_map(|b| DnsAnswer::Ip(Ipv4Addr::from(b).into())),
            any::<[u8; 16]>().prop_map(|b| DnsAnswer::Ip(Ipv6Addr::from(b).into())),
            domain().prop_map(DnsAnswer::Name),
        ],
    )
        .prop_map(|(ts, query, ttl, answer)| {
            let rtype = match &answer {
                DnsAnswer::Ip(std::net::IpAddr::V4(_)) => RecordType::A,
                DnsAnswer::Ip(std::net::IpAddr::V6(_)) => RecordType::Aaaa,
                _ => RecordType::Cname,
            };
            DnsRecord {
                ts: SimTime::from_micros(ts % (1 << 50)),
                query,
                rtype,
                ttl,
                answer,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trips(msg in message()) {
        let bytes = msg.encode().unwrap();
        let decoded = DnsMessage::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must return Ok or Err, never panic.
        let _ = DnsMessage::decode(&bytes);
    }

    #[test]
    fn frames_round_trip(records in proptest::collection::vec(dns_record(), 0..32)) {
        let encoded = FrameEncoder::new().encode_batch(&records).unwrap();
        let mut decoder = FrameDecoder::new();
        let decoded = decoder.feed(&encoded).unwrap();
        prop_assert_eq!(decoded, records);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn frames_round_trip_under_arbitrary_chunking(
        records in proptest::collection::vec(dns_record(), 1..16),
        chunk in 1usize..64,
    ) {
        let encoded = FrameEncoder::new().encode_batch(&records).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in encoded.chunks(chunk) {
            decoded.extend(decoder.feed(piece).unwrap());
        }
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut decoder = FrameDecoder::new();
        let _ = decoder.feed(&bytes);
    }

    #[test]
    fn text_lines_round_trip(record in dns_record()) {
        let line = flowdns_dns::record_to_line(&record);
        let parsed = flowdns_dns::parse_record_line(&line).unwrap();
        prop_assert_eq!(parsed, record);
    }
}
