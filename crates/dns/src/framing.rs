//! Resolver-feed framing.
//!
//! The ISP resolvers forward cache-miss records to FlowDNS "via TCP"
//! (Section 4, Coverage). TCP is a byte stream, so records need framing.
//! This module implements a simple, robust length-prefixed frame format
//! with a compact binary payload per record:
//!
//! ```text
//! frame    := u32 length | payload (length bytes)
//! payload  := u64 ts_micros | u32 ttl | u16 rtype | u8 answer_tag
//!             | u16 query_len | query bytes
//!             | answer (format depends on tag)
//! answer   := tag 0: u8 4   | 4-byte IPv4
//!             tag 1: u8 16  | 16-byte IPv6
//!             tag 2: u16 len | name bytes (UTF-8)
//! ```
//!
//! [`FrameEncoder`] turns records into bytes; [`FrameDecoder`] is an
//! incremental decoder that accepts arbitrary byte chunks (as delivered by
//! a socket) and yields complete records, tolerating partial frames across
//! chunk boundaries — the standard tokio-style framing pattern, implemented
//! over `bytes::BytesMut`.

use bytes::{Buf, BufMut, BytesMut};
use flowdns_types::{DnsAnswer, DnsRecord, DomainName, FlowDnsError, RecordType, SimTime};

/// Maximum accepted frame length. A DNS record with a 255-byte name and a
/// 255-byte answer is well under this; anything larger indicates a corrupt
/// or hostile stream and is rejected instead of buffering unboundedly.
pub const MAX_FRAME_LEN: usize = 4096;

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::DnsParse(msg.into())
}

/// Encodes [`DnsRecord`]s into length-prefixed frames.
#[derive(Debug, Default)]
pub struct FrameEncoder;

impl FrameEncoder {
    /// A new encoder.
    pub fn new() -> Self {
        FrameEncoder
    }

    /// Encode one record, appending the frame to `out`.
    pub fn encode_into(&self, record: &DnsRecord, out: &mut BytesMut) -> Result<(), FlowDnsError> {
        let mut payload = BytesMut::with_capacity(64);
        payload.put_u64(record.ts.as_micros());
        payload.put_u32(record.ttl);
        payload.put_u16(record.rtype.to_u16());
        match &record.answer {
            DnsAnswer::Ip(std::net::IpAddr::V4(_)) => payload.put_u8(0),
            DnsAnswer::Ip(std::net::IpAddr::V6(_)) => payload.put_u8(1),
            DnsAnswer::Name(_) => payload.put_u8(2),
            DnsAnswer::Raw(_) => return Err(err("raw answers cannot be framed")),
        }
        let qbytes = record.query.as_str().as_bytes();
        if qbytes.len() > u16::MAX as usize {
            return Err(err("query name too long to frame"));
        }
        payload.put_u16(qbytes.len() as u16);
        payload.put_slice(qbytes);
        match &record.answer {
            DnsAnswer::Ip(std::net::IpAddr::V4(ip)) => {
                payload.put_u8(4);
                payload.put_slice(&ip.octets());
            }
            DnsAnswer::Ip(std::net::IpAddr::V6(ip)) => {
                payload.put_u8(16);
                payload.put_slice(&ip.octets());
            }
            DnsAnswer::Name(name) => {
                let bytes = name.as_str().as_bytes();
                payload.put_u16(bytes.len() as u16);
                payload.put_slice(bytes);
            }
            DnsAnswer::Raw(_) => unreachable!("rejected above"),
        }
        if payload.len() > MAX_FRAME_LEN {
            return Err(err("frame exceeds MAX_FRAME_LEN"));
        }
        out.put_u32(payload.len() as u32);
        out.extend_from_slice(&payload);
        Ok(())
    }

    /// Encode a batch of records into a fresh buffer.
    pub fn encode_batch(&self, records: &[DnsRecord]) -> Result<BytesMut, FlowDnsError> {
        let mut out = BytesMut::with_capacity(records.len() * 64);
        for r in records {
            self.encode_into(r, &mut out)?;
        }
        Ok(out)
    }
}

/// Incremental decoder for the resolver-feed frame format.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buffer: BytesMut,
    /// Records successfully decoded so far.
    pub decoded_count: u64,
}

impl FrameDecoder {
    /// A new decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder {
            buffer: BytesMut::with_capacity(8 * 1024),
            decoded_count: 0,
        }
    }

    /// Bytes currently buffered but not yet decodable.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Feed a chunk of bytes (as read from a socket) and decode every
    /// complete frame it completes. Partial frames remain buffered for the
    /// next call.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<DnsRecord>, FlowDnsError> {
        self.buffer.extend_from_slice(chunk);
        let mut out = Vec::new();
        loop {
            if self.buffer.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([
                self.buffer[0],
                self.buffer[1],
                self.buffer[2],
                self.buffer[3],
            ]) as usize;
            if len > MAX_FRAME_LEN {
                return Err(err(format!("frame length {len} exceeds maximum")));
            }
            if self.buffer.len() < 4 + len {
                break;
            }
            self.buffer.advance(4);
            let payload = self.buffer.split_to(len);
            out.push(decode_payload(&payload)?);
            self.decoded_count += 1;
        }
        Ok(out)
    }
}

fn decode_payload(payload: &[u8]) -> Result<DnsRecord, FlowDnsError> {
    let mut r = crate::wire::Reader::new(payload);
    let ts = SimTime::from_micros(r.read_u64()?);
    let ttl = r.read_u32()?;
    let rtype = RecordType::from_u16(r.read_u16()?);
    let tag = r.read_u8()?;
    let qlen = r.read_u16()? as usize;
    let qbytes = r.read_bytes(qlen)?;
    let query = DomainName::parse(&String::from_utf8_lossy(qbytes))
        .map_err(|e| err(format!("bad query name in frame: {e}")))?;
    let answer = match tag {
        0 => {
            let len = r.read_u8()? as usize;
            if len != 4 {
                return Err(err("IPv4 answer must be 4 bytes"));
            }
            let b = r.read_bytes(4)?;
            DnsAnswer::Ip(std::net::Ipv4Addr::new(b[0], b[1], b[2], b[3]).into())
        }
        1 => {
            let len = r.read_u8()? as usize;
            if len != 16 {
                return Err(err("IPv6 answer must be 16 bytes"));
            }
            let b = r.read_bytes(16)?;
            let mut octets = [0u8; 16];
            octets.copy_from_slice(b);
            DnsAnswer::Ip(std::net::Ipv6Addr::from(octets).into())
        }
        2 => {
            let len = r.read_u16()? as usize;
            let b = r.read_bytes(len)?;
            DnsAnswer::Name(
                DomainName::parse(&String::from_utf8_lossy(b))
                    .map_err(|e| err(format!("bad answer name in frame: {e}")))?,
            )
        }
        other => return Err(err(format!("unknown answer tag {other}"))),
    };
    if !r.is_empty() {
        return Err(err("trailing bytes in frame payload"));
    }
    Ok(DnsRecord {
        ts,
        query,
        rtype,
        ttl,
        answer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn sample_records() -> Vec<DnsRecord> {
        vec![
            DnsRecord::address(
                SimTime::from_secs(1),
                DomainName::literal("video.example.com"),
                Ipv4Addr::new(203, 0, 113, 5).into(),
                300,
            ),
            DnsRecord::address(
                SimTime::from_millis(1500),
                DomainName::literal("v6.example.com"),
                Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1).into(),
                7200,
            ),
            DnsRecord::cname(
                SimTime::from_secs(2),
                DomainName::literal("www.shop.example"),
                DomainName::literal("shop.cdn.example.net"),
                3600,
            ),
        ]
    }

    #[test]
    fn round_trip_batch() {
        let records = sample_records();
        let encoded = FrameEncoder::new().encode_batch(&records).unwrap();
        let mut decoder = FrameDecoder::new();
        let decoded = decoder.feed(&encoded).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(decoder.decoded_count, 3);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn partial_frames_across_chunks() {
        let records = sample_records();
        let encoded = FrameEncoder::new().encode_batch(&records).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        // Feed one byte at a time — the worst possible socket behaviour.
        for byte in encoded.iter() {
            decoded.extend(decoder.feed(std::slice::from_ref(byte)).unwrap());
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut decoder = FrameDecoder::new();
        let bogus = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        assert!(decoder.feed(&bogus).is_err());
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let record = &sample_records()[0];
        let mut encoded = FrameEncoder::new()
            .encode_batch(std::slice::from_ref(record))
            .unwrap();
        // Corrupt the answer tag byte (offset 4 + 8 + 4 + 2 = 18).
        encoded[18] = 99;
        let mut decoder = FrameDecoder::new();
        assert!(decoder.feed(&encoded).is_err());
    }

    #[test]
    fn raw_answers_cannot_be_framed() {
        let record = DnsRecord {
            ts: SimTime::ZERO,
            query: DomainName::literal("x.com"),
            rtype: RecordType::Txt,
            ttl: 1,
            answer: DnsAnswer::Raw(vec![1, 2, 3]),
        };
        let mut out = BytesMut::new();
        assert!(FrameEncoder::new().encode_into(&record, &mut out).is_err());
    }

    #[test]
    fn trailing_garbage_in_payload_is_rejected() {
        let record = &sample_records()[0];
        let frame = FrameEncoder::new()
            .encode_batch(std::slice::from_ref(record))
            .unwrap();
        // Extend the declared length by 2 and append two bytes of junk.
        let mut tampered = BytesMut::new();
        let orig_len = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]);
        tampered.put_u32(orig_len + 2);
        tampered.extend_from_slice(&frame[4..]);
        tampered.extend_from_slice(&[0xAA, 0xBB]);
        let mut decoder = FrameDecoder::new();
        assert!(decoder.feed(&tampered).is_err());
    }
}
