//! Text (TSV) representation of DNS stream records.
//!
//! Useful for replaying captured feeds from flat files and for debugging.
//! One record per line:
//!
//! ```text
//! ts_micros \t query \t rtype \t ttl \t answer
//! ```
//!
//! where `answer` is an IP address for A/AAAA records and a domain name
//! for CNAME records.

use flowdns_types::{DnsAnswer, DnsRecord, DomainName, FlowDnsError, RecordType, SimTime};

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::DnsParse(msg.into())
}

/// Render a record as one TSV line (no trailing newline).
pub fn record_to_line(record: &DnsRecord) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}",
        record.ts.as_micros(),
        record.query,
        record.rtype,
        record.ttl,
        record.answer
    )
}

/// Parse one TSV line into a record.
pub fn parse_record_line(line: &str) -> Result<DnsRecord, FlowDnsError> {
    let fields: Vec<&str> = line.trim_end().split('\t').collect();
    if fields.len() != 5 {
        return Err(err(format!(
            "expected 5 tab-separated fields, got {}",
            fields.len()
        )));
    }
    let ts = SimTime::from_micros(
        fields[0]
            .parse::<u64>()
            .map_err(|_| err("timestamp is not an integer"))?,
    );
    let query = DomainName::parse(fields[1]).map_err(|e| err(e.to_string()))?;
    let rtype = parse_rtype(fields[2])?;
    let ttl = fields[3]
        .parse::<u32>()
        .map_err(|_| err("ttl is not an integer"))?;
    let answer = match rtype {
        RecordType::A | RecordType::Aaaa => DnsAnswer::Ip(
            fields[4]
                .parse()
                .map_err(|_| err("answer is not an IP address"))?,
        ),
        RecordType::Cname => {
            DnsAnswer::Name(DomainName::parse(fields[4]).map_err(|e| err(e.to_string()))?)
        }
        other => return Err(err(format!("unsupported record type {other} in text feed"))),
    };
    Ok(DnsRecord {
        ts,
        query,
        rtype,
        ttl,
        answer,
    })
}

fn parse_rtype(s: &str) -> Result<RecordType, FlowDnsError> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(RecordType::A),
        "AAAA" => Ok(RecordType::Aaaa),
        "CNAME" => Ok(RecordType::Cname),
        "NS" => Ok(RecordType::Ns),
        "TXT" => Ok(RecordType::Txt),
        "SOA" => Ok(RecordType::Soa),
        "PTR" => Ok(RecordType::Ptr),
        "MX" => Ok(RecordType::Mx),
        other => other
            .strip_prefix("TYPE")
            .and_then(|n| n.parse::<u16>().ok())
            .map(RecordType::from_u16)
            .ok_or_else(|| err(format!("unknown record type '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn round_trip_a_record() {
        let r = DnsRecord::address(
            SimTime::from_secs(7),
            DomainName::literal("cdn.example.net"),
            Ipv4Addr::new(198, 51, 100, 1).into(),
            300,
        );
        let line = record_to_line(&r);
        assert_eq!(parse_record_line(&line).unwrap(), r);
    }

    #[test]
    fn round_trip_cname_record() {
        let r = DnsRecord::cname(
            SimTime::from_millis(1234),
            DomainName::literal("www.example.com"),
            DomainName::literal("example.cdn.net"),
            7200,
        );
        let line = record_to_line(&r);
        assert_eq!(parse_record_line(&line).unwrap(), r);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_record_line("").is_err());
        assert!(parse_record_line("1\ttwo\tthree").is_err());
        assert!(parse_record_line("x\texample.com\tA\t60\t1.2.3.4").is_err());
        assert!(parse_record_line("1\texample.com\tA\tsoon\t1.2.3.4").is_err());
        assert!(parse_record_line("1\texample.com\tA\t60\tnot-an-ip").is_err());
        assert!(parse_record_line("1\texample.com\tTXT\t60\thello").is_err());
        assert!(parse_record_line("1\texample.com\tBOGUS\t60\t1.2.3.4").is_err());
    }

    #[test]
    fn parse_accepts_numeric_types_for_known_records() {
        let line = "5\texample.com\tTYPE1\t60\t1.2.3.4";
        let r = parse_record_line(line).unwrap();
        assert_eq!(r.rtype, RecordType::A);
    }

    #[test]
    fn trailing_newline_is_tolerated() {
        let r = DnsRecord::address(
            SimTime::ZERO,
            DomainName::literal("a.example"),
            Ipv4Addr::new(10, 0, 0, 1).into(),
            60,
        );
        let line = format!("{}\n", record_to_line(&r));
        assert_eq!(parse_record_line(&line).unwrap(), r);
    }
}
