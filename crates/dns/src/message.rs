//! DNS message model and codec (RFC 1035 §4).
//!
//! Covers everything FlowDNS needs to ingest real resolver responses:
//! header flags, questions, and answer/authority/additional resource
//! records with typed RDATA for A, AAAA, CNAME, NS, PTR, MX, TXT and SOA,
//! plus opaque RDATA for everything else (including EDNS0 OPT records,
//! which are carried but not interpreted).

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use flowdns_types::{DomainName, FlowDnsError, RecordType};

use crate::name::{decode_name, NameCompressor};
use crate::wire::{Reader, Writer};

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::DnsParse(msg.into())
}

/// DNS operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Any other opcode value.
    Other(u8),
}

impl Opcode {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            other => Opcode::Other(other),
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Other(v) => v,
        }
    }
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Non-existent domain.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused.
    Refused,
    /// Any other rcode.
    Other(u8),
}

impl Rcode {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v,
        }
    }
}

/// DNS record classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsClass {
    /// The Internet class (the only one seen in practice).
    In,
    /// Chaos class.
    Ch,
    /// Any other class value (EDNS0 OPT records abuse this field).
    Other(u16),
}

impl DnsClass {
    fn from_u16(v: u16) -> Self {
        match v {
            1 => DnsClass::In,
            3 => DnsClass::Ch,
            other => DnsClass::Other(other),
        }
    }

    fn to_u16(self) -> u16 {
        match self {
            DnsClass::In => 1,
            DnsClass::Ch => 3,
            DnsClass::Other(v) => v,
        }
    }
}

/// The 12-byte DNS message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsHeader {
    /// Message identifier.
    pub id: u16,
    /// Is this a response (QR bit)?
    pub is_response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative-answer flag.
    pub authoritative: bool,
    /// Truncation flag.
    pub truncated: bool,
    /// Recursion-desired flag.
    pub recursion_desired: bool,
    /// Recursion-available flag.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Default for DnsHeader {
    fn default() -> Self {
        DnsHeader {
            id: 0,
            is_response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The queried name.
    pub name: DomainName,
    /// The queried record type.
    pub qtype: RecordType,
    /// The query class.
    pub qclass: DnsClass,
}

/// Typed RDATA for the record types FlowDNS interprets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Canonical name.
    Cname(DomainName),
    /// Name server.
    Ns(DomainName),
    /// Pointer record.
    Ptr(DomainName),
    /// Mail exchanger (preference, exchange).
    Mx(u16, DomainName),
    /// Text record: one or more character strings.
    Txt(Vec<String>),
    /// Start of authority.
    Soa {
        /// Primary name server.
        mname: DomainName,
        /// Responsible mailbox.
        rname: DomainName,
        /// Zone serial number.
        serial: u32,
        /// Refresh interval.
        refresh: u32,
        /// Retry interval.
        retry: u32,
        /// Expire limit.
        expire: u32,
        /// Minimum/negative-caching TTL.
        minimum: u32,
    },
    /// Uninterpreted RDATA (carried verbatim).
    Opaque(Vec<u8>),
}

impl RrData {
    /// The IP address carried by this RDATA, if any.
    pub fn ip(&self) -> Option<IpAddr> {
        match self {
            RrData::A(a) => Some(IpAddr::V4(*a)),
            RrData::Aaaa(a) => Some(IpAddr::V6(*a)),
            _ => None,
        }
    }

    /// The target domain name carried by this RDATA, if any.
    pub fn target_name(&self) -> Option<&DomainName> {
        match self {
            RrData::Cname(n) | RrData::Ns(n) | RrData::Ptr(n) => Some(n),
            RrData::Mx(_, n) => Some(n),
            _ => None,
        }
    }
}

/// A resource record (answer, authority or additional section entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// The owner name of the record.
    pub name: DomainName,
    /// Record type.
    pub rtype: RecordType,
    /// Record class.
    pub class: DnsClass,
    /// Time to live in seconds.
    pub ttl: u32,
    /// The typed record data.
    pub data: RrData,
}

impl ResourceRecord {
    /// Build an A record.
    pub fn a(name: DomainName, addr: Ipv4Addr, ttl: u32) -> Self {
        ResourceRecord {
            name,
            rtype: RecordType::A,
            class: DnsClass::In,
            ttl,
            data: RrData::A(addr),
        }
    }

    /// Build an AAAA record.
    pub fn aaaa(name: DomainName, addr: Ipv6Addr, ttl: u32) -> Self {
        ResourceRecord {
            name,
            rtype: RecordType::Aaaa,
            class: DnsClass::In,
            ttl,
            data: RrData::Aaaa(addr),
        }
    }

    /// Build a CNAME record.
    pub fn cname(name: DomainName, target: DomainName, ttl: u32) -> Self {
        ResourceRecord {
            name,
            rtype: RecordType::Cname,
            class: DnsClass::In,
            ttl,
            data: RrData::Cname(target),
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DnsMessage {
    /// Header fields and flags.
    pub header: DnsHeader,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section.
    pub additionals: Vec<ResourceRecord>,
}

impl DnsMessage {
    /// Build a response message skeleton for `query` with the given
    /// answers — the shape resolver cache-miss feeds deliver.
    pub fn response(id: u16, query: Question, answers: Vec<ResourceRecord>) -> Self {
        DnsMessage {
            header: DnsHeader {
                id,
                is_response: true,
                recursion_desired: true,
                recursion_available: true,
                ..DnsHeader::default()
            },
            questions: vec![query],
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build a query message for `name`/`qtype`.
    pub fn query(id: u16, name: DomainName, qtype: RecordType) -> Self {
        DnsMessage {
            header: DnsHeader {
                id,
                ..DnsHeader::default()
            },
            questions: vec![Question {
                name,
                qtype,
                qclass: DnsClass::In,
            }],
            ..DnsMessage::default()
        }
    }

    /// Encode the message to wire format, using name compression.
    pub fn encode(&self) -> Result<Vec<u8>, FlowDnsError> {
        let mut w = Writer::with_capacity(512);
        let mut compressor = NameCompressor::new();

        // Header.
        w.put_u16(self.header.id);
        let mut flags: u16 = 0;
        if self.header.is_response {
            flags |= 0x8000;
        }
        flags |= (self.header.opcode.to_u8() as u16 & 0x0F) << 11;
        if self.header.authoritative {
            flags |= 0x0400;
        }
        if self.header.truncated {
            flags |= 0x0200;
        }
        if self.header.recursion_desired {
            flags |= 0x0100;
        }
        if self.header.recursion_available {
            flags |= 0x0080;
        }
        flags |= self.header.rcode.to_u8() as u16 & 0x000F;
        w.put_u16(flags);
        w.put_u16(self.questions.len() as u16);
        w.put_u16(self.answers.len() as u16);
        w.put_u16(self.authorities.len() as u16);
        w.put_u16(self.additionals.len() as u16);

        for q in &self.questions {
            compressor.encode(&q.name, &mut w)?;
            w.put_u16(q.qtype.to_u16());
            w.put_u16(q.qclass.to_u16());
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            encode_rr(rr, &mut w, &mut compressor)?;
        }
        Ok(w.into_bytes())
    }

    /// Decode a message from wire format.
    pub fn decode(bytes: &[u8]) -> Result<Self, FlowDnsError> {
        let mut r = Reader::new(bytes);
        let id = r.read_u16()?;
        let flags = r.read_u16()?;
        let header = DnsHeader {
            id,
            is_response: flags & 0x8000 != 0,
            opcode: Opcode::from_u8(((flags >> 11) & 0x0F) as u8),
            authoritative: flags & 0x0400 != 0,
            truncated: flags & 0x0200 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            rcode: Rcode::from_u8((flags & 0x000F) as u8),
        };
        let qdcount = r.read_u16()? as usize;
        let ancount = r.read_u16()? as usize;
        let nscount = r.read_u16()? as usize;
        let arcount = r.read_u16()? as usize;

        // Sanity cap: a 64 KiB message cannot hold more than ~4096 minimal
        // records; anything claiming more is malformed.
        let total = qdcount + ancount + nscount + arcount;
        if total > 8192 {
            return Err(err(format!("implausible record count {total}")));
        }

        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let name = decode_name(&mut r)?;
            let qtype = RecordType::from_u16(r.read_u16()?);
            let qclass = DnsClass::from_u16(r.read_u16()?);
            questions.push(Question {
                name,
                qtype,
                qclass,
            });
        }
        let mut answers = Vec::with_capacity(ancount);
        for _ in 0..ancount {
            answers.push(decode_rr(&mut r)?);
        }
        let mut authorities = Vec::with_capacity(nscount);
        for _ in 0..nscount {
            authorities.push(decode_rr(&mut r)?);
        }
        let mut additionals = Vec::with_capacity(arcount);
        for _ in 0..arcount {
            additionals.push(decode_rr(&mut r)?);
        }

        Ok(DnsMessage {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// The first question's name, if any (the "query" FlowDNS records).
    pub fn query_name(&self) -> Option<&DomainName> {
        self.questions.first().map(|q| &q.name)
    }
}

impl fmt::Display for DnsMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "id={} qr={} rcode={:?} qd={} an={} ns={} ar={}",
            self.header.id,
            self.header.is_response,
            self.header.rcode,
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len()
        )
    }
}

fn encode_rr(
    rr: &ResourceRecord,
    w: &mut Writer,
    compressor: &mut NameCompressor,
) -> Result<(), FlowDnsError> {
    compressor.encode(&rr.name, w)?;
    w.put_u16(rr.rtype.to_u16());
    w.put_u16(rr.class.to_u16());
    w.put_u32(rr.ttl);
    // Reserve RDLENGTH and back-patch after writing RDATA.
    let len_pos = w.len();
    w.put_u16(0);
    let data_start = w.len();
    match &rr.data {
        RrData::A(addr) => w.put_bytes(&addr.octets()),
        RrData::Aaaa(addr) => w.put_bytes(&addr.octets()),
        RrData::Cname(n) | RrData::Ns(n) | RrData::Ptr(n) => {
            // RDATA names in these types may be compressed.
            compressor.encode(n, w)?;
        }
        RrData::Mx(pref, n) => {
            w.put_u16(*pref);
            compressor.encode(n, w)?;
        }
        RrData::Txt(strings) => {
            for s in strings {
                let bytes = s.as_bytes();
                if bytes.len() > 255 {
                    return Err(err("TXT character-string longer than 255 bytes"));
                }
                w.put_u8(bytes.len() as u8);
                w.put_bytes(bytes);
            }
        }
        RrData::Soa {
            mname,
            rname,
            serial,
            refresh,
            retry,
            expire,
            minimum,
        } => {
            compressor.encode(mname, w)?;
            compressor.encode(rname, w)?;
            w.put_u32(*serial);
            w.put_u32(*refresh);
            w.put_u32(*retry);
            w.put_u32(*expire);
            w.put_u32(*minimum);
        }
        RrData::Opaque(bytes) => w.put_bytes(bytes),
    }
    let rdlen = w.len() - data_start;
    if rdlen > u16::MAX as usize {
        return Err(err("RDATA longer than 65535 bytes"));
    }
    w.patch_u16(len_pos, rdlen as u16);
    Ok(())
}

fn decode_rr(r: &mut Reader<'_>) -> Result<ResourceRecord, FlowDnsError> {
    let name = decode_name(r)?;
    let rtype = RecordType::from_u16(r.read_u16()?);
    let class = DnsClass::from_u16(r.read_u16()?);
    let ttl = r.read_u32()?;
    let rdlen = r.read_u16()? as usize;
    let rdata_start = r.position();
    if r.remaining() < rdlen {
        return Err(err("RDATA runs past end of message"));
    }
    let data = match rtype {
        RecordType::A => {
            if rdlen != 4 {
                return Err(err("A record RDATA must be 4 bytes"));
            }
            let b = r.read_bytes(4)?;
            RrData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
        }
        RecordType::Aaaa => {
            if rdlen != 16 {
                return Err(err("AAAA record RDATA must be 16 bytes"));
            }
            let b = r.read_bytes(16)?;
            let mut octets = [0u8; 16];
            octets.copy_from_slice(b);
            RrData::Aaaa(Ipv6Addr::from(octets))
        }
        RecordType::Cname => RrData::Cname(decode_name(r)?),
        RecordType::Ns => RrData::Ns(decode_name(r)?),
        RecordType::Ptr => RrData::Ptr(decode_name(r)?),
        RecordType::Mx => {
            let pref = r.read_u16()?;
            RrData::Mx(pref, decode_name(r)?)
        }
        RecordType::Txt => {
            let mut strings = Vec::new();
            while r.position() < rdata_start + rdlen {
                let len = r.read_u8()? as usize;
                let bytes = r.read_bytes(len)?;
                strings.push(String::from_utf8_lossy(bytes).into_owned());
            }
            RrData::Txt(strings)
        }
        RecordType::Soa => {
            let mname = decode_name(r)?;
            let rname = decode_name(r)?;
            RrData::Soa {
                mname,
                rname,
                serial: r.read_u32()?,
                refresh: r.read_u32()?,
                retry: r.read_u32()?,
                expire: r.read_u32()?,
                minimum: r.read_u32()?,
            }
        }
        _ => RrData::Opaque(r.read_bytes(rdlen)?.to_vec()),
    };
    // Whatever we parsed, the cursor must land exactly at the end of the
    // declared RDATA; otherwise the record length was inconsistent.
    let consumed = r.position() - rdata_start;
    if consumed != rdlen {
        return Err(err(format!(
            "RDATA length mismatch: declared {rdlen}, consumed {consumed}"
        )));
    }
    Ok(ResourceRecord {
        name,
        rtype,
        class,
        ttl,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str) -> Question {
        Question {
            name: DomainName::literal(name),
            qtype: RecordType::A,
            qclass: DnsClass::In,
        }
    }

    #[test]
    fn header_flags_round_trip() {
        let msg = DnsMessage {
            header: DnsHeader {
                id: 0xBEEF,
                is_response: true,
                opcode: Opcode::Query,
                authoritative: true,
                truncated: false,
                recursion_desired: true,
                recursion_available: true,
                rcode: Rcode::NxDomain,
            },
            questions: vec![q("example.com")],
            ..DnsMessage::default()
        };
        let decoded = DnsMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn a_response_round_trip() {
        let msg = DnsMessage::response(
            42,
            q("video.example.com"),
            vec![ResourceRecord::a(
                DomainName::literal("video.example.com"),
                Ipv4Addr::new(203, 0, 113, 10),
                300,
            )],
        );
        let bytes = msg.encode().unwrap();
        let decoded = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(
            decoded.answers[0].data.ip(),
            Some(IpAddr::V4(Ipv4Addr::new(203, 0, 113, 10)))
        );
    }

    #[test]
    fn cname_chain_response_round_trip() {
        let owner = DomainName::literal("www.shop.example");
        let cdn1 = DomainName::literal("shop.cdn.example.net");
        let cdn2 = DomainName::literal("edge7.cdn.example.net");
        let msg = DnsMessage::response(
            7,
            q("www.shop.example"),
            vec![
                ResourceRecord::cname(owner.clone(), cdn1.clone(), 600),
                ResourceRecord::cname(cdn1.clone(), cdn2.clone(), 600),
                ResourceRecord::a(cdn2.clone(), Ipv4Addr::new(198, 51, 100, 77), 60),
            ],
        );
        let bytes = msg.encode().unwrap();
        let decoded = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(decoded.answers.len(), 3);
        assert_eq!(decoded.answers[0].data.target_name(), Some(&cdn1));
        assert_eq!(decoded.answers[1].data.target_name(), Some(&cdn2));
        // Compression must have made the encoding smaller than the naive
        // sum of the textual names.
        let naive: usize = [&owner, &cdn1, &cdn1, &cdn2, &cdn2]
            .iter()
            .map(|n| n.as_str().len() + 2)
            .sum();
        assert!(bytes.len() < 12 + naive + 5 * 10 + 4 + 20);
    }

    #[test]
    fn aaaa_mx_txt_soa_round_trip() {
        let name = DomainName::literal("example.org");
        let msg = DnsMessage::response(
            9,
            q("example.org"),
            vec![
                ResourceRecord::aaaa(name.clone(), "2001:db8::1".parse().unwrap(), 3600),
                ResourceRecord {
                    name: name.clone(),
                    rtype: RecordType::Mx,
                    class: DnsClass::In,
                    ttl: 7200,
                    data: RrData::Mx(10, DomainName::literal("mail.example.org")),
                },
                ResourceRecord {
                    name: name.clone(),
                    rtype: RecordType::Txt,
                    class: DnsClass::In,
                    ttl: 60,
                    data: RrData::Txt(vec!["v=spf1 -all".into(), "second".into()]),
                },
                ResourceRecord {
                    name: name.clone(),
                    rtype: RecordType::Soa,
                    class: DnsClass::In,
                    ttl: 86400,
                    data: RrData::Soa {
                        mname: DomainName::literal("ns1.example.org"),
                        rname: DomainName::literal("hostmaster.example.org"),
                        serial: 2022120601,
                        refresh: 7200,
                        retry: 3600,
                        expire: 1209600,
                        minimum: 300,
                    },
                },
            ],
        );
        let decoded = DnsMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn opaque_rdata_round_trip() {
        let msg = DnsMessage::response(
            11,
            q("example.com"),
            vec![ResourceRecord {
                name: DomainName::literal("example.com"),
                rtype: RecordType::Other(65),
                class: DnsClass::In,
                ttl: 30,
                data: RrData::Opaque(vec![1, 2, 3, 4, 5]),
            }],
        );
        let decoded = DnsMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded.answers[0].data, RrData::Opaque(vec![1, 2, 3, 4, 5]));
    }

    #[test]
    fn truncated_message_is_an_error() {
        let msg = DnsMessage::response(
            1,
            q("example.com"),
            vec![ResourceRecord::a(
                DomainName::literal("example.com"),
                Ipv4Addr::new(1, 2, 3, 4),
                60,
            )],
        );
        let bytes = msg.encode().unwrap();
        for cut in [1, 5, 11, bytes.len() - 1] {
            assert!(
                DnsMessage::decode(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_rdata_lengths_are_rejected() {
        // Hand-craft an A record with RDLENGTH 3.
        let mut w = Writer::new();
        w.put_u16(1); // id
        w.put_u16(0x8180); // response flags
        w.put_u16(0); // qd
        w.put_u16(1); // an
        w.put_u16(0); // ns
        w.put_u16(0); // ar
        crate::name::encode_name(&DomainName::literal("x.com"), &mut w).unwrap();
        w.put_u16(1); // A
        w.put_u16(1); // IN
        w.put_u32(60);
        w.put_u16(3); // bogus rdlength
        w.put_bytes(&[1, 2, 3]);
        assert!(DnsMessage::decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn implausible_record_counts_are_rejected() {
        let mut w = Writer::new();
        w.put_u16(1);
        w.put_u16(0x8180);
        w.put_u16(u16::MAX);
        w.put_u16(u16::MAX);
        w.put_u16(0);
        w.put_u16(0);
        assert!(DnsMessage::decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn query_builder_and_query_name() {
        let msg = DnsMessage::query(99, DomainName::literal("netflix.com"), RecordType::Aaaa);
        assert!(!msg.header.is_response);
        assert_eq!(msg.query_name(), Some(&DomainName::literal("netflix.com")));
        let decoded = DnsMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }
}
