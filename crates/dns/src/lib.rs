//! # flowdns-dns
//!
//! DNS substrate for the FlowDNS reproduction.
//!
//! The paper's FlowDNS receives pre-parsed DNS cache-miss records from the
//! ISP's resolvers over TCP. This crate builds that substrate from
//! scratch:
//!
//! * [`wire`] — bounds-checked big-endian readers/writers,
//! * [`name`] — RFC 1035 domain-name wire encoding, including message
//!   compression (pointer encoding and loop-safe decoding),
//! * [`message`] — full DNS message model (header, flags, questions,
//!   resource records) with encode/decode,
//! * [`convert`] — turning a parsed response message into the flat
//!   `(ts, query, rtype, ttl, answer)` records the correlator consumes,
//!   including the "is this a valid DNS response" filter from Section 3.2,
//! * [`framing`] — the length-prefixed resolver-feed framing used between
//!   collectors and FlowDNS, with a compact binary record codec,
//! * [`text`] — a human-readable TSV representation for file replay and
//!   debugging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod framing;
pub mod message;
pub mod name;
pub mod text;
pub mod wire;

pub use convert::{records_from_message, ResponseFilter, ResponseFilterStats};
pub use framing::{FrameDecoder, FrameEncoder, MAX_FRAME_LEN};
pub use message::{
    DnsClass, DnsHeader, DnsMessage, Opcode, Question, Rcode, ResourceRecord, RrData,
};
pub use name::{decode_name, encode_name, NameCompressor};
pub use text::{parse_record_line, record_to_line};
