//! Bounds-checked big-endian wire readers and writers.
//!
//! DNS and NetFlow are both big-endian binary formats full of offsets; a
//! tiny cursor abstraction with explicit error reporting keeps every parse
//! site honest about truncation instead of panicking on slicing.

use flowdns_types::FlowDnsError;

/// A read cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has the cursor consumed the whole buffer?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The underlying full buffer (needed for compression-pointer jumps).
    pub fn whole(&self) -> &'a [u8] {
        self.buf
    }

    /// Move the cursor to an absolute offset.
    pub fn seek(&mut self, pos: usize) -> Result<(), FlowDnsError> {
        if pos > self.buf.len() {
            return Err(truncated("seek past end"));
        }
        self.pos = pos;
        Ok(())
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8, FlowDnsError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| truncated("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn read_u16(&mut self) -> Result<u16, FlowDnsError> {
        let bytes = self.read_bytes(2)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    /// Read a big-endian u32.
    pub fn read_u32(&mut self) -> Result<u32, FlowDnsError> {
        let bytes = self.read_bytes(4)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Read a big-endian u64.
    pub fn read_u64(&mut self) -> Result<u64, FlowDnsError> {
        let bytes = self.read_bytes(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_be_bytes(arr))
    }

    /// Read `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], FlowDnsError> {
        if self.remaining() < n {
            return Err(truncated("byte run"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), FlowDnsError> {
        self.read_bytes(n).map(|_| ())
    }
}

fn truncated(what: &str) -> FlowDnsError {
    FlowDnsError::DnsParse(format!("truncated message while reading {what}"))
}

/// A growable big-endian writer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// A writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite a previously written big-endian u16 at `offset` (used to
    /// back-patch length fields).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        let bytes = v.to_be_bytes();
        self.buf[offset] = bytes[0];
        self.buf[offset + 1] = bytes[1];
    }

    /// Consume the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0102030405060708);
        w.put_bytes(&[9, 9, 9]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16().unwrap(), 0x1234);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_u64().unwrap(), 0x0102030405060708);
        assert_eq!(r.read_bytes(3).unwrap(), &[9, 9, 9]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[0x01]);
        assert!(r.read_u16().is_err());
        let mut r = Reader::new(&[]);
        assert!(r.read_u8().is_err());
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.read_bytes(4).is_err());
        assert!(r.skip(4).is_err());
    }

    #[test]
    fn seek_and_position() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        r.read_u16().unwrap();
        assert_eq!(r.position(), 2);
        r.seek(0).unwrap();
        assert_eq!(r.read_u8().unwrap(), 1);
        assert!(r.seek(5).is_err());
        assert_eq!(r.whole(), &data);
    }

    #[test]
    fn patch_u16_back_fills_length() {
        let mut w = Writer::new();
        w.put_u16(0);
        w.put_bytes(b"hello");
        w.patch_u16(0, 5);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..2], &[0, 5]);
        assert_eq!(&bytes[2..], b"hello");
    }
}
