//! Domain name wire encoding and decoding (RFC 1035 §3.1 and §4.1.4).
//!
//! Supports message compression: names may end in a 2-byte pointer to a
//! previous occurrence. The decoder follows pointers with a hop limit so
//! that malicious pointer loops terminate, and enforces the 255-byte name
//! and 63-byte label limits. The encoder can optionally compress against
//! previously written names via [`NameCompressor`].

use std::collections::HashMap;

use flowdns_types::{DomainName, FlowDnsError};

use crate::wire::{Reader, Writer};

/// Maximum number of compression-pointer hops the decoder will follow.
const MAX_POINTER_HOPS: usize = 32;
/// Maximum decoded name length (RFC 1035).
const MAX_NAME_WIRE_LEN: usize = 255;

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::DnsParse(msg.into())
}

/// Decode a (possibly compressed) domain name at the reader's current
/// position. On success the reader is left positioned after the name as it
/// appears in the message (i.e. after the first pointer, if any).
pub fn decode_name(reader: &mut Reader<'_>) -> Result<DomainName, FlowDnsError> {
    let whole = reader.whole();
    let mut labels: Vec<String> = Vec::new();
    let mut total_len = 0usize;
    let mut hops = 0usize;
    // Position to restore once we have followed the first pointer.
    let mut resume_pos: Option<usize> = None;
    let mut pos = reader.position();

    loop {
        let len_byte = *whole.get(pos).ok_or_else(|| err("name runs past end"))?;
        match len_byte {
            0 => {
                pos += 1;
                break;
            }
            l if l & 0xC0 == 0xC0 => {
                // Compression pointer: 14-bit offset.
                let second = *whole
                    .get(pos + 1)
                    .ok_or_else(|| err("truncated compression pointer"))?;
                let target = (((l & 0x3F) as usize) << 8) | second as usize;
                if resume_pos.is_none() {
                    resume_pos = Some(pos + 2);
                }
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(err("compression pointer loop"));
                }
                if target >= pos {
                    // RFC allows only backwards pointers; forward pointers
                    // are a sign of a malformed or malicious message.
                    return Err(err("forward compression pointer"));
                }
                pos = target;
            }
            l if l & 0xC0 != 0 => {
                return Err(err(format!("unsupported label type 0x{:02x}", l & 0xC0)));
            }
            l => {
                let l = l as usize;
                if l > 63 {
                    return Err(err("label longer than 63 bytes"));
                }
                let start = pos + 1;
                let end = start + l;
                if end > whole.len() {
                    return Err(err("label runs past end"));
                }
                total_len += l + 1;
                if total_len > MAX_NAME_WIRE_LEN {
                    return Err(err("name longer than 255 bytes"));
                }
                // RFC 1035 does not restrict label bytes; we keep them as
                // lossy UTF-8 so malformed names survive for analysis.
                labels.push(String::from_utf8_lossy(&whole[start..end]).into_owned());
                pos = end;
            }
        }
    }

    let after = resume_pos.unwrap_or(pos);
    reader.seek(after)?;

    if labels.is_empty() {
        // The root name "." — represent it as a single dot domain.
        return DomainName::parse(".")
            .or_else(|_| DomainName::parse("root").map_err(|e| err(e.to_string())));
    }
    DomainName::parse(&labels.join(".")).map_err(|e| err(e.to_string()))
}

/// Encode a domain name without compression.
pub fn encode_name(name: &DomainName, writer: &mut Writer) -> Result<(), FlowDnsError> {
    for label in name.labels() {
        let bytes = label.as_bytes();
        if bytes.is_empty() {
            return Err(err("empty label cannot be encoded"));
        }
        if bytes.len() > 63 {
            return Err(err(format!("label '{label}' longer than 63 bytes")));
        }
        writer.put_u8(bytes.len() as u8);
        writer.put_bytes(bytes);
    }
    writer.put_u8(0);
    Ok(())
}

/// Encoder state for RFC 1035 message compression.
///
/// Remembers the offset of every name suffix written so far and emits a
/// pointer when a suffix reappears, exactly as real DNS servers do. Using
/// the compressor is optional — FlowDNS's own framing does not need it —
/// but round-tripping compressed messages is required to parse real
/// resolver responses.
#[derive(Debug, Default)]
pub struct NameCompressor {
    /// Map from name suffix (textual, normalized) to message offset.
    offsets: HashMap<String, u16>,
}

impl NameCompressor {
    /// A fresh compressor for one message.
    pub fn new() -> Self {
        NameCompressor::default()
    }

    /// Encode `name` at the writer's current position, compressing against
    /// previously encoded names where possible.
    pub fn encode(&mut self, name: &DomainName, writer: &mut Writer) -> Result<(), FlowDnsError> {
        let labels: Vec<&str> = name.labels().collect();
        for i in 0..labels.len() {
            let suffix = labels[i..].join(".");
            if let Some(&offset) = self.offsets.get(&suffix) {
                // Emit a pointer to the previous occurrence and stop.
                writer.put_u16(0xC000 | offset);
                return Ok(());
            }
            // Record this suffix's offset if it is still pointer-addressable.
            let here = writer.len();
            if here <= 0x3FFF {
                self.offsets.insert(suffix, here as u16);
            }
            let bytes = labels[i].as_bytes();
            if bytes.is_empty() {
                return Err(err("empty label cannot be encoded"));
            }
            if bytes.len() > 63 {
                return Err(err(format!("label '{}' longer than 63 bytes", labels[i])));
            }
            writer.put_u8(bytes.len() as u8);
            writer.put_bytes(bytes);
        }
        writer.put_u8(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_at(bytes: &[u8], pos: usize) -> Result<(DomainName, usize), FlowDnsError> {
        let mut r = Reader::new(bytes);
        r.seek(pos).unwrap();
        let name = decode_name(&mut r)?;
        Ok((name, r.position()))
    }

    #[test]
    fn encode_decode_simple_name() {
        let name = DomainName::literal("www.example.com");
        let mut w = Writer::new();
        encode_name(&name, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 3);
        assert_eq!(&bytes[1..4], b"www");
        assert_eq!(*bytes.last().unwrap(), 0);
        let (decoded, consumed) = decode_at(&bytes, 0).unwrap();
        assert_eq!(decoded, name);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn decode_compressed_pointer() {
        // "example.com" at offset 0, then "www" + pointer to offset 0.
        let mut w = Writer::new();
        encode_name(&DomainName::literal("example.com"), &mut w).unwrap();
        let ptr_start = w.len();
        w.put_u8(3);
        w.put_bytes(b"www");
        w.put_u16(0xC000);
        let bytes = w.into_bytes();
        let (decoded, consumed) = decode_at(&bytes, ptr_start).unwrap();
        assert_eq!(decoded, DomainName::literal("www.example.com"));
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn compressor_emits_pointers_and_decodes_back() {
        let mut w = Writer::new();
        let mut c = NameCompressor::new();
        let a = DomainName::literal("cdn.video.example.com");
        let b = DomainName::literal("img.video.example.com");
        let plain = DomainName::literal("other.net");
        c.encode(&a, &mut w).unwrap();
        let b_start = w.len();
        c.encode(&b, &mut w).unwrap();
        let plain_start = w.len();
        c.encode(&plain, &mut w).unwrap();
        let bytes = w.into_bytes();

        // The second name must be shorter on the wire than an uncompressed
        // encoding (4+1 label bytes + 2 pointer bytes < full encoding).
        assert!(plain_start - b_start < b.as_str().len() + 2);

        let (da, _) = decode_at(&bytes, 0).unwrap();
        let (db, _) = decode_at(&bytes, b_start).unwrap();
        let (dp, _) = decode_at(&bytes, plain_start).unwrap();
        assert_eq!(da, a);
        assert_eq!(db, b);
        assert_eq!(dp, plain);
    }

    #[test]
    fn pointer_loop_is_rejected() {
        // A name that is just a pointer to itself.
        let bytes = [0xC0u8, 0x00];
        let mut r = Reader::new(&bytes);
        // pointer target 0 == its own position → "forward pointer" guard
        assert!(decode_name(&mut r).is_err());
    }

    #[test]
    fn mutual_pointer_loop_is_rejected() {
        // offset 0: pointer to 2; offset 2: pointer to 0 — a 2-cycle that
        // the backwards-only rule breaks immediately.
        let bytes = [0xC0u8, 0x02, 0xC0, 0x00];
        let mut r = Reader::new(&bytes);
        assert!(decode_name(&mut r).is_err());
    }

    #[test]
    fn overlong_label_is_rejected_on_encode() {
        let long = "a".repeat(64);
        let name = DomainName::literal(&format!("{long}.com"));
        let mut w = Writer::new();
        assert!(encode_name(&name, &mut w).is_err());
        let mut c = NameCompressor::new();
        let mut w2 = Writer::new();
        assert!(c.encode(&name, &mut w2).is_err());
    }

    #[test]
    fn truncated_name_is_rejected_on_decode() {
        // Label claims 5 bytes but only 2 present.
        let bytes = [5u8, b'a', b'b'];
        let mut r = Reader::new(&bytes);
        assert!(decode_name(&mut r).is_err());
        // Missing terminating zero byte.
        let bytes = [1u8, b'a'];
        let mut r = Reader::new(&bytes);
        assert!(decode_name(&mut r).is_err());
    }

    #[test]
    fn root_name_decodes() {
        let bytes = [0u8];
        let mut r = Reader::new(&bytes);
        // The root name is unusual; we only require that it does not error
        // and consumes exactly one byte.
        let _ = decode_name(&mut r).unwrap();
        assert_eq!(r.position(), 1);
    }

    #[test]
    fn underscore_labels_survive_round_trip() {
        // Malformed-but-real names like _dmarc.example.com must round-trip
        // so the Section 5 analysis can observe them.
        let name = DomainName::literal("_dmarc.example.com");
        let mut w = Writer::new();
        encode_name(&name, &mut w).unwrap();
        let bytes = w.into_bytes();
        let (decoded, _) = decode_at(&bytes, 0).unwrap();
        assert_eq!(decoded, name);
    }
}
