//! Converting parsed DNS messages into correlator records.
//!
//! The DNS-processing stage of FlowDNS (Section 3.2) first passes every
//! incoming record through a *filter* that checks it is a valid DNS
//! response, and only then hands it to the FillUp queue. [`ResponseFilter`]
//! is that filter; [`records_from_message`] flattens a valid response into
//! the `(ts, query, rtype, ttl, answer)` tuples the correlator stores.

use flowdns_types::{DnsAnswer, DnsRecord, RecordType, SimTime};

use crate::message::{DnsMessage, Rcode, RrData};

/// Flatten one DNS response message into correlator records.
///
/// Each answer-section resource record becomes one [`DnsRecord`]. The
/// *query* stored with an answer is the record's **owner name**, not the
/// original question: for CNAME chains this is what lets the NAME-CNAME
/// hashmap reconstruct each hop (`owner -> target`), and for A records of
/// chained lookups it keys the address by the name that actually resolved
/// to it, matching the paper's "the key is the answer section, and the
/// value is the query".
pub fn records_from_message(msg: &DnsMessage, ts: SimTime) -> Vec<DnsRecord> {
    let mut out = Vec::with_capacity(msg.answers.len());
    for rr in &msg.answers {
        let answer = match &rr.data {
            RrData::A(_) | RrData::Aaaa(_) => DnsAnswer::Ip(rr.data.ip().expect("address rdata")),
            RrData::Cname(target) => DnsAnswer::Name(target.clone()),
            // Other record types are not correlatable; skip them rather
            // than storing Raw payloads the LookUp workers can never use.
            _ => continue,
        };
        out.push(DnsRecord {
            ts,
            query: rr.name.clone(),
            rtype: rr.rtype,
            ttl: rr.ttl,
            answer,
        });
    }
    out
}

/// Statistics kept by the [`ResponseFilter`], mirroring what an operator
/// would want to see about a resolver feed's health.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResponseFilterStats {
    /// Messages accepted as valid responses.
    pub accepted: u64,
    /// Messages rejected because they were queries, not responses.
    pub not_a_response: u64,
    /// Messages rejected because of a non-zero RCODE.
    pub error_rcode: u64,
    /// Messages rejected because the answer section was empty.
    pub empty_answer: u64,
    /// Messages rejected because they were truncated (TC bit).
    pub truncated: u64,
}

impl ResponseFilterStats {
    /// Total messages seen.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected()
    }

    /// Total messages rejected.
    pub fn rejected(&self) -> u64 {
        self.not_a_response + self.error_rcode + self.empty_answer + self.truncated
    }
}

/// The "valid DNS response" filter from Section 3.2 step (2).
///
/// A message passes if it is a response, has RCODE `NoError`, is not
/// truncated, and carries at least one answer record. Anything else is
/// dropped before it reaches the FillUp queue.
#[derive(Debug, Default)]
pub struct ResponseFilter {
    stats: ResponseFilterStats,
}

impl ResponseFilter {
    /// A fresh filter.
    pub fn new() -> Self {
        ResponseFilter::default()
    }

    /// Check a message, updating statistics. Returns `true` when the
    /// message should be forwarded to the FillUp queue.
    pub fn accept(&mut self, msg: &DnsMessage) -> bool {
        if !msg.header.is_response {
            self.stats.not_a_response += 1;
            return false;
        }
        if msg.header.truncated {
            self.stats.truncated += 1;
            return false;
        }
        if msg.header.rcode != Rcode::NoError {
            self.stats.error_rcode += 1;
            return false;
        }
        if msg.answers.is_empty() {
            self.stats.empty_answer += 1;
            return false;
        }
        self.stats.accepted += 1;
        true
    }

    /// Filter and flatten in one step: returns the correlator records for
    /// an accepted message, or an empty vector for a rejected one.
    pub fn extract(&mut self, msg: &DnsMessage, ts: SimTime) -> Vec<DnsRecord> {
        if self.accept(msg) {
            records_from_message(msg, ts)
        } else {
            Vec::new()
        }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> ResponseFilterStats {
        self.stats
    }
}

/// Check whether a single pre-parsed record is one the FillUp workers
/// should store (the record-level equivalent of the message filter, used
/// when the feed delivers flattened records rather than full messages).
pub fn record_is_storable(record: &DnsRecord) -> bool {
    record.is_correlatable()
        && matches!(
            record.rtype,
            RecordType::A | RecordType::Aaaa | RecordType::Cname
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DnsClass, DnsHeader, Question, ResourceRecord};
    use flowdns_types::DomainName;
    use std::net::Ipv4Addr;

    fn question(name: &str) -> Question {
        Question {
            name: DomainName::literal(name),
            qtype: RecordType::A,
            qclass: DnsClass::In,
        }
    }

    fn chain_response() -> DnsMessage {
        let www = DomainName::literal("www.shop.example");
        let cdn = DomainName::literal("shop.cdn.example.net");
        DnsMessage::response(
            1,
            question("www.shop.example"),
            vec![
                ResourceRecord::cname(www.clone(), cdn.clone(), 600),
                ResourceRecord::a(cdn.clone(), Ipv4Addr::new(198, 51, 100, 7), 60),
            ],
        )
    }

    #[test]
    fn flattening_keys_by_owner_name() {
        let msg = chain_response();
        let records = records_from_message(&msg, SimTime::from_secs(10));
        assert_eq!(records.len(), 2);
        // CNAME hop: www.shop.example -> shop.cdn.example.net
        assert_eq!(records[0].query.as_str(), "www.shop.example");
        assert_eq!(
            records[0].answer.as_name().unwrap().as_str(),
            "shop.cdn.example.net"
        );
        // A record is keyed by the CDN name that actually resolved.
        assert_eq!(records[1].query.as_str(), "shop.cdn.example.net");
        assert_eq!(
            records[1].answer.as_ip().unwrap(),
            std::net::IpAddr::V4(Ipv4Addr::new(198, 51, 100, 7))
        );
        assert!(records.iter().all(|r| r.ts == SimTime::from_secs(10)));
        assert!(records.iter().all(record_is_storable));
    }

    #[test]
    fn non_correlatable_answers_are_skipped() {
        let name = DomainName::literal("example.com");
        let msg = DnsMessage::response(
            2,
            question("example.com"),
            vec![
                ResourceRecord {
                    name: name.clone(),
                    rtype: RecordType::Txt,
                    class: DnsClass::In,
                    ttl: 60,
                    data: RrData::Txt(vec!["hello".into()]),
                },
                ResourceRecord::a(name.clone(), Ipv4Addr::new(1, 2, 3, 4), 60),
            ],
        );
        let records = records_from_message(&msg, SimTime::ZERO);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].rtype, RecordType::A);
    }

    #[test]
    fn filter_accepts_good_responses() {
        let mut f = ResponseFilter::new();
        assert!(f.accept(&chain_response()));
        assert_eq!(f.stats().accepted, 1);
        assert_eq!(f.stats().rejected(), 0);
    }

    #[test]
    fn filter_rejects_queries_errors_truncation_and_empty() {
        let mut f = ResponseFilter::new();

        let query = DnsMessage::query(1, DomainName::literal("example.com"), RecordType::A);
        assert!(!f.accept(&query));

        let mut nxdomain = chain_response();
        nxdomain.header.rcode = Rcode::NxDomain;
        assert!(!f.accept(&nxdomain));

        let mut truncated = chain_response();
        truncated.header.truncated = true;
        assert!(!f.accept(&truncated));

        let empty = DnsMessage {
            header: DnsHeader {
                is_response: true,
                ..DnsHeader::default()
            },
            questions: vec![question("example.com")],
            ..DnsMessage::default()
        };
        assert!(!f.accept(&empty));

        let s = f.stats();
        assert_eq!(s.not_a_response, 1);
        assert_eq!(s.error_rcode, 1);
        assert_eq!(s.truncated, 1);
        assert_eq!(s.empty_answer, 1);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn extract_returns_records_only_for_accepted() {
        let mut f = ResponseFilter::new();
        assert_eq!(f.extract(&chain_response(), SimTime::ZERO).len(), 2);
        let query = DnsMessage::query(1, DomainName::literal("example.com"), RecordType::A);
        assert!(f.extract(&query, SimTime::ZERO).is_empty());
    }
}
