// Fixture: config-key parser. The keys here are consistent with
// docs/CONFIG.md and example.conf, so this file adds no finding.
pub fn apply(cfg: &mut u64, key: &str, value: &str) {
    match key {
        "alpha" => *cfg = value.len() as u64,
        _ => {}
    }
}
