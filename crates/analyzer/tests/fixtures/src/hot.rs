// Fixture: a declared hot-path function that takes a lock.
use std::sync::Mutex;

pub struct Queue {
    items: Mutex<Vec<u64>>,
}

impl Queue {
    pub fn push(&self, item: u64) {
        if let Ok(mut items) = self.items.lock() {
            items.push(item);
        }
    }
}
