// Fixture: registers a metric name the observability doc never
// mentions.
pub fn metric_name() -> &'static str {
    "flowdns_fixture_undocumented_total"
}
