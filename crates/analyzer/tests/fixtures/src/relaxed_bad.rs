// Fixture: a relaxed atomic store with no justification comment.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Relaxed);
}
