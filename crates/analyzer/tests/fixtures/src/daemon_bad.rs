// Fixture: a panicking construct in a declared daemon file.
pub fn parse_port(text: &str) -> u16 {
    text.parse().unwrap()
}
