//! End-to-end fixture tests: each rule has one deliberately-bad snippet
//! under `tests/fixtures/` that must produce exactly its finding, and
//! the JSON rendering of the whole fixture report is pinned to a golden
//! file so the output format cannot drift silently.

use flowdns_analyzer::report::render_json;
use flowdns_analyzer::{
    analyze, Config, ConfigSourceSpec, ScopeSpec, RULE_DRIFT, RULE_HOT_PATH, RULE_PANIC,
    RULE_RELAXED, RULE_UNSAFE,
};
use std::path::PathBuf;

fn fixture_config() -> Config {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut config = Config::bare(root);
    config.scan_roots = vec!["src".to_string()];
    config.hot_paths = vec![ScopeSpec {
        path: "src/hot.rs".to_string(),
        functions: vec!["push".to_string()],
    }];
    config.daemon_files = vec!["src/daemon_bad.rs".to_string()];
    config.config_sources = vec![ConfigSourceSpec {
        path: "src/config_src.rs".to_string(),
        ..ConfigSourceSpec::default()
    }];
    config.observability_doc = Some("docs/OBSERVABILITY.md".to_string());
    config.config_doc = Some("docs/CONFIG.md".to_string());
    config.example_conf = Some("example.conf".to_string());
    config
}

#[test]
fn each_fixture_produces_exactly_its_finding() {
    let report = analyze(&fixture_config()).expect("analyze fixtures");
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            (RULE_PANIC, "src/daemon_bad.rs", 3),
            (RULE_HOT_PATH, "src/hot.rs", 10),
            (RULE_DRIFT, "src/metrics_src.rs", 4),
            (RULE_RELAXED, "src/relaxed_bad.rs", 5),
            (RULE_UNSAFE, "src/unsafe_bad.rs", 3),
        ],
        "findings (in canonical order) did not match the fixture corpus:\n{:#?}",
        report.findings
    );
}

#[test]
fn json_report_matches_golden() {
    let report = analyze(&fixture_config()).expect("analyze fixtures");
    let json = render_json(&report.findings, report.files_scanned);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("read tests/golden/report.json");
    assert_eq!(
        json, golden,
        "JSON report drifted from tests/golden/report.json — if the change \
         is intentional, re-bless with UPDATE_GOLDEN=1 cargo test -p \
         flowdns-analyzer"
    );
}
