//! A line-oriented parser for the TOML subset the analyzer uses:
//! `[table]` and `[[array-of-tables]]` headers, `key = "string"`,
//! `key = ["a", "b"]`, and `#` comments. No crates.io in this
//! environment, so this stays deliberately tiny; anything outside the
//! subset is a hard error rather than a silent misread.

use std::collections::BTreeMap;

/// A parsed value: the subset only has strings and string lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TomlValue {
    /// `key = "text"`
    Str(String),
    /// `key = ["a", "b"]`
    List(Vec<String>),
}

impl TomlValue {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            TomlValue::List(_) => None,
        }
    }

    /// The list payload; a bare string reads as a one-element list.
    pub fn as_list(&self) -> Vec<String> {
        match self {
            TomlValue::Str(s) => vec![s.clone()],
            TomlValue::List(l) => l.clone(),
        }
    }
}

/// One `[name]` or `[[name]]` table with its key/value pairs.
#[derive(Debug, Clone)]
pub struct TomlTable {
    /// Header name without brackets.
    pub name: String,
    /// 1-based line of the header.
    pub line: u32,
    /// Key/value pairs in the table body.
    pub entries: BTreeMap<String, TomlValue>,
}

/// Parse `src`; `origin` names the file in error messages.
pub fn parse(src: &str, origin: &str) -> Result<Vec<TomlTable>, String> {
    let mut tables: Vec<TomlTable> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = header(line) {
            tables.push(TomlTable {
                name: name.to_string(),
                line: lineno,
                entries: BTreeMap::new(),
            });
        } else if let Some((key, rest)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() || !key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
                return Err(format!("{origin}:{lineno}: bad key `{key}`"));
            }
            let value = parse_value(rest.trim())
                .ok_or_else(|| format!("{origin}:{lineno}: unsupported value `{}`", rest.trim()))?;
            let table = tables
                .last_mut()
                .ok_or_else(|| format!("{origin}:{lineno}: key before any [table] header"))?;
            if table.entries.insert(key.to_string(), value).is_some() {
                return Err(format!("{origin}:{lineno}: duplicate key `{key}`"));
            }
        } else {
            return Err(format!("{origin}:{lineno}: unsupported syntax `{line}`"));
        }
    }
    Ok(tables)
}

/// Drop a trailing `#` comment, respecting `"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn header(line: &str) -> Option<&str> {
    let inner = line
        .strip_prefix("[[")
        .and_then(|l| l.strip_suffix("]]"))
        .or_else(|| line.strip_prefix('[').and_then(|l| l.strip_suffix(']')))?;
    let inner = inner.trim();
    (!inner.is_empty()).then_some(inner)
}

fn parse_value(text: &str) -> Option<TomlValue> {
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Some(TomlValue::List(Vec::new()));
        }
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            items.push(parse_string(part.trim())?);
        }
        return Some(TomlValue::List(items));
    }
    parse_string(text).map(TomlValue::Str)
}

/// Split a list body on commas that are outside string quotes.
fn split_top_level(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    if !inner[start..].trim().is_empty() {
        parts.push(&inner[start..]);
    }
    parts
}

fn parse_string(text: &str) -> Option<String> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_lists() {
        let doc = parse(
            "# top comment\n[[allow]]\npath = \"a/b.rs\" # trailing\nreason = \"has a # inside\"\n\n[drift]\nkeys = [\"x\", \"y\"]\n",
            "test.toml",
        )
        .expect("parse");
        assert_eq!(doc.len(), 2);
        assert_eq!(doc[0].name, "allow");
        assert_eq!(doc[0].entries["path"], TomlValue::Str("a/b.rs".to_string()));
        assert_eq!(
            doc[0].entries["reason"],
            TomlValue::Str("has a # inside".to_string())
        );
        assert_eq!(
            doc[1].entries["keys"],
            TomlValue::List(vec!["x".to_string(), "y".to_string()])
        );
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(parse("key = 5\n", "t").is_err());
        assert!(parse("orphan = \"x\"\n", "t").is_err());
        assert!(parse("[t]\nbad key = \"x\"\n", "t").is_err());
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let doc = parse("[t]\np = \"say \\\"hi\\\"\"\n", "t").expect("parse");
        assert_eq!(
            doc[0].entries["p"],
            TomlValue::Str("say \"hi\"".to_string())
        );
    }
}
