//! Finding type and the two report renderers (human diff-style text and
//! machine JSON). Ordering is deterministic: findings sort by
//! `(file, line, rule, message)` so CI diffs are stable run-to-run.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (e.g. `hot-path-lock`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what the rule expects instead.
    pub message: String,
    /// Trimmed source line, used for display and allowlist matching.
    pub excerpt: String,
}

/// Sort findings into the canonical deterministic order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Render the human report: one hunk per finding, grep-style location
/// first so terminals hyperlink it.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.excerpt.is_empty() {
            let _ = writeln!(out, "   | {}", f.excerpt);
        }
    }
    if findings.is_empty() {
        let _ = writeln!(
            out,
            "flowdns-analyzer: clean ({files_scanned} files scanned, 0 findings)"
        );
    } else {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in findings {
            *by_rule.entry(f.rule).or_default() += 1;
        }
        let _ = writeln!(
            out,
            "\nflowdns-analyzer: {} finding(s) in {} file(s) scanned",
            findings.len(),
            files_scanned
        );
        for (rule, n) in by_rule {
            let _ = writeln!(out, "  {rule}: {n}");
        }
    }
    out
}

/// Render the JSON report. Hand-rolled (no serde in this environment)
/// with full string escaping; key order and finding order are fixed.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule).or_default() += 1;
    }
    out.push_str("  \"by_rule\": {");
    for (i, (rule, n)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", json_string(rule), n);
    }
    if !by_rule.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("},\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {}}}",
            json_string(f.rule),
            json_string(&f.file),
            f.line,
            json_string(&f.message),
            json_string(&f.excerpt)
        );
    }
    if !findings.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "m".to_string(),
            excerpt: "e".to_string(),
        }
    }

    #[test]
    fn sort_is_by_file_line_rule() {
        let mut v = vec![
            finding("b.rs", 1, "hot-path-lock"),
            finding("a.rs", 9, "hot-path-lock"),
            finding("a.rs", 2, "panic-free-daemon"),
            finding("a.rs", 2, "doc-drift"),
        ];
        sort_findings(&mut v);
        let order: Vec<(&str, u32, &str)> = v
            .iter()
            .map(|f| (f.file.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "doc-drift"),
                ("a.rs", 2, "panic-free-daemon"),
                ("a.rs", 9, "hot-path-lock"),
                ("b.rs", 1, "hot-path-lock"),
            ]
        );
    }

    #[test]
    fn json_escapes_specials() {
        let f = Finding {
            rule: "doc-drift",
            file: "a.rs".to_string(),
            line: 1,
            message: "quote \" backslash \\ tab \t".to_string(),
            excerpt: String::new(),
        };
        let json = render_json(&[f], 1);
        assert!(json.contains("quote \\\" backslash \\\\ tab \\t"));
    }
}
