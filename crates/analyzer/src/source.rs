//! Per-file token model shared by all rules: lexes a file, masks out
//! `#[cfg(test)]` / `#[test]` items, and answers structural questions
//! (function spans, justification comments, line excerpts).

use crate::lexer::{lex, Token, TokenKind};

/// One lexed source file with test code masked out.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Raw source lines (1-based access via [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-comment) tokens that
    /// are *outside* test-only items. Rules iterate this.
    pub sig: Vec<usize>,
}

impl SourceFile {
    /// Lex and mask a file.
    pub fn new(rel_path: String, src: &str) -> SourceFile {
        let lines = src.lines().map(str::to_string).collect();
        let tokens = lex(src);
        let sig = significant_indices(&tokens);
        SourceFile {
            rel_path,
            lines,
            tokens,
            sig,
        }
    }

    /// Trimmed text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// The significant tokens as a vector of `(index_into_tokens, &Token)`.
    pub fn sig_tokens(&self) -> Vec<(usize, &Token)> {
        self.sig.iter().map(|&i| (i, &self.tokens[i])).collect()
    }

    /// True if a comment containing `marker` appears on `line` itself or
    /// within `window` lines above it. One comment may justify a small
    /// cluster of adjacent sites.
    pub fn has_comment_marker(&self, line: u32, marker: &str, window: u32) -> bool {
        let low = line.saturating_sub(window);
        self.tokens
            .iter()
            .any(|t| t.is_comment() && t.line >= low && t.line <= line && t.text.contains(marker))
    }

    /// Spans (as ranges over `sig` positions) of the bodies of the named
    /// functions, including their signatures. `names` empty means "the
    /// whole file is one span".
    pub fn fn_spans(&self, names: &[String]) -> Vec<(usize, usize)> {
        if names.is_empty() {
            return vec![(0, self.sig.len())];
        }
        let toks = self.sig_tokens();
        let mut spans = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let (_, t) = toks[i];
            if t.kind == TokenKind::Ident && t.text == "fn" {
                if let Some((_, name)) = toks.get(i + 1) {
                    if names.iter().any(|n| n == &name.text) {
                        if let Some(end) = body_end(&toks, i + 2) {
                            spans.push((i, end));
                            i = end;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
        spans
    }
}

/// Find the end (exclusive, as a position in `toks`) of the block that
/// starts at the first `{` at bracket/paren depth 0 from `start`.
fn body_end(toks: &[(usize, &Token)], start: usize) -> Option<usize> {
    let mut parens = 0i32;
    let mut brackets = 0i32;
    let mut i = start;
    while i < toks.len() {
        let t = toks[i].1;
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => parens += 1,
                ")" => parens -= 1,
                "[" => brackets += 1,
                "]" => brackets -= 1,
                "{" if parens == 0 && brackets == 0 => {
                    return match_braces(toks, i);
                }
                // A `;` before any body means this was a trait method
                // signature or an extern declaration: no body to span.
                ";" if parens == 0 && brackets == 0 => return None,
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Given `toks[open]` == `{`, return the position just past its match.
fn match_braces(toks: &[(usize, &Token)], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, (_, t)) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i + 1);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Indices of non-comment tokens outside `#[cfg(test)]` / `#[test]`
/// items. Test code is exempt from every invariant the analyzer checks
/// (panics and allocations are fine in tests), so it is masked here
/// once instead of in each rule.
fn significant_indices(tokens: &[Token]) -> Vec<usize> {
    let sig_all: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut excluded = vec![false; tokens.len()];
    let mut p = 0;
    while p < sig_all.len() {
        if let Some(item_end) = test_attr_item_end(tokens, &sig_all, p) {
            for &idx in &sig_all[p..item_end] {
                excluded[idx] = true;
            }
            p = item_end;
        } else {
            p += 1;
        }
    }
    sig_all.into_iter().filter(|&i| !excluded[i]).collect()
}

/// If `sig[p]` starts a `#[cfg(test)]` or `#[test]` attribute, return
/// the position (in `sig`) just past the attributed item.
fn test_attr_item_end(tokens: &[Token], sig: &[usize], p: usize) -> Option<usize> {
    if !is_test_attr(tokens, sig, p) {
        return None;
    }
    // Skip this attribute and any further attributes on the same item.
    let mut q = skip_attr(tokens, sig, p)?;
    while text(tokens, sig, q) == Some("#") {
        q = skip_attr(tokens, sig, q)?;
    }
    // Skip the item itself: ends at `;` at depth 0 (use decl) or at the
    // matching `}` of the first `{` at depth 0 (fn/mod body).
    let mut parens = 0i32;
    let mut brackets = 0i32;
    let mut braces = 0i32;
    while q < sig.len() {
        match text(tokens, sig, q) {
            Some("(") => parens += 1,
            Some(")") => parens -= 1,
            Some("[") => brackets += 1,
            Some("]") => brackets -= 1,
            Some("{") => braces += 1,
            Some("}") => {
                braces -= 1;
                if braces == 0 && parens == 0 && brackets == 0 {
                    return Some(q + 1);
                }
            }
            Some(";") if braces == 0 && parens == 0 && brackets == 0 => {
                return Some(q + 1);
            }
            None => break,
            _ => {}
        }
        q += 1;
    }
    Some(sig.len())
}

fn text<'a>(tokens: &'a [Token], sig: &[usize], p: usize) -> Option<&'a str> {
    sig.get(p).map(|&i| tokens[i].text.as_str())
}

/// `#[cfg(test)]` or `#[test]` at sig position `p`?
fn is_test_attr(tokens: &[Token], sig: &[usize], p: usize) -> bool {
    let at = |o: usize| text(tokens, sig, p + o);
    if at(0) != Some("#") || at(1) != Some("[") {
        return false;
    }
    (at(2) == Some("cfg") && at(3) == Some("(") && at(4) == Some("test") && at(5) == Some(")"))
        || (at(2) == Some("test") && at(3) == Some("]"))
}

/// Skip a `#[...]` attribute starting at sig position `p`; returns the
/// position just past the closing `]`.
fn skip_attr(tokens: &[Token], sig: &[usize], p: usize) -> Option<usize> {
    if text(tokens, sig, p) != Some("#") {
        return None;
    }
    let mut q = p + 1;
    // Allow the inner-attribute bang: `#![...]`.
    if text(tokens, sig, q) == Some("!") {
        q += 1;
    }
    if text(tokens, sig, q) != Some("[") {
        return None;
    }
    let mut depth = 0i32;
    while q < sig.len() {
        match text(tokens, sig, q) {
            Some("[") => depth += 1,
            Some("]") => {
                depth -= 1;
                if depth == 0 {
                    return Some(q + 1);
                }
            }
            None => break,
            _ => {}
        }
        q += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig_texts(src: &str) -> Vec<String> {
        let f = SourceFile::new("t.rs".into(), src);
        f.sig_tokens()
            .into_iter()
            .map(|(_, t)| t.text.clone())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { panic!() }\n}\nfn also_live() {}";
        let texts = sig_texts(src);
        assert!(texts.contains(&"live".to_string()));
        assert!(texts.contains(&"also_live".to_string()));
        assert!(!texts.contains(&"panic".to_string()));
        assert!(!texts.contains(&"helper".to_string()));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_masked() {
        let src = "#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn live() {}";
        let texts = sig_texts(src);
        assert!(!texts.contains(&"unwrap".to_string()));
        assert!(texts.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))]\nfn live() { real() }";
        let texts = sig_texts(src);
        assert!(texts.contains(&"real".to_string()));
    }

    #[test]
    fn cfg_test_use_decl_masks_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::sync::Mutex;\nfn live() {}";
        let texts = sig_texts(src);
        assert!(!texts.contains(&"Mutex".to_string()));
        assert!(texts.contains(&"live".to_string()));
    }

    #[test]
    fn fn_spans_cover_named_bodies_only() {
        let src = "fn hot(a: u32) { a.lock(); }\nfn cold() { b.lock(); }";
        let f = SourceFile::new("t.rs".into(), src);
        let spans = f.fn_spans(&["hot".to_string()]);
        assert_eq!(spans.len(), 1);
        let toks = f.sig_tokens();
        let in_span: Vec<&str> = (spans[0].0..spans[0].1)
            .map(|p| toks[p].1.text.as_str())
            .collect();
        assert!(in_span.contains(&"lock"));
        assert!(!in_span.contains(&"cold"));
        assert!(!in_span.contains(&"b"));
    }

    #[test]
    fn comment_marker_window() {
        let src = "// ordering: stats only\nx.store(1, Ordering::Relaxed);\n\n\n\n\n\ny.store(2, Ordering::Relaxed);";
        let f = SourceFile::new("t.rs".into(), src);
        assert!(f.has_comment_marker(2, "ordering:", 5));
        assert!(!f.has_comment_marker(8, "ordering:", 5));
    }
}
