//! CLI for the FlowDNS invariant linter.
//!
//! ```text
//! flowdns-analyzer [--ci] [--format human|json] [--root PATH]
//! ```
//!
//! Exit codes: 0 = clean (or report-only mode), 1 = findings under
//! `--ci`, 2 = usage or configuration error.

// The report *is* this binary's stdout contract.
#![allow(clippy::print_stdout)]

use flowdns_analyzer::{analyze, report, Config};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut ci = false;
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => ci = true,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => return usage(&format!("--format needs human|json, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "flowdns-analyzer [--ci] [--format human|json] [--root PATH]\n\
                     \n\
                     Lints the FlowDNS workspace for hot-path invariants (see\n\
                     docs/INVARIANTS.md). Without --ci the report is informational\n\
                     and the exit code is 0; with --ci any finding exits 1."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from, so
    // `cargo run -p flowdns-analyzer` works from any directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let config = match Config::from_toml(root, "crates/analyzer/analyzer.toml") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("flowdns-analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match analyze(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flowdns-analyzer: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match format {
        Format::Human => report::render_human(&result.findings, result.files_scanned),
        Format::Json => report::render_json(&result.findings, result.files_scanned),
    };
    print!("{rendered}");

    if ci && !result.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("flowdns-analyzer: {msg}");
    eprintln!("usage: flowdns-analyzer [--ci] [--format human|json] [--root PATH]");
    ExitCode::from(2)
}
