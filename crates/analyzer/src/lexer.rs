//! A minimal Rust lexer: just enough to walk real source as a token
//! stream without being fooled by strings, raw strings, char literals,
//! lifetimes, or (nested) comments.
//!
//! This is deliberately not a full grammar. The rule engine only needs
//! identifiers, punctuation, literals, and comments with accurate line
//! numbers; everything subtler (macro expansion, type resolution) is out
//! of scope for a repo-native linter and handled by declared scopes and
//! allowlists instead.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, ...).
    Ident,
    /// A lifetime such as `'a` (including the leading quote).
    Lifetime,
    /// `"..."` or `b"..."` with escapes.
    StringLit,
    /// `r"..."`, `r#"..."#`, `br#"..."#` with any number of `#`s.
    RawStringLit,
    /// `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// Integer or float literal, including suffix (`0u8`, `1_000`, `2.5`).
    Number,
    /// A single punctuation character (`.`, `(`, `::` is two tokens).
    Punct,
    /// `// ...` up to end of line (includes `///` and `//!`).
    LineComment,
    /// `/* ... */`, nested pairs respected.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
}

impl Token {
    /// For string literals: the content between the quotes, with no
    /// unescaping (good enough for metric-name matching, which never
    /// uses escapes).
    pub fn str_content(&self) -> &str {
        let t = self.text.as_str();
        match self.kind {
            TokenKind::StringLit => {
                let t = t.strip_prefix('b').unwrap_or(t);
                t.strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .unwrap_or(t)
            }
            TokenKind::RawStringLit => {
                let t = t.strip_prefix('b').unwrap_or(t);
                let t = t.strip_prefix('r').unwrap_or(t);
                let hashes = t.bytes().take_while(|&b| b == b'#').count();
                &t[hashes + 1..t.len() - hashes - 1]
            }
            _ => t,
        }
    }

    /// Is this token a comment?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lex `src` into a token vector. Unterminated constructs are closed at
/// end of input rather than reported: the linter runs on code that
/// rustc already accepted, so error recovery would be dead weight.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start, line),
                '/' if self.peek(1) == Some('*') => self.block_comment(start, line),
                '"' => self.string_lit(start, line, false),
                '\'' => self.char_or_lifetime(start, line),
                c if c.is_ascii_digit() => self.number(start, line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(start, line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.push(TokenKind::LineComment, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    fn string_lit(&mut self, start: usize, line: u32, _byte: bool) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, including '"' and '\\'
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::StringLit, start, line);
    }

    /// At `r` / `br` / `b` prefix already consumed by caller; `pos` is on
    /// the first `#` or `"`. Consumes `#*"..."#*`.
    fn raw_string_tail(&mut self, start: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::RawStringLit, start, line);
    }

    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // Distinguish 'a' (char) from 'a (lifetime): after the quote,
        // an escape is always a char literal; otherwise it is a char
        // literal only if a closing quote follows one code point later.
        if self.peek(1) == Some('\\') || (self.peek(1).is_some() && self.peek(2) == Some('\'')) {
            self.bump(); // quote
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::CharLit, start, line);
        } else {
            self.bump(); // quote
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, start, line);
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        // Digits, separators, radix prefixes, hex digits, type suffixes;
        // a `.` continues the number only when followed by a digit, so
        // tuple indexing (`pair.0`) and ranges (`0..n`) stay separate.
        while let Some(c) = self.peek(0) {
            let continues = c == '_'
                || c.is_ascii_alphanumeric()
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
        self.push(TokenKind::Number, start, line);
    }

    fn ident_or_prefixed(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        // String-literal prefixes glued to a quote: r"", r#"", b"", br#"".
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"' | '#')) => self.raw_string_tail(start, line),
            ("b", Some('"')) => self.string_lit(start, line, true),
            ("b", Some('\'')) => {
                // b'x' byte literal: consume like a char literal.
                self.bump(); // quote
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokenKind::CharLit, start, line);
            }
            _ => self.push(TokenKind::Ident, start, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let toks = kinds(r##"let s = r#"quote " and // not a comment"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStringLit && t.contains("not a comment")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn raw_string_without_hashes() {
        let toks = kinds(r#"r"plain raw" + "normal""#);
        assert_eq!(toks[0].0, TokenKind::RawStringLit);
        assert_eq!(toks[2].0, TokenKind::StringLit);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"b"bytes" br#"raw bytes"#"###);
        assert_eq!(toks[0].0, TokenKind::StringLit);
        assert_eq!(toks[1].0, TokenKind::RawStringLit);
        assert_eq!(toks[1].1, r###"br#"raw bytes"#"###);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("still outer */"));
        assert_eq!(toks[1], (TokenKind::Ident, "ident".to_string()));
    }

    #[test]
    fn unterminated_block_comment_closes_at_eof() {
        let toks = kinds("/* never closed");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("let c: char = 'x'; fn f<'a>(v: &'a str) { let n = '\\n'; }");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(chars.len(), 2, "{chars:?}");
        assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#""with \" escaped quote" next"#);
        assert_eq!(toks[0].0, TokenKind::StringLit);
        assert!(toks[0].1.contains("escaped"));
        assert_eq!(toks[1].1, "next");
    }

    #[test]
    fn comment_markers_inside_strings_are_ignored() {
        let toks = kinds(r#"let url = "https://example.com/*not-a-comment*/";"#);
        assert!(!toks
            .iter()
            .any(|(k, _)| matches!(k, TokenKind::LineComment | TokenKind::BlockComment)));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\n/* two\nlines */\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 6);
    }

    #[test]
    fn str_content_strips_delimiters() {
        let toks = lex(r###"["flowdns_x", r#"raw"#, b"by"]"###);
        let contents: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::StringLit | TokenKind::RawStringLit))
            .map(|t| t.str_content().to_string())
            .collect();
        assert_eq!(contents, ["flowdns_x", "raw", "by"]);
    }

    #[test]
    fn number_with_suffix_and_tuple_index() {
        let toks = kinds("x.0 + 1_000u64 + 0xFFu8 + 2.5f32");
        let numbers: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(numbers, ["0", "1_000u64", "0xFFu8", "2.5f32"]);
    }
}
