//! Per-rule allowlists. Each rule has a `<rule-id>.toml` file holding
//! `[[allow]]` entries; a finding is suppressed when an entry for its
//! rule matches the finding's file and its source-line excerpt contains
//! the entry's pattern. Entries must carry a written reason, and any
//! entry that suppresses nothing is itself reported as stale — the
//! allowlist can only shrink silently, never rot.

use crate::report::Finding;
use crate::toml;
use std::path::Path;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry belongs to (taken from its file name).
    pub rule: String,
    /// Allowlist file (workspace-relative) the entry came from.
    pub origin: String,
    /// 1-based line of the `[[allow]]` header.
    pub line: u32,
    /// Workspace-relative path the suppressed finding must be in.
    pub path: String,
    /// Substring that must appear in the finding's excerpt.
    pub pattern: String,
    /// Human reason — required and non-empty by construction.
    pub reason: String,
}

/// All loaded entries plus per-entry usage tracking.
#[derive(Debug, Default)]
pub struct Allowlists {
    entries: Vec<AllowEntry>,
}

impl Allowlists {
    /// Load `<dir>/<rule>.toml` for each rule ID in `rules`. Missing
    /// files mean "no exceptions for that rule". Format problems and
    /// missing/empty reasons are returned as findings under the
    /// `invalid-allowlist` pseudo-rule (which cannot be allowlisted).
    pub fn load(root: &Path, dir_rel: &str, rules: &[&'static str]) -> (Allowlists, Vec<Finding>) {
        let mut entries = Vec::new();
        let mut findings = Vec::new();
        for &rule in rules {
            let rel = format!("{dir_rel}/{rule}.toml");
            let path = root.join(&rel);
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let tables = match toml::parse(&src, &rel) {
                Ok(t) => t,
                Err(msg) => {
                    findings.push(Finding {
                        rule: crate::RULE_INVALID_ALLOWLIST,
                        file: rel.clone(),
                        line: 1,
                        message: format!("allowlist failed to parse: {msg}"),
                        excerpt: String::new(),
                    });
                    continue;
                }
            };
            for table in tables {
                if table.name != "allow" {
                    findings.push(Finding {
                        rule: crate::RULE_INVALID_ALLOWLIST,
                        file: rel.clone(),
                        line: table.line,
                        message: format!(
                            "unexpected table `[[{}]]`; only `[[allow]]` is recognized",
                            table.name
                        ),
                        excerpt: String::new(),
                    });
                    continue;
                }
                let get = |k: &str| {
                    table
                        .entries
                        .get(k)
                        .and_then(|v| v.as_str())
                        .map(str::to_string)
                };
                let (path_f, pattern, reason) = (get("path"), get("pattern"), get("reason"));
                match (path_f, pattern, reason) {
                    (Some(p), Some(pat), Some(r)) if !r.trim().is_empty() && !pat.is_empty() => {
                        entries.push(AllowEntry {
                            rule: rule.to_string(),
                            origin: rel.clone(),
                            line: table.line,
                            path: p,
                            pattern: pat,
                            reason: r,
                        });
                    }
                    _ => {
                        findings.push(Finding {
                            rule: crate::RULE_INVALID_ALLOWLIST,
                            file: rel.clone(),
                            line: table.line,
                            message: "entry needs non-empty `path`, `pattern`, and a written \
                                      `reason`"
                                .to_string(),
                            excerpt: String::new(),
                        });
                    }
                }
            }
        }
        (Allowlists { entries }, findings)
    }

    /// Build an allowlist directly from entries (tests).
    pub fn from_entries(entries: Vec<AllowEntry>) -> Allowlists {
        Allowlists { entries }
    }

    /// Partition `findings` into kept findings, marking entries used.
    /// Returns the surviving findings plus stale-entry findings.
    pub fn apply(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        let mut kept: Vec<Finding> = findings
            .into_iter()
            .filter(|f| {
                let mut suppressed = false;
                for (i, e) in self.entries.iter().enumerate() {
                    if e.rule == f.rule && e.path == f.file && f.excerpt.contains(&e.pattern) {
                        used[i] = true;
                        suppressed = true;
                    }
                }
                !suppressed
            })
            .collect();
        for (i, e) in self.entries.iter().enumerate() {
            if !used[i] {
                kept.push(Finding {
                    rule: crate::RULE_STALE_ALLOWLIST,
                    file: e.origin.clone(),
                    line: e.line,
                    message: format!(
                        "stale allowlist entry: no `{}` finding in `{}` matches pattern `{}` — \
                         the exception is no longer needed, delete it",
                        e.rule, e.path, e.pattern
                    ),
                    excerpt: format!("pattern = \"{}\"", e.pattern),
                });
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rule: &str, path: &str, pattern: &str) -> AllowEntry {
        AllowEntry {
            rule: rule.to_string(),
            origin: "allowlists/x.toml".to_string(),
            line: 1,
            path: path.to_string(),
            pattern: pattern.to_string(),
            reason: "because".to_string(),
        }
    }

    fn finding(rule: &'static str, file: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 10,
            message: "m".to_string(),
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn matching_entry_suppresses_and_nonmatching_survives() {
        let lists =
            Allowlists::from_entries(vec![entry("hot-path-lock", "a.rs", "pending.lock()")]);
        let out = lists.apply(vec![
            finding("hot-path-lock", "a.rs", "self.pending.lock()"),
            finding("hot-path-lock", "b.rs", "self.pending.lock()"),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].file, "b.rs");
    }

    #[test]
    fn unused_entry_becomes_stale_finding() {
        let lists = Allowlists::from_entries(vec![entry("hot-path-lock", "a.rs", "nothing")]);
        let out = lists.apply(vec![]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, crate::RULE_STALE_ALLOWLIST);
    }

    #[test]
    fn rule_mismatch_does_not_suppress() {
        let lists = Allowlists::from_entries(vec![entry("panic-free-daemon", "a.rs", "lock()")]);
        let out = lists.apply(vec![finding("hot-path-lock", "a.rs", "x.lock()")]);
        assert_eq!(out.len(), 2); // finding survives + entry is stale
    }
}
