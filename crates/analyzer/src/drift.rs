//! Rule 5: doc drift. Two bidirectional contracts:
//!
//! * every `flowdns_*` metric name appearing as a string literal in
//!   non-test code must be listed in `docs/OBSERVABILITY.md`, and every
//!   `flowdns_*` name in that doc must exist in code;
//! * every config key parsed in a `match key { ... }` block of a
//!   declared config-source file must appear in that source's key doc
//!   (by default `docs/CONFIG.md`, overridable per source — the soak
//!   harness documents its keys in `docs/WORKLOADS.md`) *and* in its
//!   example config when one is declared (an entry commented out with
//!   `#` counts — the example documents the key either way), and vice
//!   versa.

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;
use crate::RULE_DRIFT;
use std::collections::BTreeMap;

/// One group of config-key sources and the doc/example pair their keys
/// round-trip against. Doc inputs are `(rel_path, text)`.
pub struct ConfigDriftGroup {
    /// Source files whose `match key { ... }` arms define this group's
    /// keys.
    pub sources: Vec<String>,
    /// The doc holding the group's key table.
    pub config_doc: Option<(String, String)>,
    /// The group's example config file, if it has one.
    pub example_conf: Option<(String, String)>,
}

/// Everything the drift rule needs.
pub struct DriftInputs<'a> {
    /// All scanned source files.
    pub files: &'a [SourceFile],
    /// Config-key source groups, each with its own doc targets.
    pub config_groups: &'a [ConfigDriftGroup],
    /// `docs/OBSERVABILITY.md`.
    pub observability_doc: Option<(String, String)>,
}

/// Run both drift checks.
pub fn doc_drift(inputs: &DriftInputs<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    metric_drift(inputs, &mut out);
    for group in inputs.config_groups {
        config_drift(inputs.files, group, &mut out);
    }
    out
}

fn metric_drift(inputs: &DriftInputs<'_>, out: &mut Vec<Finding>) {
    let Some((doc_path, doc_text)) = &inputs.observability_doc else {
        return;
    };
    // Code side: first occurrence of each metric-name string literal.
    let mut code: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for file in inputs.files {
        for (_, t) in file.sig_tokens() {
            if !matches!(t.kind, TokenKind::StringLit | TokenKind::RawStringLit) {
                continue;
            }
            let content = t.str_content();
            if is_metric_name(content) {
                code.entry(content.to_string())
                    .or_insert_with(|| (file.rel_path.clone(), t.line));
            }
        }
    }
    let doc_names = scan_metric_names(doc_text);
    for (name, (file, line)) in &code {
        if !doc_names.contains_key(name) {
            out.push(Finding {
                rule: RULE_DRIFT,
                file: file.clone(),
                line: *line,
                message: format!("metric `{name}` is used in code but missing from {doc_path}"),
                excerpt: format!("\"{name}\""),
            });
        }
    }
    for (name, line) in &doc_names {
        // Histogram families are registered by base name; the doc may
        // legitimately mention the exported `_bucket`/`_sum`/`_count`
        // series, so strip that suffix before deciding it is stale.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !code.contains_key(name) && !code.contains_key(base) {
            out.push(Finding {
                rule: RULE_DRIFT,
                file: doc_path.clone(),
                line: *line,
                message: format!(
                    "metric `{name}` is documented here but no code registers or reads it"
                ),
                excerpt: format!("`{name}`"),
            });
        }
    }
}

fn is_metric_name(s: &str) -> bool {
    s.strip_prefix("flowdns_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    })
}

/// All `flowdns_[a-z0-9_]+` occurrences in free text, with the first
/// line each name appears on.
fn scan_metric_names(text: &str) -> BTreeMap<String, u32> {
    let mut names = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(off) = line[i..].find("flowdns_") {
            let start = i + off;
            // Must not be preceded by an identifier character (avoids
            // matching inside a longer word).
            if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
                i = start + 1;
                continue;
            }
            let mut end = start + "flowdns_".len();
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase()
                    || bytes[end].is_ascii_digit()
                    || bytes[end] == b'_')
            {
                end += 1;
            }
            let name = &line[start..end];
            if is_metric_name(name) {
                names
                    .entry(name.trim_end_matches('_').to_string())
                    .or_insert(idx as u32 + 1);
            }
            i = end;
        }
    }
    names
}

fn config_drift(files: &[SourceFile], group: &ConfigDriftGroup, out: &mut Vec<Finding>) {
    let mut code: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for file in files {
        if !group.sources.contains(&file.rel_path) {
            continue;
        }
        for (key, line) in match_key_arms(file) {
            code.entry(key)
                .or_insert_with(|| (file.rel_path.clone(), line));
        }
    }
    if code.is_empty() {
        return;
    }
    let doc_keys = group
        .config_doc
        .as_ref()
        .map(|(_, text)| table_keys(text))
        .unwrap_or_default();
    let conf_keys = group
        .example_conf
        .as_ref()
        .map(|(_, text)| conf_file_keys(text))
        .unwrap_or_default();

    for (key, (file, line)) in &code {
        if let Some((doc_path, _)) = &group.config_doc {
            if !doc_keys.contains_key(key) {
                out.push(Finding {
                    rule: RULE_DRIFT,
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "config key `{key}` is parsed here but missing from {doc_path}"
                    ),
                    excerpt: format!("\"{key}\""),
                });
            }
        }
        if let Some((conf_path, _)) = &group.example_conf {
            if !conf_keys.contains_key(key) {
                out.push(Finding {
                    rule: RULE_DRIFT,
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "config key `{key}` is parsed here but absent from {conf_path} — add \
                         it (a commented-out `# {key} = ...` line counts)"
                    ),
                    excerpt: format!("\"{key}\""),
                });
            }
        }
    }
    if let Some((doc_path, _)) = &group.config_doc {
        for (key, line) in &doc_keys {
            if !code.contains_key(key) {
                out.push(Finding {
                    rule: RULE_DRIFT,
                    file: doc_path.clone(),
                    line: *line,
                    message: format!(
                        "config key `{key}` is documented here but no parser accepts it"
                    ),
                    excerpt: format!("`{key}`"),
                });
            }
        }
    }
    if let Some((conf_path, _)) = &group.example_conf {
        for (key, line) in &conf_keys {
            if !code.contains_key(key) {
                out.push(Finding {
                    rule: RULE_DRIFT,
                    file: conf_path.clone(),
                    line: *line,
                    message: format!(
                        "config key `{key}` appears in the example config but no parser \
                         accepts it"
                    ),
                    excerpt: format!("{key} = ..."),
                });
            }
        }
    }
}

/// String-literal arms of `match key { ... }` blocks: the token after
/// the literal must be `|` (alternative) or `=>` (arm arrow), which
/// excludes literals inside arm bodies such as error messages.
fn match_key_arms(file: &SourceFile) -> Vec<(String, u32)> {
    let toks = file.sig_tokens();
    let text = |p: usize| toks.get(p).map(|(_, t)| t.text.as_str());
    let mut keys = Vec::new();
    let mut p = 0;
    while p < toks.len() {
        if text(p) == Some("match") && text(p + 1) == Some("key") && text(p + 2) == Some("{") {
            let mut depth = 0i32;
            let mut q = p + 2;
            while let Some(t) = text(q) {
                match t {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        let tok = toks[q].1;
                        if tok.kind == TokenKind::StringLit {
                            let next_is_arm = text(q + 1) == Some("|")
                                || (text(q + 1) == Some("=") && text(q + 2) == Some(">"));
                            if next_is_arm {
                                keys.push((tok.str_content().to_string(), tok.line));
                            }
                        }
                    }
                }
                q += 1;
            }
            p = q;
        }
        p += 1;
    }
    keys
}

/// Keys from markdown tables: first cell of a `|`-delimited row when it
/// is a backtick-quoted identifier.
fn table_keys(text: &str) -> BTreeMap<String, u32> {
    let mut keys = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix('|') else {
            continue;
        };
        let Some(cell) = rest.split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        if let Some(inner) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            if is_ident(inner) {
                keys.entry(inner.to_string()).or_insert(idx as u32 + 1);
            }
        }
    }
    keys
}

/// Keys from a `key = value` config file; leading `#` markers are
/// stripped first so commented-out example lines document their key.
fn conf_file_keys(text: &str) -> BTreeMap<String, u32> {
    let mut keys = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let mut rest = line.trim_start();
        while let Some(r) = rest.strip_prefix('#') {
            rest = r.trim_start();
        }
        let Some((key, _)) = rest.split_once('=') else {
            continue;
        };
        let key = key.trim();
        if is_ident(key) {
            keys.entry(key.to_string()).or_insert(idx as u32 + 1);
        }
    }
    keys
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .next()
            .is_some_and(|b| b.is_ascii_lowercase() || b == b'_')
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_drift_both_directions() {
        let files = vec![SourceFile::new(
            "a.rs".into(),
            "fn f() { reg.counter(\"flowdns_used_total\"); reg.counter(\"flowdns_undocumented_total\"); }",
        )];
        let inputs = DriftInputs {
            files: &files,
            config_groups: &[],
            observability_doc: Some((
                "docs/OBS.md".into(),
                "| `flowdns_used_total` | count |\n| `flowdns_ghost_total` | gone |\n".into(),
            )),
        };
        let out = doc_drift(&inputs);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out
            .iter()
            .any(|f| f.message.contains("flowdns_undocumented_total") && f.file == "a.rs"));
        assert!(out
            .iter()
            .any(|f| f.message.contains("flowdns_ghost_total") && f.file == "docs/OBS.md"));
    }

    #[test]
    fn histogram_suffixes_resolve_to_base_name() {
        let files = vec![SourceFile::new(
            "a.rs".into(),
            "fn f() { reg.histogram(\"flowdns_wait_us\"); }",
        )];
        let inputs = DriftInputs {
            files: &files,
            config_groups: &[],
            observability_doc: Some((
                "docs/OBS.md".into(),
                "`flowdns_wait_us` exports `flowdns_wait_us_bucket` and `flowdns_wait_us_count`."
                    .into(),
            )),
        };
        assert!(doc_drift(&inputs).is_empty());
    }

    #[test]
    fn metric_names_in_test_code_are_ignored() {
        let files = vec![SourceFile::new(
            "a.rs".into(),
            "#[cfg(test)]\nmod tests {\n fn t() { reg.counter(\"flowdns_test_only\"); }\n}",
        )];
        let inputs = DriftInputs {
            files: &files,
            config_groups: &[],
            observability_doc: Some(("docs/OBS.md".into(), String::new())),
        };
        assert!(doc_drift(&inputs).is_empty());
    }

    #[test]
    fn config_drift_three_way() {
        let files = vec![SourceFile::new(
            "cfg.rs".into(),
            "fn apply(key: &str) { match key {\n \"known\" => {}\n \"undocumented\" => {}\n _ => { err(\"not a key literal\") }\n} }",
        )];
        let groups = vec![ConfigDriftGroup {
            sources: vec!["cfg.rs".to_string()],
            config_doc: Some((
                "docs/CONFIG.md".into(),
                "| `known` | 1 |\n| `ghost` | 2 |\n".into(),
            )),
            example_conf: Some((
                "ex.conf".into(),
                "known = 1\n# undocumented = 2\nstray = 3\n".into(),
            )),
        }];
        let inputs = DriftInputs {
            files: &files,
            config_groups: &groups,
            observability_doc: None,
        };
        let out = doc_drift(&inputs);
        // undocumented: missing from CONFIG.md (present in conf via comment);
        // ghost: doc-only; stray: conf-only.
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out
            .iter()
            .any(|f| f.file == "cfg.rs" && f.message.contains("`undocumented`")));
        assert!(out
            .iter()
            .any(|f| f.file == "docs/CONFIG.md" && f.message.contains("`ghost`")));
        assert!(out
            .iter()
            .any(|f| f.file == "ex.conf" && f.message.contains("`stray`")));
    }

    #[test]
    fn per_source_doc_overrides_keep_groups_separate() {
        // Two sources with disjoint key sets and their own docs: keys
        // must round-trip only inside their group — `soak_key` being
        // absent from CONFIG.md is fine, and `daemon_key` being absent
        // from WORKLOADS.md is fine. A second group with no example
        // conf must not demand one.
        let files = vec![
            SourceFile::new(
                "daemon.rs".into(),
                "fn apply(key: &str) { match key { \"daemon_key\" => {} _ => {} } }",
            ),
            SourceFile::new(
                "soak.rs".into(),
                "fn apply(key: &str) { match key { \"soak_key\" => {} _ => {} } }",
            ),
        ];
        let groups = vec![
            ConfigDriftGroup {
                sources: vec!["daemon.rs".to_string()],
                config_doc: Some(("docs/CONFIG.md".into(), "| `daemon_key` | 1 |\n".into())),
                example_conf: Some(("ex.conf".into(), "daemon_key = 1\n".into())),
            },
            ConfigDriftGroup {
                sources: vec!["soak.rs".to_string()],
                config_doc: Some(("docs/WORKLOADS.md".into(), "| `soak_key` | 1 |\n".into())),
                example_conf: None,
            },
        ];
        let inputs = DriftInputs {
            files: &files,
            config_groups: &groups,
            observability_doc: None,
        };
        assert!(doc_drift(&inputs).is_empty());

        // And a key missing from its own group's doc still fires.
        let groups = vec![ConfigDriftGroup {
            sources: vec!["soak.rs".to_string()],
            config_doc: Some(("docs/WORKLOADS.md".into(), "no table here\n".into())),
            example_conf: None,
        }];
        let inputs = DriftInputs {
            files: &files,
            config_groups: &groups,
            observability_doc: None,
        };
        let out = doc_drift(&inputs);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`soak_key`"));
        assert!(out[0].message.contains("docs/WORKLOADS.md"));
    }
}
