//! `flowdns-analyzer`: a repo-native static-analysis pass that keeps the
//! FlowDNS lock-free hot path honest. It lexes the workspace with its
//! own minimal Rust lexer (no crates.io in this environment) and runs
//! five rules over the token stream:
//!
//! 1. `undocumented-unsafe` — every `unsafe` needs a `// SAFETY:` comment
//! 2. `hot-path-lock` — no locks or per-record allocation in declared
//!    hot-path functions
//! 3. `unjustified-relaxed` — relaxed atomic stores need an
//!    `// ordering:` justification; Release-store/Relaxed-load pairs on
//!    the same field are flagged
//! 4. `panic-free-daemon` — no panicking constructs in daemon threads
//! 5. `doc-drift` — metric names ↔ `docs/OBSERVABILITY.md` and config
//!    keys ↔ `docs/CONFIG.md` + `examples/flowdnsd.conf`, both directions
//!
//! Each rule has a TOML allowlist (see `crates/analyzer/allowlists/`);
//! entries require a written reason and go stale loudly. The catalogue
//! of invariants and their history lives in `docs/INVARIANTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod drift;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod toml;

use report::Finding;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Rule 1 ID.
pub const RULE_UNSAFE: &str = "undocumented-unsafe";
/// Rule 2 ID.
pub const RULE_HOT_PATH: &str = "hot-path-lock";
/// Rule 3 ID.
pub const RULE_RELAXED: &str = "unjustified-relaxed";
/// Rule 4 ID.
pub const RULE_PANIC: &str = "panic-free-daemon";
/// Rule 5 ID.
pub const RULE_DRIFT: &str = "doc-drift";
/// Pseudo-rule for allowlist entries that no longer match anything.
pub const RULE_STALE_ALLOWLIST: &str = "stale-allowlist";
/// Pseudo-rule for malformed allowlist entries (bad TOML, empty reason).
pub const RULE_INVALID_ALLOWLIST: &str = "invalid-allowlist";

/// The five allowlistable rules.
pub const ALL_RULES: [&str; 5] = [
    RULE_UNSAFE,
    RULE_HOT_PATH,
    RULE_RELAXED,
    RULE_PANIC,
    RULE_DRIFT,
];

/// A file-scoped rule target; `functions` empty means the whole file.
#[derive(Debug, Clone, Default)]
pub struct ScopeSpec {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Function names inside the file; empty = whole file.
    pub functions: Vec<String>,
}

/// One config-key source file for `doc-drift`. By default its keys are
/// checked against the global `[docs]` config doc and example conf; a
/// source may instead name its own doc (and optionally its own example
/// file) — e.g. the soak harness documents its keys in
/// `docs/WORKLOADS.md`, not `docs/CONFIG.md`, and ships no example
/// conf. When either override is present, only the named targets are
/// checked.
#[derive(Debug, Clone, Default)]
pub struct ConfigSourceSpec {
    /// Workspace-relative path of the source file.
    pub path: String,
    /// Override doc holding this source's key table.
    pub doc: Option<String>,
    /// Override example config file.
    pub example_conf: Option<String>,
}

/// What to scan and which scopes each rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root all relative paths resolve against.
    pub root: PathBuf,
    /// Directories (relative to root) to walk for `.rs` files.
    pub scan_roots: Vec<String>,
    /// Directory *names* skipped anywhere in the walk.
    pub exclude_dirs: Vec<String>,
    /// Declared hot-path scopes for `hot-path-lock`.
    pub hot_paths: Vec<ScopeSpec>,
    /// Files checked by `panic-free-daemon` (whole-file granularity).
    pub daemon_files: Vec<String>,
    /// Files whose `match key { ... }` arms define config keys.
    pub config_sources: Vec<ConfigSourceSpec>,
    /// Path to the metric inventory doc, if drift-checking metrics.
    pub observability_doc: Option<String>,
    /// Path to the config-key doc, if drift-checking config keys.
    pub config_doc: Option<String>,
    /// Path to the example config file.
    pub example_conf: Option<String>,
    /// Directory holding `<rule>.toml` allowlists.
    pub allowlist_dir: Option<String>,
}

impl Config {
    /// An empty config rooted at `root` (tests build on this).
    pub fn bare(root: PathBuf) -> Config {
        Config {
            root,
            scan_roots: vec![".".to_string()],
            exclude_dirs: Vec::new(),
            hot_paths: Vec::new(),
            daemon_files: Vec::new(),
            config_sources: Vec::new(),
            observability_doc: None,
            config_doc: None,
            example_conf: None,
            allowlist_dir: None,
        }
    }

    /// Load scopes from an `analyzer.toml` (see the one shipped in
    /// `crates/analyzer/` for the format).
    pub fn from_toml(root: PathBuf, toml_rel: &str) -> Result<Config, String> {
        let path = root.join(toml_rel);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let tables = toml::parse(&src, toml_rel)?;
        let mut config = Config::bare(root);
        config.scan_roots.clear();
        for table in tables {
            let get = |k: &str| table.entries.get(k).and_then(|v| v.as_str());
            let get_list = |k: &str| {
                table
                    .entries
                    .get(k)
                    .map(|v| v.as_list())
                    .unwrap_or_default()
            };
            match table.name.as_str() {
                "scan" => {
                    config.scan_roots = get_list("roots");
                    config.exclude_dirs = get_list("exclude_dirs");
                }
                "hot_path" => config.hot_paths.push(ScopeSpec {
                    path: get("path")
                        .ok_or_else(|| {
                            format!("{toml_rel}:{}: [[hot_path]] needs `path`", table.line)
                        })?
                        .to_string(),
                    functions: get_list("functions"),
                }),
                "daemon" => config.daemon_files.push(
                    get("path")
                        .ok_or_else(|| {
                            format!("{toml_rel}:{}: [[daemon]] needs `path`", table.line)
                        })?
                        .to_string(),
                ),
                "config_source" => config.config_sources.push(ConfigSourceSpec {
                    path: get("path")
                        .ok_or_else(|| {
                            format!("{toml_rel}:{}: [[config_source]] needs `path`", table.line)
                        })?
                        .to_string(),
                    doc: get("doc").map(str::to_string),
                    example_conf: get("example_conf").map(str::to_string),
                }),
                "docs" => {
                    config.observability_doc = get("observability").map(str::to_string);
                    config.config_doc = get("config").map(str::to_string);
                    config.example_conf = get("example_conf").map(str::to_string);
                }
                "allowlists" => {
                    config.allowlist_dir = get("dir").map(str::to_string);
                }
                other => {
                    return Err(format!(
                        "{toml_rel}:{}: unknown table `[{other}]`",
                        table.line
                    ));
                }
            }
        }
        if config.scan_roots.is_empty() {
            return Err(format!("{toml_rel}: [scan] roots must not be empty"));
        }
        Ok(config)
    }
}

/// Result of one analyzer run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Findings after allowlisting, in canonical order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
}

/// Run all rules over the configured tree.
pub fn analyze(config: &Config) -> Result<AnalysisReport, String> {
    let mut rs_files = Vec::new();
    for scan_root in &config.scan_roots {
        let dir = config.root.join(scan_root);
        if dir.is_dir() {
            collect_rs(&dir, &config.root, &config.exclude_dirs, &mut rs_files)?;
        }
    }
    rs_files.sort();
    rs_files.dedup();

    let mut files = Vec::with_capacity(rs_files.len());
    for rel in &rs_files {
        let src = std::fs::read_to_string(config.root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        files.push(SourceFile::new(rel.clone(), src.as_str()));
    }

    let mut findings = Vec::new();
    for file in &files {
        findings.extend(rules::undocumented_unsafe(file));
        findings.extend(rules::unjustified_relaxed(file));
        if let Some(spec) = config.hot_paths.iter().find(|s| s.path == file.rel_path) {
            findings.extend(rules::hot_path_lock(file, &spec.functions));
        }
        if config.daemon_files.contains(&file.rel_path) {
            findings.extend(rules::panic_free(file));
        }
    }

    let read_doc = |rel: &Option<String>| -> Result<Option<(String, String)>, String> {
        match rel {
            None => Ok(None),
            Some(rel) => {
                let text = std::fs::read_to_string(config.root.join(rel))
                    .map_err(|e| format!("cannot read {rel}: {e}"))?;
                Ok(Some((rel.clone(), text)))
            }
        }
    };
    // Group the config sources by the doc/example pair their keys are
    // checked against: sources with an override form their own group
    // (only the named targets are checked); the rest share the global
    // `[docs]` pair.
    let mut config_groups: Vec<drift::ConfigDriftGroup> = Vec::new();
    for spec in &config.config_sources {
        let has_override = spec.doc.is_some() || spec.example_conf.is_some();
        let (doc, conf) = if has_override {
            (read_doc(&spec.doc)?, read_doc(&spec.example_conf)?)
        } else {
            (read_doc(&config.config_doc)?, read_doc(&config.example_conf)?)
        };
        let same_pair = |group: &&mut drift::ConfigDriftGroup| {
            group.config_doc.as_ref().map(|(p, _)| p) == doc.as_ref().map(|(p, _)| p)
                && group.example_conf.as_ref().map(|(p, _)| p) == conf.as_ref().map(|(p, _)| p)
        };
        match config_groups.iter_mut().find(same_pair) {
            Some(group) => group.sources.push(spec.path.clone()),
            None => config_groups.push(drift::ConfigDriftGroup {
                sources: vec![spec.path.clone()],
                config_doc: doc,
                example_conf: conf,
            }),
        }
    }
    let inputs = drift::DriftInputs {
        files: &files,
        config_groups: &config_groups,
        observability_doc: read_doc(&config.observability_doc)?,
    };
    findings.extend(drift::doc_drift(&inputs));

    if let Some(dir) = &config.allowlist_dir {
        let (lists, mut invalid) = allowlist::Allowlists::load(&config.root, dir, &ALL_RULES);
        findings = lists.apply(findings);
        findings.append(&mut invalid);
    }

    report::sort_findings(&mut findings);
    // Two pattern hits on one line (e.g. `[name[0], name[1]]`) carry no
    // extra information; report each (file, line, rule, message) once.
    findings.dedup();
    Ok(AnalysisReport {
        findings,
        files_scanned: files.len(),
    })
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    exclude_dirs: &[String],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || exclude_dirs.iter().any(|d| d == name.as_ref()) {
                continue;
            }
            collect_rs(&path, root, exclude_dirs, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the root", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}
