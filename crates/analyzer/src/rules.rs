//! The token-stream rules: undocumented-unsafe, hot-path-lock,
//! unjustified-relaxed (plus Release/Relaxed pair detection), and
//! panic-free-daemon. Drift detection lives in [`crate::drift`].

use crate::report::Finding;
use crate::source::SourceFile;
use crate::{RULE_HOT_PATH, RULE_PANIC, RULE_RELAXED, RULE_UNSAFE};

/// Lines above a site in which a justification comment still counts.
/// One comment may cover a small cluster of adjacent sites.
pub const COMMENT_WINDOW: u32 = 5;

/// Atomic methods that publish a value (stores and RMWs).
const ATOMIC_WRITE_OPS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn finding(file: &SourceFile, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        excerpt: file.line_text(line).to_string(),
    }
}

/// Rule 1: every `unsafe` keyword outside test code must have a
/// `// SAFETY:` comment on the same line or just above it.
pub fn undocumented_unsafe(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (_, t) in file.sig_tokens() {
        if t.text == "unsafe" && !file.has_comment_marker(t.line, "SAFETY:", COMMENT_WINDOW) {
            out.push(finding(
                file,
                RULE_UNSAFE,
                t.line,
                "`unsafe` without a preceding `// SAFETY:` comment explaining why the \
                 invariants hold"
                    .to_string(),
            ));
        }
    }
    out
}

/// Rule 2: no locks or per-record heap allocation inside the declared
/// hot-path functions (`functions` empty = the whole file is hot).
pub fn hot_path_lock(file: &SourceFile, functions: &[String]) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = file.sig_tokens();
    let text = |p: usize| toks.get(p).map(|(_, t)| t.text.as_str());
    for (start, end) in file.fn_spans(functions) {
        for p in start..end {
            let Some((_, t)) = toks.get(p) else { break };
            let line = t.line;
            let mut flag = |what: &str| {
                out.push(finding(
                    file,
                    RULE_HOT_PATH,
                    line,
                    format!(
                        "{what} on a declared hot path — the per-record path must stay \
                         lock-free and allocation-free"
                    ),
                ));
            };
            match t.text.as_str() {
                "Mutex" | "RwLock" => flag(&format!("`{}` use", t.text)),
                "." if text(p + 1) == Some("lock") && text(p + 2) == Some("(") => {
                    flag("`.lock()` call");
                }
                "." if text(p + 1) == Some("to_string") && text(p + 2) == Some("(") => {
                    flag("`.to_string()` allocation");
                }
                "Box"
                    if text(p + 1) == Some(":")
                        && text(p + 2) == Some(":")
                        && text(p + 3) == Some("new") =>
                {
                    flag("`Box::new` allocation");
                }
                "Vec"
                    if text(p + 1) == Some(":")
                        && text(p + 2) == Some(":")
                        && text(p + 3) == Some("new") =>
                {
                    flag("`Vec::new` allocation");
                }
                "format" if text(p + 1) == Some("!") => flag("`format!` allocation"),
                _ => {}
            }
        }
    }
    out
}

/// One atomic call site found in a file.
#[derive(Debug)]
struct AtomicSite {
    /// Identifier immediately before the method (usually the field).
    field: String,
    /// Method name (`store`, `load`, `fetch_add`, ...).
    op: String,
    /// First `Ordering::X` inside the call's parentheses.
    ordering: String,
    line: u32,
}

/// Scan a file for atomic method calls with an explicit `Ordering::X`
/// argument.
fn atomic_sites(file: &SourceFile) -> Vec<AtomicSite> {
    let toks = file.sig_tokens();
    let text = |p: usize| toks.get(p).map(|(_, t)| t.text.as_str());
    let mut sites = Vec::new();
    for p in 0..toks.len() {
        if text(p) != Some(".") {
            continue;
        }
        let Some(op) = text(p + 1) else { continue };
        if !(op == "load" || ATOMIC_WRITE_OPS.contains(&op)) || text(p + 2) != Some("(") {
            continue;
        }
        // The receiver: identifier right before the dot, if any.
        let field = if p > 0 {
            match &toks[p - 1].1.kind {
                crate::lexer::TokenKind::Ident => toks[p - 1].1.text.clone(),
                _ => "<expr>".to_string(),
            }
        } else {
            "<expr>".to_string()
        };
        // Find the first Ordering::X inside the balanced call parens.
        let mut depth = 0i32;
        let mut q = p + 2;
        let mut ordering = None;
        while let Some(t) = text(q) {
            match t {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "Ordering"
                    if ordering.is_none()
                        && text(q + 1) == Some(":")
                        && text(q + 2) == Some(":") =>
                {
                    ordering = text(q + 3).map(str::to_string);
                }
                _ => {}
            }
            q += 1;
        }
        if let Some(ordering) = ordering {
            sites.push(AtomicSite {
                field,
                op: op.to_string(),
                ordering,
                line: toks[p].1.line,
            });
        }
    }
    sites
}

/// Rule 3: every `Ordering::Relaxed` store/RMW needs an `// ordering:`
/// justification comment nearby, and a field that is Release-published
/// in this file must not be Relaxed-loaded in it.
pub fn unjustified_relaxed(file: &SourceFile) -> Vec<Finding> {
    let sites = atomic_sites(file);
    let mut out = Vec::new();
    for site in &sites {
        if site.op != "load"
            && site.ordering == "Relaxed"
            && !file.has_comment_marker(site.line, "ordering:", COMMENT_WINDOW)
        {
            out.push(finding(
                file,
                RULE_RELAXED,
                site.line,
                format!(
                    "`{}.{}` with `Ordering::Relaxed` has no `// ordering:` justification — \
                     say why no happens-before edge is needed (or add an allowlist entry)",
                    site.field, site.op
                ),
            ));
        }
    }
    // Release-store / Relaxed-load pairs on the same field: the reader
    // discards exactly the edge the writer paid for.
    for load in sites
        .iter()
        .filter(|s| s.op == "load" && s.ordering == "Relaxed")
    {
        if let Some(publish) = sites.iter().find(|s| {
            s.op != "load"
                && s.field == load.field
                && s.field != "<expr>"
                && matches!(s.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
        }) {
            out.push(finding(
                file,
                RULE_RELAXED,
                load.line,
                format!(
                    "`{}` is published with `Ordering::{}` (line {}) but loaded here with \
                     `Ordering::Relaxed` — the load does not synchronize with the publish; \
                     use `Acquire` or justify",
                    load.field, publish.ordering, publish.line
                ),
            ));
        }
    }
    out
}

/// Rule 4: no panicking constructs in daemon/hot-path files.
pub fn panic_free(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = file.sig_tokens();
    let text = |p: usize| toks.get(p).map(|(_, t)| t.text.as_str());
    let kind = |p: usize| toks.get(p).map(|(_, t)| t.kind);
    for (p, (_, tok)) in toks.iter().enumerate() {
        let line = tok.line;
        let mut flag = |what: String| {
            out.push(finding(
                file,
                RULE_PANIC,
                line,
                format!(
                    "{what} in a long-running daemon/hot-path module — handle the error or \
                     degrade gracefully; a panic here kills a worker thread mid-stream"
                ),
            ));
        };
        match text(p) {
            Some(".")
                if matches!(text(p + 1), Some("unwrap" | "expect")) && text(p + 2) == Some("(") =>
            {
                flag(format!("`.{}()`", text(p + 1).unwrap_or_default()));
            }
            Some(m @ ("panic" | "unreachable" | "unimplemented" | "todo"))
                if text(p + 1) == Some("!") =>
            {
                flag(format!("`{m}!`"));
            }
            Some("[") if kind(p + 1) == Some(crate::lexer::TokenKind::Number) => {
                // `buf[0]` and `buf[8..24]`: panics when out of bounds.
                // `[0u8; N]` (array literal/type) is fine: `;` follows.
                let is_index = text(p + 2) == Some("]")
                    || (text(p + 2) == Some(".") && text(p + 3) == Some("."));
                if is_index {
                    flag("indexing with a literal".to_string());
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("t.rs".into(), src)
    }

    #[test]
    fn unsafe_with_and_without_safety_comment() {
        let f =
            file("// SAFETY: fd is owned\nunsafe { close(fd) };\n\n\n\n\n\nunsafe { free(p) };");
        let out = undocumented_unsafe(&f);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 8);
    }

    #[test]
    fn hot_path_flags_only_declared_functions() {
        let f = file("fn hot() { let m = Mutex::new(0); m.lock(); }\nfn cold() { x.lock(); }");
        let out = hot_path_lock(&f, &["hot".to_string()]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.line == 1));
    }

    #[test]
    fn relaxed_store_needs_comment_relaxed_load_does_not() {
        let f = file(
            "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n    let _ = b.load(Ordering::Relaxed);\n}",
        );
        let out = unjustified_relaxed(&f);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn release_store_relaxed_load_pair_is_flagged() {
        let f = file(
            "fn w(&self) { self.epoch.store(1, Ordering::Release); }\n\
             fn r(&self) -> u64 { self.epoch.load(Ordering::Relaxed) }",
        );
        let out = unjustified_relaxed(&f);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("does not synchronize"));
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn panic_rule_catches_the_constructs() {
        let f = file(
            "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"no\");\n    let a = buf[0];\n    let s = &buf[8..24];\n    let ok = [0u8; 16];\n    z.unwrap_or(3);\n}",
        );
        let out = panic_free(&f);
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6]);
    }
}
