//! NetFlow version 9 packet codec (RFC 3954).
//!
//! A v9 packet is a 20-byte header followed by *flowsets*. A template
//! flowset (id 0) announces templates; a data flowset (id ≥ 256) carries
//! records laid out according to a previously announced template. The
//! [`V9Parser`] keeps a [`TemplateCache`](crate::template::TemplateCache)
//! across packets, exactly like a real collector, so data flowsets
//! arriving before their templates are counted instead of crashing the
//! parse.

use std::collections::BTreeMap;
use std::net::IpAddr;

use flowdns_types::FlowDnsError;

use crate::template::{FieldSpec, FieldType, Template, TemplateRegistry};

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::NetflowParse(msg.into())
}

/// Size of the v9 packet header in bytes.
pub const V9_HEADER_LEN: usize = 20;
/// Flowset id announcing data templates.
pub const TEMPLATE_FLOWSET_ID: u16 = 0;
/// Flowset id announcing options templates (parsed and skipped).
pub const OPTIONS_TEMPLATE_FLOWSET_ID: u16 = 1;

/// One decoded data record: field values keyed by field type.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataRecord {
    /// Raw field values, keyed by wire field-type value to keep an
    /// unambiguous ordering for tests.
    pub fields: BTreeMap<u16, Vec<u8>>,
}

impl DataRecord {
    /// Get a field's raw bytes.
    pub fn raw(&self, ftype: FieldType) -> Option<&[u8]> {
        self.fields.get(&ftype.to_u16()).map(|v| v.as_slice())
    }

    /// Interpret a field as a big-endian unsigned integer (1–8 bytes).
    pub fn uint(&self, ftype: FieldType) -> Option<u64> {
        let raw = self.raw(ftype)?;
        if raw.is_empty() || raw.len() > 8 {
            return None;
        }
        let mut v = 0u64;
        for b in raw {
            v = (v << 8) | *b as u64;
        }
        Some(v)
    }

    /// Interpret a field as an IP address (4 or 16 bytes).
    pub fn ip(&self, ftype: FieldType) -> Option<IpAddr> {
        let raw = self.raw(ftype)?;
        match raw.len() {
            4 => Some(IpAddr::from([raw[0], raw[1], raw[2], raw[3]])),
            16 => {
                let mut o = [0u8; 16];
                o.copy_from_slice(raw);
                Some(IpAddr::from(o))
            }
            _ => None,
        }
    }
}

/// One flowset of a parsed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowSet {
    /// A template flowset carrying template definitions.
    Templates(Vec<Template>),
    /// A data flowset whose template was known: decoded records.
    Data {
        /// The template id the records follow.
        template_id: u16,
        /// The decoded records.
        records: Vec<DataRecord>,
    },
    /// A data flowset whose template was not (yet) known.
    UnknownTemplate {
        /// The referenced template id.
        template_id: u16,
        /// The undecoded payload bytes.
        bytes: usize,
    },
    /// An options-template flowset (recognized but not interpreted).
    OptionsTemplate,
}

/// A parsed NetFlow v9 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V9Packet {
    /// Milliseconds since the exporter booted.
    pub sys_uptime_ms: u32,
    /// Export time in seconds since the Unix epoch.
    pub unix_secs: u32,
    /// Packet sequence number.
    pub sequence: u32,
    /// Exporter source id.
    pub source_id: u32,
    /// The flowsets carried by the packet.
    pub flowsets: Vec<FlowSet>,
}

impl V9Packet {
    /// All successfully decoded data records in the packet.
    pub fn data_records(&self) -> impl Iterator<Item = &DataRecord> {
        self.flowsets.iter().flat_map(|fs| match fs {
            FlowSet::Data { records, .. } => records.as_slice(),
            _ => &[],
        })
    }
}

/// Stateful NetFlow v9 parser (one per exporter peer).
#[derive(Debug, Default)]
pub struct V9Parser {
    /// Per-source template caches shared across packets.
    pub templates: TemplateRegistry,
    /// Total packets parsed.
    pub packets: u64,
    /// Total data records decoded.
    pub records: u64,
}

impl V9Parser {
    /// A fresh parser with an empty template cache.
    pub fn new() -> Self {
        V9Parser::default()
    }

    /// Parse one export packet, updating the template cache.
    pub fn parse(&mut self, bytes: &[u8]) -> Result<V9Packet, FlowDnsError> {
        if bytes.len() < V9_HEADER_LEN {
            return Err(err("packet shorter than v9 header"));
        }
        let version = u16::from_be_bytes([bytes[0], bytes[1]]);
        if version != 9 {
            return Err(err(format!("not a v9 packet (version {version})")));
        }
        let declared_count = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        let sys_uptime_ms = be32(&bytes[4..8]);
        let unix_secs = be32(&bytes[8..12]);
        let sequence = be32(&bytes[12..16]);
        let source_id = be32(&bytes[16..20]);

        let mut flowsets = Vec::new();
        let mut decoded_records = 0usize;
        let mut offset = V9_HEADER_LEN;
        while offset + 4 <= bytes.len() {
            let flowset_id = u16::from_be_bytes([bytes[offset], bytes[offset + 1]]);
            let length = u16::from_be_bytes([bytes[offset + 2], bytes[offset + 3]]) as usize;
            if length < 4 {
                return Err(err(format!("flowset length {length} too small")));
            }
            if offset + length > bytes.len() {
                return Err(err("flowset runs past end of packet"));
            }
            let body = &bytes[offset + 4..offset + length];
            match flowset_id {
                TEMPLATE_FLOWSET_ID => {
                    let templates = parse_template_flowset(body)?;
                    for t in &templates {
                        self.templates.insert(source_id, t.clone());
                    }
                    flowsets.push(FlowSet::Templates(templates));
                }
                OPTIONS_TEMPLATE_FLOWSET_ID => {
                    flowsets.push(FlowSet::OptionsTemplate);
                }
                id if id >= 256 => match self.templates.get(source_id, id).cloned() {
                    Some(template) => {
                        let records = parse_data_flowset(body, &template)?;
                        decoded_records += records.len();
                        flowsets.push(FlowSet::Data {
                            template_id: id,
                            records,
                        });
                    }
                    None => {
                        self.templates.note_unknown(source_id);
                        flowsets.push(FlowSet::UnknownTemplate {
                            template_id: id,
                            bytes: body.len(),
                        });
                    }
                },
                id => {
                    return Err(err(format!("reserved flowset id {id}")));
                }
            }
            offset += length;
        }
        if offset != bytes.len() {
            return Err(err(format!(
                "{} trailing bytes after last flowset",
                bytes.len() - offset
            )));
        }

        // The header count field counts both data records and templates; a
        // strict check is impossible when templates are unknown, but a
        // decoded-record count wildly exceeding the declared count means
        // corruption.
        if declared_count > 0 && decoded_records > declared_count * 4 {
            return Err(err(format!(
                "decoded {decoded_records} records but header declares {declared_count}"
            )));
        }

        self.packets += 1;
        self.records += decoded_records as u64;

        Ok(V9Packet {
            sys_uptime_ms,
            unix_secs,
            sequence,
            source_id,
            flowsets,
        })
    }
}

fn parse_template_flowset(body: &[u8]) -> Result<Vec<Template>, FlowDnsError> {
    let mut templates = Vec::new();
    let mut off = 0usize;
    // Template flowsets may carry padding at the end; stop when fewer than
    // 4 bytes remain.
    while off + 4 <= body.len() {
        let id = u16::from_be_bytes([body[off], body[off + 1]]);
        let field_count = u16::from_be_bytes([body[off + 2], body[off + 3]]) as usize;
        if id == 0 && field_count == 0 {
            break; // padding
        }
        if id < 256 {
            return Err(err(format!("template id {id} below 256")));
        }
        if field_count == 0 || field_count > 128 {
            return Err(err(format!("implausible field count {field_count}")));
        }
        off += 4;
        if off + field_count * 4 > body.len() {
            return Err(err("template flowset truncated"));
        }
        let mut fields = Vec::with_capacity(field_count);
        for i in 0..field_count {
            let base = off + i * 4;
            let ftype = u16::from_be_bytes([body[base], body[base + 1]]);
            let length = u16::from_be_bytes([body[base + 2], body[base + 3]]);
            if length == 0 {
                return Err(err("zero-length template field"));
            }
            fields.push(FieldSpec {
                ftype: FieldType::from_u16(ftype),
                length,
            });
        }
        off += field_count * 4;
        templates.push(Template { id, fields });
    }
    if templates.is_empty() {
        return Err(err("template flowset carries no templates"));
    }
    Ok(templates)
}

fn parse_data_flowset(body: &[u8], template: &Template) -> Result<Vec<DataRecord>, FlowDnsError> {
    let rec_len = template.record_len();
    if rec_len == 0 {
        return Err(err("template describes zero-length records"));
    }
    let mut records = Vec::new();
    let mut off = 0usize;
    while off + rec_len <= body.len() {
        let mut record = DataRecord::default();
        let mut pos = off;
        for field in &template.fields {
            let len = field.length as usize;
            record
                .fields
                .insert(field.ftype.to_u16(), body[pos..pos + len].to_vec());
            pos += len;
        }
        records.push(record);
        off += rec_len;
    }
    // Remaining bytes must be padding (< rec_len and < 4 per RFC; we allow
    // up to rec_len - 1 zero bytes).
    if body.len() - off >= 4 && body[off..].iter().any(|b| *b != 0) {
        return Err(err("trailing non-padding bytes in data flowset"));
    }
    Ok(records)
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// Builder for NetFlow v9 export packets (used by the synthetic exporter
/// and by tests).
#[derive(Debug)]
pub struct V9PacketBuilder {
    source_id: u32,
    sequence: u32,
    unix_secs: u32,
    flowsets: Vec<u8>,
    count: u16,
}

impl V9PacketBuilder {
    /// Start a packet for `source_id` exported at `unix_secs`.
    pub fn new(source_id: u32, sequence: u32, unix_secs: u32) -> Self {
        V9PacketBuilder {
            source_id,
            sequence,
            unix_secs,
            flowsets: Vec::new(),
            count: 0,
        }
    }

    /// Append a template flowset announcing `templates`.
    pub fn add_templates(&mut self, templates: &[Template]) {
        let mut body = Vec::new();
        for t in templates {
            body.extend_from_slice(&t.id.to_be_bytes());
            body.extend_from_slice(&(t.fields.len() as u16).to_be_bytes());
            for f in &t.fields {
                body.extend_from_slice(&f.ftype.to_u16().to_be_bytes());
                body.extend_from_slice(&f.length.to_be_bytes());
            }
            self.count += 1;
        }
        self.push_flowset(TEMPLATE_FLOWSET_ID, &body);
    }

    /// Append a data flowset with pre-encoded records following `template`.
    /// Each record must be exactly `template.record_len()` bytes.
    pub fn add_data(
        &mut self,
        template: &Template,
        records: &[Vec<u8>],
    ) -> Result<(), FlowDnsError> {
        let rec_len = template.record_len();
        let mut body = Vec::with_capacity(records.len() * rec_len);
        for r in records {
            if r.len() != rec_len {
                return Err(err(format!(
                    "record length {} does not match template record length {rec_len}",
                    r.len()
                )));
            }
            body.extend_from_slice(r);
            self.count += 1;
        }
        // Pad to a 4-byte boundary as the RFC recommends.
        while (body.len() + 4) % 4 != 0 {
            body.push(0);
        }
        self.push_flowset(template.id, &body);
        Ok(())
    }

    fn push_flowset(&mut self, id: u16, body: &[u8]) {
        self.flowsets.extend_from_slice(&id.to_be_bytes());
        self.flowsets
            .extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
        self.flowsets.extend_from_slice(body);
    }

    /// Finish the packet, producing wire bytes.
    pub fn build(self, sys_uptime_ms: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(V9_HEADER_LEN + self.flowsets.len());
        out.extend_from_slice(&9u16.to_be_bytes());
        out.extend_from_slice(&self.count.to_be_bytes());
        out.extend_from_slice(&sys_uptime_ms.to_be_bytes());
        out.extend_from_slice(&self.unix_secs.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.source_id.to_be_bytes());
        out.extend_from_slice(&self.flowsets);
        out
    }
}

/// Encode one IPv4 flow record for [`Template::standard_ipv4`].
///
/// One argument per template field, in template order — splitting them
/// into a struct would obscure the 1:1 mapping to the wire layout.
#[allow(clippy::too_many_arguments)]
pub fn encode_standard_ipv4_record(
    src: std::net::Ipv4Addr,
    dst: std::net::Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    proto: u8,
    bytes: u32,
    packets: u32,
    first_ms: u32,
    last_ms: u32,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(29);
    out.extend_from_slice(&src.octets());
    out.extend_from_slice(&dst.octets());
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.push(proto);
    out.extend_from_slice(&bytes.to_be_bytes());
    out.extend_from_slice(&packets.to_be_bytes());
    out.extend_from_slice(&first_ms.to_be_bytes());
    out.extend_from_slice(&last_ms.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn template() -> Template {
        Template::standard_ipv4(256)
    }

    fn sample_packet(with_template: bool) -> Vec<u8> {
        let mut b = V9PacketBuilder::new(7, 1, 1_700_000_000);
        if with_template {
            b.add_templates(&[template()]);
        }
        let rec1 = encode_standard_ipv4_record(
            Ipv4Addr::new(203, 0, 113, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            443,
            51000,
            6,
            150_000,
            120,
            1000,
            2000,
        );
        let rec2 = encode_standard_ipv4_record(
            Ipv4Addr::new(198, 51, 100, 9),
            Ipv4Addr::new(10, 0, 0, 2),
            443,
            51001,
            17,
            9_000,
            12,
            1500,
            2500,
        );
        b.add_data(&template(), &[rec1, rec2]).unwrap();
        b.build(123)
    }

    #[test]
    fn template_then_data_round_trip() {
        let mut parser = V9Parser::new();
        let pkt = parser.parse(&sample_packet(true)).unwrap();
        assert_eq!(pkt.source_id, 7);
        let records: Vec<&DataRecord> = pkt.data_records().collect();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].ip(FieldType::Ipv4SrcAddr),
            Some(IpAddr::from([203, 0, 113, 1]))
        );
        assert_eq!(records[0].uint(FieldType::InBytes), Some(150_000));
        assert_eq!(records[0].uint(FieldType::Protocol), Some(6));
        assert_eq!(records[1].uint(FieldType::L4DstPort), Some(51001));
        assert_eq!(parser.records, 2);
    }

    #[test]
    fn data_before_template_is_counted_not_fatal() {
        let mut parser = V9Parser::new();
        let pkt = parser.parse(&sample_packet(false)).unwrap();
        assert!(matches!(
            pkt.flowsets[0],
            FlowSet::UnknownTemplate {
                template_id: 256,
                ..
            }
        ));
        assert_eq!(parser.templates.unknown_template_hits(), 1);
        // After the template arrives, subsequent data decodes.
        let pkt2 = parser.parse(&sample_packet(true)).unwrap();
        assert_eq!(pkt2.data_records().count(), 2);
    }

    #[test]
    fn templates_persist_across_packets() {
        let mut parser = V9Parser::new();
        parser.parse(&sample_packet(true)).unwrap();
        // Second packet has no template flowset but decodes via the cache.
        let pkt = parser.parse(&sample_packet(false)).unwrap();
        assert_eq!(pkt.data_records().count(), 2);
        assert_eq!(parser.packets, 2);
    }

    #[test]
    fn wrong_version_and_truncation_are_errors() {
        let mut parser = V9Parser::new();
        let mut bytes = sample_packet(true);
        assert!(parser.parse(&bytes[..10]).is_err());
        assert!(parser.parse(&bytes[..V9_HEADER_LEN + 2]).is_err());
        bytes[1] = 5;
        assert!(parser.parse(&bytes).is_err());
    }

    #[test]
    fn flowset_overrun_is_an_error() {
        let mut bytes = sample_packet(true);
        // Inflate the first flowset length beyond the packet.
        let len_off = V9_HEADER_LEN + 2;
        bytes[len_off] = 0xFF;
        bytes[len_off + 1] = 0xFF;
        let mut parser = V9Parser::new();
        assert!(parser.parse(&bytes).is_err());
    }

    #[test]
    fn malformed_templates_are_rejected() {
        // Template with id < 256.
        let mut b = V9PacketBuilder::new(1, 1, 0);
        b.add_templates(&[Template {
            id: 300,
            fields: vec![FieldSpec {
                ftype: FieldType::InBytes,
                length: 4,
            }],
        }]);
        let mut bytes = b.build(0);
        // Patch template id to 5 (offset: header 20 + flowset hdr 4 = 24).
        bytes[24] = 0;
        bytes[25] = 5;
        let mut parser = V9Parser::new();
        assert!(parser.parse(&bytes).is_err());
    }

    #[test]
    fn ipv6_template_round_trip() {
        let t6 = Template::standard_ipv6(260);
        let mut b = V9PacketBuilder::new(3, 9, 1_700_000_100);
        b.add_templates(std::slice::from_ref(&t6));
        let mut rec = Vec::new();
        let src: std::net::Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: std::net::Ipv6Addr = "2001:db8::2".parse().unwrap();
        rec.extend_from_slice(&src.octets());
        rec.extend_from_slice(&dst.octets());
        rec.extend_from_slice(&443u16.to_be_bytes());
        rec.extend_from_slice(&55555u16.to_be_bytes());
        rec.push(6);
        rec.extend_from_slice(&1_000_000u32.to_be_bytes());
        rec.extend_from_slice(&800u32.to_be_bytes());
        b.add_data(&t6, &[rec]).unwrap();
        let mut parser = V9Parser::new();
        let pkt = parser.parse(&b.build(1)).unwrap();
        let records: Vec<&DataRecord> = pkt.data_records().collect();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].ip(FieldType::Ipv6SrcAddr),
            Some(IpAddr::from(src))
        );
        assert_eq!(records[0].uint(FieldType::InBytes), Some(1_000_000));
    }

    #[test]
    fn builder_rejects_mismatched_record_length() {
        let mut b = V9PacketBuilder::new(1, 1, 0);
        assert!(b.add_data(&template(), &[vec![0u8; 5]]).is_err());
    }
}
