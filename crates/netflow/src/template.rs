//! Field and template definitions shared by NetFlow v9 and IPFIX.
//!
//! Both formats describe data records via *templates*: an ordered list of
//! (field type, field length) pairs announced in template flowsets/sets
//! and referenced by id from data flowsets/sets. Exporters may emit data
//! before templates or refresh templates periodically, so parsers keep a
//! [`TemplateRegistry`] — one [`TemplateCache`] (keyed by template id)
//! per source id, so sources can never clobber each other's layouts.

use std::collections::HashMap;

/// The field types FlowDNS cares about (a subset of the IANA IPFIX
/// registry / Cisco NetFlow v9 field types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// IN_BYTES (1): bytes of the flow.
    InBytes,
    /// IN_PKTS (2): packets of the flow.
    InPkts,
    /// PROTOCOL (4).
    Protocol,
    /// L4_SRC_PORT (7).
    L4SrcPort,
    /// IPV4_SRC_ADDR (8).
    Ipv4SrcAddr,
    /// L4_DST_PORT (11).
    L4DstPort,
    /// IPV4_DST_ADDR (12).
    Ipv4DstAddr,
    /// LAST_SWITCHED (21).
    LastSwitched,
    /// FIRST_SWITCHED (22).
    FirstSwitched,
    /// IPV6_SRC_ADDR (27).
    Ipv6SrcAddr,
    /// IPV6_DST_ADDR (28).
    Ipv6DstAddr,
    /// Any other field type (carried opaquely).
    Other(u16),
}

impl FieldType {
    /// The wire value of the field type.
    pub fn to_u16(self) -> u16 {
        match self {
            FieldType::InBytes => 1,
            FieldType::InPkts => 2,
            FieldType::Protocol => 4,
            FieldType::L4SrcPort => 7,
            FieldType::Ipv4SrcAddr => 8,
            FieldType::L4DstPort => 11,
            FieldType::Ipv4DstAddr => 12,
            FieldType::LastSwitched => 21,
            FieldType::FirstSwitched => 22,
            FieldType::Ipv6SrcAddr => 27,
            FieldType::Ipv6DstAddr => 28,
            FieldType::Other(v) => v,
        }
    }

    /// Build from the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => FieldType::InBytes,
            2 => FieldType::InPkts,
            4 => FieldType::Protocol,
            7 => FieldType::L4SrcPort,
            8 => FieldType::Ipv4SrcAddr,
            11 => FieldType::L4DstPort,
            12 => FieldType::Ipv4DstAddr,
            21 => FieldType::LastSwitched,
            22 => FieldType::FirstSwitched,
            27 => FieldType::Ipv6SrcAddr,
            28 => FieldType::Ipv6DstAddr,
            other => FieldType::Other(other),
        }
    }

    /// The conventional wire length of this field in bytes (used by the
    /// standard template builder; exporters may choose other lengths).
    pub fn default_len(self) -> u16 {
        match self {
            FieldType::InBytes | FieldType::InPkts => 4,
            FieldType::Protocol => 1,
            FieldType::L4SrcPort | FieldType::L4DstPort => 2,
            FieldType::Ipv4SrcAddr | FieldType::Ipv4DstAddr => 4,
            FieldType::LastSwitched | FieldType::FirstSwitched => 4,
            FieldType::Ipv6SrcAddr | FieldType::Ipv6DstAddr => 16,
            FieldType::Other(_) => 4,
        }
    }
}

/// One (type, length) entry of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// The field type.
    pub ftype: FieldType,
    /// The field length in bytes.
    pub length: u16,
}

impl FieldSpec {
    /// A field spec with the conventional length for its type.
    pub fn standard(ftype: FieldType) -> Self {
        FieldSpec {
            ftype,
            length: ftype.default_len(),
        }
    }
}

/// A template: an id plus an ordered list of field specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template id (>= 256 for data templates).
    pub id: u16,
    /// Ordered field specs.
    pub fields: Vec<FieldSpec>,
}

impl Template {
    /// The standard IPv4 flow template used by the synthetic exporter:
    /// srcIP, dstIP, srcPort, dstPort, protocol, bytes, packets,
    /// first/last switched.
    pub fn standard_ipv4(id: u16) -> Self {
        Template {
            id,
            fields: vec![
                FieldSpec::standard(FieldType::Ipv4SrcAddr),
                FieldSpec::standard(FieldType::Ipv4DstAddr),
                FieldSpec::standard(FieldType::L4SrcPort),
                FieldSpec::standard(FieldType::L4DstPort),
                FieldSpec::standard(FieldType::Protocol),
                FieldSpec::standard(FieldType::InBytes),
                FieldSpec::standard(FieldType::InPkts),
                FieldSpec::standard(FieldType::FirstSwitched),
                FieldSpec::standard(FieldType::LastSwitched),
            ],
        }
    }

    /// The standard IPv6 flow template.
    pub fn standard_ipv6(id: u16) -> Self {
        Template {
            id,
            fields: vec![
                FieldSpec::standard(FieldType::Ipv6SrcAddr),
                FieldSpec::standard(FieldType::Ipv6DstAddr),
                FieldSpec::standard(FieldType::L4SrcPort),
                FieldSpec::standard(FieldType::L4DstPort),
                FieldSpec::standard(FieldType::Protocol),
                FieldSpec::standard(FieldType::InBytes),
                FieldSpec::standard(FieldType::InPkts),
            ],
        }
    }

    /// Total length in bytes of one data record described by this template.
    pub fn record_len(&self) -> usize {
        self.fields.iter().map(|f| f.length as usize).sum()
    }
}

/// Cache of the templates announced by **one** source (one NetFlow v9
/// source id / IPFIX observation domain), keyed by template id.
///
/// Template ids are only unique within a source, so a cache never mixes
/// sources; [`TemplateRegistry`] holds one cache per source. Records
/// received before their template are counted so operators can see the
/// warm-up loss.
#[derive(Debug, Default, Clone)]
pub struct TemplateCache {
    templates: HashMap<u16, Template>,
    /// Data flowsets that referenced an unknown template.
    pub unknown_template_hits: u64,
}

impl TemplateCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        TemplateCache::default()
    }

    /// Insert or refresh a template.
    pub fn insert(&mut self, template: Template) {
        self.templates.insert(template.id, template);
    }

    /// Look up a template.
    pub fn get(&self, template_id: u16) -> Option<&Template> {
        self.templates.get(&template_id)
    }

    /// Record a data flowset that arrived before its template.
    pub fn note_unknown(&mut self) {
        self.unknown_template_hits += 1;
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// Per-source template state for one transport peer.
///
/// A collector socket receives packets from many exporters, and each
/// exporter may use several source ids (v9) or observation domains
/// (IPFIX). The registry keeps one [`TemplateCache`] per source id so two
/// sources reusing the same template id with different field layouts can
/// never clobber each other. The ingest layer goes one step further and
/// keeps a whole registry per exporter *address*, mirroring how production
/// collectors isolate decode state per peer.
#[derive(Debug, Default, Clone)]
pub struct TemplateRegistry {
    sources: HashMap<u32, TemplateCache>,
}

impl TemplateRegistry {
    /// A fresh registry with no sources.
    pub fn new() -> Self {
        TemplateRegistry::default()
    }

    /// The cache for `source_id`, created empty on first use.
    pub fn source_mut(&mut self, source_id: u32) -> &mut TemplateCache {
        self.sources.entry(source_id).or_default()
    }

    /// The cache for `source_id`, if any template or unknown-template hit
    /// was ever recorded for it.
    pub fn source(&self, source_id: u32) -> Option<&TemplateCache> {
        self.sources.get(&source_id)
    }

    /// Insert or refresh a template for a source.
    pub fn insert(&mut self, source_id: u32, template: Template) {
        self.source_mut(source_id).insert(template);
    }

    /// Look up a template of a source.
    pub fn get(&self, source_id: u32, template_id: u16) -> Option<&Template> {
        self.sources.get(&source_id)?.get(template_id)
    }

    /// Record a data flowset of `source_id` that arrived before its
    /// template.
    pub fn note_unknown(&mut self, source_id: u32) {
        self.source_mut(source_id).note_unknown();
    }

    /// Total templates cached across all sources.
    pub fn len(&self) -> usize {
        self.sources.values().map(TemplateCache::len).sum()
    }

    /// Is the registry empty of templates?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct sources seen.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Total data flowsets (across all sources) that referenced an unknown
    /// template.
    pub fn unknown_template_hits(&self) -> u64 {
        self.sources.values().map(|c| c.unknown_template_hits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_type_round_trip() {
        for v in [1u16, 2, 4, 7, 8, 11, 12, 21, 22, 27, 28, 150, 65535] {
            assert_eq!(FieldType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn standard_templates_have_expected_layout() {
        let t4 = Template::standard_ipv4(256);
        assert_eq!(t4.record_len(), 4 + 4 + 2 + 2 + 1 + 4 + 4 + 4 + 4);
        let t6 = Template::standard_ipv6(257);
        assert_eq!(t6.record_len(), 16 + 16 + 2 + 2 + 1 + 4 + 4);
    }

    #[test]
    fn registry_is_keyed_by_source_and_id() {
        let mut reg = TemplateRegistry::new();
        reg.insert(1, Template::standard_ipv4(256));
        reg.insert(2, Template::standard_ipv6(256));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.source_count(), 2);
        assert_eq!(
            reg.get(1, 256).unwrap().fields[0].ftype,
            FieldType::Ipv4SrcAddr
        );
        assert_eq!(
            reg.get(2, 256).unwrap().fields[0].ftype,
            FieldType::Ipv6SrcAddr
        );
        assert!(reg.get(3, 256).is_none());
        assert!(!reg.is_empty());
    }

    #[test]
    fn template_refresh_overwrites() {
        let mut reg = TemplateRegistry::new();
        reg.insert(1, Template::standard_ipv4(300));
        reg.insert(1, Template::standard_ipv6(300));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(1, 300).unwrap().fields.len(), 7);
    }

    #[test]
    fn unknown_template_counters_are_per_source() {
        let mut reg = TemplateRegistry::new();
        reg.note_unknown(1);
        reg.note_unknown(1);
        reg.note_unknown(9);
        assert_eq!(reg.source(1).unwrap().unknown_template_hits, 2);
        assert_eq!(reg.source(9).unwrap().unknown_template_hits, 1);
        assert_eq!(reg.unknown_template_hits(), 3);
        assert!(reg.source(2).is_none());
    }

    #[test]
    fn per_source_cache_stands_alone() {
        let mut cache = TemplateCache::new();
        cache.insert(Template::standard_ipv4(256));
        cache.insert(Template::standard_ipv6(256));
        // Same id: the refresh wins; a cache never holds two layouts.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(256).unwrap().fields.len(), 7);
        assert!(cache.get(300).is_none());
        cache.note_unknown();
        assert_eq!(cache.unknown_template_hits, 1);
    }
}
