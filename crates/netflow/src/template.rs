//! Field and template definitions shared by NetFlow v9 and IPFIX.
//!
//! Both formats describe data records via *templates*: an ordered list of
//! (field type, field length) pairs announced in template flowsets/sets
//! and referenced by id from data flowsets/sets. Exporters may emit data
//! before templates or refresh templates periodically, so parsers keep a
//! [`TemplateCache`] keyed by (source id, template id).

use std::collections::HashMap;

/// The field types FlowDNS cares about (a subset of the IANA IPFIX
/// registry / Cisco NetFlow v9 field types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// IN_BYTES (1): bytes of the flow.
    InBytes,
    /// IN_PKTS (2): packets of the flow.
    InPkts,
    /// PROTOCOL (4).
    Protocol,
    /// L4_SRC_PORT (7).
    L4SrcPort,
    /// IPV4_SRC_ADDR (8).
    Ipv4SrcAddr,
    /// L4_DST_PORT (11).
    L4DstPort,
    /// IPV4_DST_ADDR (12).
    Ipv4DstAddr,
    /// LAST_SWITCHED (21).
    LastSwitched,
    /// FIRST_SWITCHED (22).
    FirstSwitched,
    /// IPV6_SRC_ADDR (27).
    Ipv6SrcAddr,
    /// IPV6_DST_ADDR (28).
    Ipv6DstAddr,
    /// Any other field type (carried opaquely).
    Other(u16),
}

impl FieldType {
    /// The wire value of the field type.
    pub fn to_u16(self) -> u16 {
        match self {
            FieldType::InBytes => 1,
            FieldType::InPkts => 2,
            FieldType::Protocol => 4,
            FieldType::L4SrcPort => 7,
            FieldType::Ipv4SrcAddr => 8,
            FieldType::L4DstPort => 11,
            FieldType::Ipv4DstAddr => 12,
            FieldType::LastSwitched => 21,
            FieldType::FirstSwitched => 22,
            FieldType::Ipv6SrcAddr => 27,
            FieldType::Ipv6DstAddr => 28,
            FieldType::Other(v) => v,
        }
    }

    /// Build from the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => FieldType::InBytes,
            2 => FieldType::InPkts,
            4 => FieldType::Protocol,
            7 => FieldType::L4SrcPort,
            8 => FieldType::Ipv4SrcAddr,
            11 => FieldType::L4DstPort,
            12 => FieldType::Ipv4DstAddr,
            21 => FieldType::LastSwitched,
            22 => FieldType::FirstSwitched,
            27 => FieldType::Ipv6SrcAddr,
            28 => FieldType::Ipv6DstAddr,
            other => FieldType::Other(other),
        }
    }

    /// The conventional wire length of this field in bytes (used by the
    /// standard template builder; exporters may choose other lengths).
    pub fn default_len(self) -> u16 {
        match self {
            FieldType::InBytes | FieldType::InPkts => 4,
            FieldType::Protocol => 1,
            FieldType::L4SrcPort | FieldType::L4DstPort => 2,
            FieldType::Ipv4SrcAddr | FieldType::Ipv4DstAddr => 4,
            FieldType::LastSwitched | FieldType::FirstSwitched => 4,
            FieldType::Ipv6SrcAddr | FieldType::Ipv6DstAddr => 16,
            FieldType::Other(_) => 4,
        }
    }
}

/// One (type, length) entry of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// The field type.
    pub ftype: FieldType,
    /// The field length in bytes.
    pub length: u16,
}

impl FieldSpec {
    /// A field spec with the conventional length for its type.
    pub fn standard(ftype: FieldType) -> Self {
        FieldSpec {
            ftype,
            length: ftype.default_len(),
        }
    }
}

/// A template: an id plus an ordered list of field specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template id (>= 256 for data templates).
    pub id: u16,
    /// Ordered field specs.
    pub fields: Vec<FieldSpec>,
}

impl Template {
    /// The standard IPv4 flow template used by the synthetic exporter:
    /// srcIP, dstIP, srcPort, dstPort, protocol, bytes, packets,
    /// first/last switched.
    pub fn standard_ipv4(id: u16) -> Self {
        Template {
            id,
            fields: vec![
                FieldSpec::standard(FieldType::Ipv4SrcAddr),
                FieldSpec::standard(FieldType::Ipv4DstAddr),
                FieldSpec::standard(FieldType::L4SrcPort),
                FieldSpec::standard(FieldType::L4DstPort),
                FieldSpec::standard(FieldType::Protocol),
                FieldSpec::standard(FieldType::InBytes),
                FieldSpec::standard(FieldType::InPkts),
                FieldSpec::standard(FieldType::FirstSwitched),
                FieldSpec::standard(FieldType::LastSwitched),
            ],
        }
    }

    /// The standard IPv6 flow template.
    pub fn standard_ipv6(id: u16) -> Self {
        Template {
            id,
            fields: vec![
                FieldSpec::standard(FieldType::Ipv6SrcAddr),
                FieldSpec::standard(FieldType::Ipv6DstAddr),
                FieldSpec::standard(FieldType::L4SrcPort),
                FieldSpec::standard(FieldType::L4DstPort),
                FieldSpec::standard(FieldType::Protocol),
                FieldSpec::standard(FieldType::InBytes),
                FieldSpec::standard(FieldType::InPkts),
            ],
        }
    }

    /// Total length in bytes of one data record described by this template.
    pub fn record_len(&self) -> usize {
        self.fields.iter().map(|f| f.length as usize).sum()
    }
}

/// Cache of templates keyed by (source id, template id).
///
/// NetFlow v9 exporters identify themselves with a 32-bit source id;
/// template ids are only unique within a source. Records received before
/// their template are counted so operators can see the warm-up loss.
#[derive(Debug, Default)]
pub struct TemplateCache {
    templates: HashMap<(u32, u16), Template>,
    /// Data flowsets that referenced an unknown template.
    pub unknown_template_hits: u64,
}

impl TemplateCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        TemplateCache::default()
    }

    /// Insert or refresh a template for a source.
    pub fn insert(&mut self, source_id: u32, template: Template) {
        self.templates.insert((source_id, template.id), template);
    }

    /// Look up a template.
    pub fn get(&self, source_id: u32, template_id: u16) -> Option<&Template> {
        self.templates.get(&(source_id, template_id))
    }

    /// Record a data flowset that arrived before its template.
    pub fn note_unknown(&mut self) {
        self.unknown_template_hits += 1;
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_type_round_trip() {
        for v in [1u16, 2, 4, 7, 8, 11, 12, 21, 22, 27, 28, 150, 65535] {
            assert_eq!(FieldType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn standard_templates_have_expected_layout() {
        let t4 = Template::standard_ipv4(256);
        assert_eq!(t4.record_len(), 4 + 4 + 2 + 2 + 1 + 4 + 4 + 4 + 4);
        let t6 = Template::standard_ipv6(257);
        assert_eq!(t6.record_len(), 16 + 16 + 2 + 2 + 1 + 4 + 4);
    }

    #[test]
    fn cache_is_keyed_by_source_and_id() {
        let mut cache = TemplateCache::new();
        cache.insert(1, Template::standard_ipv4(256));
        cache.insert(2, Template::standard_ipv6(256));
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.get(1, 256).unwrap().fields[0].ftype,
            FieldType::Ipv4SrcAddr
        );
        assert_eq!(
            cache.get(2, 256).unwrap().fields[0].ftype,
            FieldType::Ipv6SrcAddr
        );
        assert!(cache.get(3, 256).is_none());
        assert!(!cache.is_empty());
    }

    #[test]
    fn template_refresh_overwrites() {
        let mut cache = TemplateCache::new();
        cache.insert(1, Template::standard_ipv4(300));
        cache.insert(1, Template::standard_ipv6(300));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1, 300).unwrap().fields.len(), 7);
    }

    #[test]
    fn unknown_template_counter() {
        let mut cache = TemplateCache::new();
        cache.note_unknown();
        cache.note_unknown();
        assert_eq!(cache.unknown_template_hits, 2);
    }
}
