//! Per-exporter datagram decoding with protocol auto-detection.
//!
//! A collector socket receives export datagrams from many exporters, and
//! nothing but the first two bytes says which protocol a datagram speaks:
//! the version word is 5 for NetFlow v5, 9 for NetFlow v9 and 10 for
//! IPFIX. [`ExporterDecoder`] sniffs that word and dispatches to the
//! right codec while keeping **per-exporter** parser state (template
//! registries, counters), so the ingest layer can hold one decoder per
//! peer address and two exporters can never corrupt each other's
//! templates — even when they reuse the same source id and template id
//! with different field layouts.

use flowdns_types::{FlowDnsError, FlowRecord, SimTime};

use crate::extract::{ExtractorConfig, FlowExtractor};
use crate::ipfix::IpfixParser;
use crate::v5::V5Packet;
use crate::v9::{FlowSet, V9Parser};

/// The export protocol spoken by a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowProtocol {
    /// Fixed-layout NetFlow version 5.
    V5,
    /// Template-based NetFlow version 9 (RFC 3954).
    V9,
    /// IPFIX (RFC 7011).
    Ipfix,
}

impl FlowProtocol {
    /// Sniff the protocol from the version word of a datagram. Returns
    /// `None` when the datagram is too short or the version is unknown.
    pub fn detect(bytes: &[u8]) -> Option<FlowProtocol> {
        if bytes.len() < 2 {
            return None;
        }
        match u16::from_be_bytes([bytes[0], bytes[1]]) {
            5 => Some(FlowProtocol::V5),
            9 => Some(FlowProtocol::V9),
            10 => Some(FlowProtocol::Ipfix),
            _ => None,
        }
    }

    /// The label used in logs and stats lines.
    pub fn label(&self) -> &'static str {
        match self {
            FlowProtocol::V5 => "v5",
            FlowProtocol::V9 => "v9",
            FlowProtocol::Ipfix => "ipfix",
        }
    }
}

impl std::fmt::Display for FlowProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters of one exporter's decode state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Datagrams successfully decoded.
    pub datagrams: u64,
    /// Flow records extracted from decoded datagrams.
    pub flows: u64,
    /// Datagrams rejected as malformed (bad version word, truncation,
    /// corrupt flowsets, ...).
    pub malformed: u64,
    /// Data flowsets/sets dropped because their template was not (yet)
    /// known — the paper's warm-up loss, counted as drops, not errors.
    pub unknown_template_drops: u64,
}

impl DecodeStats {
    /// Fold another exporter's counters into this one.
    pub fn merge(&mut self, other: &DecodeStats) {
        self.datagrams += other.datagrams;
        self.flows += other.flows;
        self.malformed += other.malformed;
        self.unknown_template_drops += other.unknown_template_drops;
    }
}

/// Stateful decoder for **one** exporter peer.
///
/// Keeps independent v9 and IPFIX parser state (each with its own
/// per-source [`crate::template::TemplateRegistry`]) plus a
/// [`FlowExtractor`], and turns raw datagrams into [`FlowRecord`]s.
#[derive(Debug, Default)]
pub struct ExporterDecoder {
    v9: V9Parser,
    ipfix: IpfixParser,
    extractor: FlowExtractor,
    /// Decode counters for this exporter.
    pub stats: DecodeStats,
}

impl ExporterDecoder {
    /// A fresh decoder with empty template state.
    pub fn new(config: ExtractorConfig) -> Self {
        ExporterDecoder {
            v9: V9Parser::new(),
            ipfix: IpfixParser::new(),
            extractor: FlowExtractor::new(config),
            stats: DecodeStats::default(),
        }
    }

    /// Decode one datagram into flow records, auto-detecting the protocol.
    ///
    /// Malformed datagrams return an error *and* increment
    /// [`DecodeStats::malformed`]; data arriving before its template is
    /// not an error — it yields fewer (possibly zero) records and
    /// increments [`DecodeStats::unknown_template_drops`].
    pub fn decode_datagram(&mut self, bytes: &[u8]) -> Result<Vec<FlowRecord>, FlowDnsError> {
        let result = match FlowProtocol::detect(bytes) {
            Some(FlowProtocol::V5) => V5Packet::decode(bytes).map(|p| self.extractor.from_v5(&p)),
            Some(FlowProtocol::V9) => self.v9.parse(bytes).map(|p| {
                let unknown = p
                    .flowsets
                    .iter()
                    .filter(|fs| matches!(fs, FlowSet::UnknownTemplate { .. }))
                    .count();
                self.stats.unknown_template_drops += unknown as u64;
                self.extractor.from_v9(&p)
            }),
            Some(FlowProtocol::Ipfix) => self.ipfix.parse(bytes).map(|m| {
                self.stats.unknown_template_drops += m.unknown_template_sets as u64;
                let ts = SimTime::from_secs(m.export_time as u64);
                let records: Vec<_> = m.records.iter().collect();
                self.extractor.from_data_records(ts, &records)
            }),
            None => Err(FlowDnsError::NetflowParse(
                "unrecognized export protocol version".into(),
            )),
        };
        match result {
            Ok(flows) => {
                self.stats.datagrams += 1;
                self.stats.flows += flows.len() as u64;
                Ok(flows)
            }
            Err(e) => {
                self.stats.malformed += 1;
                Err(e)
            }
        }
    }

    /// Like [`decode_datagram`](Self::decode_datagram), but appends the
    /// decoded records to `out` instead of allocating a fresh vector —
    /// the batched listeners decode a whole socket drain into one
    /// reusable buffer and push it to the pipeline in a single batch.
    /// Returns how many records this datagram contributed; a malformed
    /// datagram is counted (and reported as `Err`) without touching
    /// records already in `out`.
    pub fn decode_datagram_into(
        &mut self,
        bytes: &[u8],
        out: &mut Vec<FlowRecord>,
    ) -> Result<usize, FlowDnsError> {
        let flows = self.decode_datagram(bytes)?;
        let n = flows.len();
        out.extend(flows);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use crate::v9::{encode_standard_ipv4_record, V9PacketBuilder};
    use crate::IpfixMessageBuilder;
    use std::net::Ipv4Addr;

    fn v9_packet(with_template: bool, bytes: u32) -> Vec<u8> {
        let template = Template::standard_ipv4(256);
        let mut b = V9PacketBuilder::new(7, 1, 1_700_000_000);
        if with_template {
            b.add_templates(std::slice::from_ref(&template));
        }
        let rec = encode_standard_ipv4_record(
            Ipv4Addr::new(203, 0, 113, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            443,
            51000,
            6,
            bytes,
            10,
            0,
            1,
        );
        b.add_data(&template, &[rec]).unwrap();
        b.build(1)
    }

    #[test]
    fn detects_all_three_protocols() {
        assert_eq!(FlowProtocol::detect(&[0, 5, 0, 0]), Some(FlowProtocol::V5));
        assert_eq!(FlowProtocol::detect(&[0, 9, 0, 0]), Some(FlowProtocol::V9));
        assert_eq!(
            FlowProtocol::detect(&[0, 10, 0, 0]),
            Some(FlowProtocol::Ipfix)
        );
        assert_eq!(FlowProtocol::detect(&[0, 11]), None);
        assert_eq!(FlowProtocol::detect(&[5]), None);
        assert_eq!(FlowProtocol::detect(&[]), None);
    }

    #[test]
    fn decodes_v5_v9_and_ipfix_through_one_decoder() {
        let mut d = ExporterDecoder::new(ExtractorConfig::default());

        let v5 = V5Packet {
            header: crate::v5::V5Header {
                unix_secs: 100,
                ..Default::default()
            },
            records: vec![crate::v5::V5Record {
                src_addr: Ipv4Addr::new(198, 51, 100, 1),
                dst_addr: Ipv4Addr::new(10, 0, 0, 2),
                packets: 3,
                octets: 900,
                ..Default::default()
            }],
        };
        let flows = d.decode_datagram(&v5.encode().unwrap()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].bytes, 900);

        let flows = d.decode_datagram(&v9_packet(true, 5_000)).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].bytes, 5_000);

        let template = Template::standard_ipv4(400);
        let mut b = IpfixMessageBuilder::new(55, 1, 200);
        b.add_templates(std::slice::from_ref(&template));
        let rec = encode_standard_ipv4_record(
            Ipv4Addr::new(203, 0, 113, 9),
            Ipv4Addr::new(10, 0, 0, 3),
            443,
            50000,
            17,
            7_000,
            5,
            0,
            1,
        );
        b.add_data(&template, &[rec]).unwrap();
        let flows = d.decode_datagram(&b.build()).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].bytes, 7_000);

        assert_eq!(d.stats.datagrams, 3);
        assert_eq!(d.stats.flows, 3);
        assert_eq!(d.stats.malformed, 0);
    }

    #[test]
    fn data_before_template_is_a_drop_not_an_error() {
        let mut d = ExporterDecoder::new(ExtractorConfig::default());
        let flows = d.decode_datagram(&v9_packet(false, 1_000)).unwrap();
        assert!(flows.is_empty());
        assert_eq!(d.stats.unknown_template_drops, 1);
        assert_eq!(d.stats.malformed, 0);
        // Once the template arrives, data decodes.
        let flows = d.decode_datagram(&v9_packet(true, 1_000)).unwrap();
        assert_eq!(flows.len(), 1);
    }

    #[test]
    fn malformed_datagrams_are_counted() {
        let mut d = ExporterDecoder::new(ExtractorConfig::default());
        assert!(d.decode_datagram(&[0xde, 0xad, 0xbe, 0xef]).is_err());
        assert!(d.decode_datagram(&[]).is_err());
        let truncated = &v9_packet(true, 1)[..10];
        assert!(d.decode_datagram(truncated).is_err());
        assert_eq!(d.stats.malformed, 3);
        assert_eq!(d.stats.datagrams, 0);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = DecodeStats {
            datagrams: 1,
            flows: 2,
            malformed: 3,
            unknown_template_drops: 4,
        };
        a.merge(&DecodeStats {
            datagrams: 10,
            flows: 20,
            malformed: 30,
            unknown_template_drops: 40,
        });
        assert_eq!(a.datagrams, 11);
        assert_eq!(a.flows, 22);
        assert_eq!(a.malformed, 33);
        assert_eq!(a.unknown_template_drops, 44);
    }
}
