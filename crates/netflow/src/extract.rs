//! The generic flow-extraction layer.
//!
//! FlowDNS "is not bound to NetFlow data and can be adapted to use other
//! data formats containing IP addresses and timestamps in a configuration
//! file" (Section 3). This module is that adaptation layer: it converts
//! parsed NetFlow v5 packets, v9/IPFIX data records, or already-structured
//! tuples into [`FlowRecord`]s according to an [`ExtractorConfig`] that
//! says which address to correlate on and which direction the flows
//! represent.

use std::net::IpAddr;

use flowdns_types::{FlowDirection, FlowKey, FlowRecord, Protocol, SimTime, StreamId};

use crate::template::FieldType;
use crate::v5::V5Packet;
use crate::v9::{DataRecord, V9Packet};

/// Which IP address the correlator should use when looking flows up in the
/// DNS store. The paper uses the **source** address ("we are interested in
/// analyzing the source of the traffic, hence we use the source IP
/// address. Nonetheless, destination address or both ... can be used").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorrelationAddress {
    /// Correlate on the flow's source address (paper default).
    #[default]
    Source,
    /// Correlate on the flow's destination address.
    Destination,
}

/// Configuration of the extraction layer (the paper's "configuration
/// file" knob, as a struct).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractorConfig {
    /// Which address the downstream correlation uses.
    pub correlation_address: CorrelationAddress,
    /// Direction label attached to extracted flows.
    pub direction: FlowDirection,
    /// Stream id attached to extracted flows.
    pub stream: StreamId,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig {
            correlation_address: CorrelationAddress::Source,
            direction: FlowDirection::Inbound,
            stream: StreamId::new(0),
        }
    }
}

/// Converts parsed export packets into [`FlowRecord`]s.
#[derive(Debug, Default)]
pub struct FlowExtractor {
    config: ExtractorConfig,
    /// Records successfully extracted.
    pub extracted: u64,
    /// Records skipped because mandatory fields were missing.
    pub skipped: u64,
}

impl FlowExtractor {
    /// An extractor with the given configuration.
    pub fn new(config: ExtractorConfig) -> Self {
        FlowExtractor {
            config,
            extracted: 0,
            skipped: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> ExtractorConfig {
        self.config
    }

    /// The address of `record` the correlator should look up, according to
    /// the configuration.
    pub fn correlation_ip(&self, record: &FlowRecord) -> IpAddr {
        match self.config.correlation_address {
            CorrelationAddress::Source => record.key.src_ip,
            CorrelationAddress::Destination => record.key.dst_ip,
        }
    }

    /// Extract flow records from a NetFlow v5 packet. The export timestamp
    /// of the packet is used as the record timestamp (v5 per-flow times
    /// are router-uptime-relative).
    pub fn from_v5(&mut self, packet: &V5Packet) -> Vec<FlowRecord> {
        let ts = SimTime::from_secs(packet.header.unix_secs as u64);
        let mut out = Vec::with_capacity(packet.records.len());
        for r in &packet.records {
            let flow = FlowRecord {
                ts,
                key: FlowKey {
                    src_ip: IpAddr::V4(r.src_addr),
                    dst_ip: IpAddr::V4(r.dst_addr),
                    src_port: r.src_port,
                    dst_port: r.dst_port,
                    proto: Protocol::from_u8(r.proto),
                },
                packets: r.packets as u64,
                bytes: r.octets as u64,
                stream: self.config.stream,
                direction: self.config.direction,
                trace: None,
            };
            if flow.is_valid() {
                self.extracted += 1;
                out.push(flow);
            } else {
                self.skipped += 1;
            }
        }
        out
    }

    /// Extract flow records from the decoded data records of a v9 packet.
    pub fn from_v9(&mut self, packet: &V9Packet) -> Vec<FlowRecord> {
        let ts = SimTime::from_secs(packet.unix_secs as u64);
        let records: Vec<&DataRecord> = packet.data_records().collect();
        self.from_data_records(ts, &records)
    }

    /// Extract flow records from template-based data records (v9 or IPFIX)
    /// with an explicit export timestamp.
    pub fn from_data_records(&mut self, ts: SimTime, records: &[&DataRecord]) -> Vec<FlowRecord> {
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            match self.data_record_to_flow(ts, r) {
                Some(flow) if flow.is_valid() => {
                    self.extracted += 1;
                    out.push(flow);
                }
                _ => self.skipped += 1,
            }
        }
        out
    }

    fn data_record_to_flow(&self, ts: SimTime, r: &DataRecord) -> Option<FlowRecord> {
        let src_ip = r
            .ip(FieldType::Ipv4SrcAddr)
            .or_else(|| r.ip(FieldType::Ipv6SrcAddr))?;
        let dst_ip = r
            .ip(FieldType::Ipv4DstAddr)
            .or_else(|| r.ip(FieldType::Ipv6DstAddr))?;
        let bytes = r.uint(FieldType::InBytes)?;
        let packets = r.uint(FieldType::InPkts).unwrap_or(1).max(1);
        let src_port = r.uint(FieldType::L4SrcPort).unwrap_or(0) as u16;
        let dst_port = r.uint(FieldType::L4DstPort).unwrap_or(0) as u16;
        let proto = Protocol::from_u8(r.uint(FieldType::Protocol).unwrap_or(6) as u8);
        Some(FlowRecord {
            ts,
            key: FlowKey {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                proto,
            },
            packets,
            bytes,
            stream: self.config.stream,
            direction: self.config.direction,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use crate::v5::{V5Header, V5Record};
    use crate::v9::{encode_standard_ipv4_record, V9PacketBuilder, V9Parser};
    use std::net::Ipv4Addr;

    #[test]
    fn v5_extraction_preserves_fields() {
        let packet = V5Packet {
            header: V5Header {
                unix_secs: 1000,
                ..V5Header::default()
            },
            records: vec![V5Record {
                src_addr: Ipv4Addr::new(203, 0, 113, 4),
                dst_addr: Ipv4Addr::new(10, 0, 0, 9),
                src_port: 443,
                dst_port: 54000,
                proto: 6,
                packets: 10,
                octets: 15_000,
                ..V5Record::default()
            }],
        };
        let mut ex = FlowExtractor::new(ExtractorConfig::default());
        let flows = ex.from_v5(&packet);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].ts, SimTime::from_secs(1000));
        assert_eq!(flows[0].src_ip(), IpAddr::from([203, 0, 113, 4]));
        assert_eq!(flows[0].bytes, 15_000);
        assert_eq!(ex.extracted, 1);
        assert_eq!(ex.correlation_ip(&flows[0]), IpAddr::from([203, 0, 113, 4]));
    }

    #[test]
    fn destination_correlation_config() {
        let cfg = ExtractorConfig {
            correlation_address: CorrelationAddress::Destination,
            ..ExtractorConfig::default()
        };
        let ex = FlowExtractor::new(cfg);
        let flow = FlowRecord::inbound(
            SimTime::ZERO,
            Ipv4Addr::new(1, 1, 1, 1).into(),
            Ipv4Addr::new(2, 2, 2, 2).into(),
            100,
        );
        assert_eq!(ex.correlation_ip(&flow), IpAddr::from([2, 2, 2, 2]));
    }

    #[test]
    fn invalid_v5_records_are_skipped() {
        let packet = V5Packet {
            header: V5Header::default(),
            records: vec![V5Record {
                octets: 0, // invalid
                packets: 5,
                ..V5Record::default()
            }],
        };
        let mut ex = FlowExtractor::new(ExtractorConfig::default());
        assert!(ex.from_v5(&packet).is_empty());
        assert_eq!(ex.skipped, 1);
    }

    #[test]
    fn v9_extraction_end_to_end() {
        let template = Template::standard_ipv4(256);
        let mut b = V9PacketBuilder::new(1, 1, 5000);
        b.add_templates(std::slice::from_ref(&template));
        let rec = encode_standard_ipv4_record(
            Ipv4Addr::new(198, 51, 100, 20),
            Ipv4Addr::new(10, 0, 0, 5),
            443,
            40000,
            17,
            700_000,
            500,
            0,
            1,
        );
        b.add_data(&template, &[rec]).unwrap();
        let mut parser = V9Parser::new();
        let pkt = parser.parse(&b.build(0)).unwrap();
        let mut ex = FlowExtractor::new(ExtractorConfig::default());
        let flows = ex.from_v9(&pkt);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].ts, SimTime::from_secs(5000));
        assert_eq!(flows[0].bytes, 700_000);
        assert_eq!(flows[0].key.proto, Protocol::Udp);
        assert_eq!(flows[0].key.dst_port, 40000);
    }

    #[test]
    fn records_missing_mandatory_fields_are_skipped() {
        let r = DataRecord::default();
        let mut ex = FlowExtractor::new(ExtractorConfig::default());
        let flows = ex.from_data_records(SimTime::ZERO, &[&r]);
        assert!(flows.is_empty());
        assert_eq!(ex.skipped, 1);
    }
}
