//! NetFlow version 5 packet codec.
//!
//! NetFlow v5 is the fixed-layout ancestor of v9: a 24-byte header
//! followed by up to 30 records of 48 bytes each. Many ISP ingress routers
//! still export v5, so FlowDNS's flow reader must understand it.

use std::net::Ipv4Addr;

use flowdns_types::FlowDnsError;

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::NetflowParse(msg.into())
}

/// Size of the v5 packet header in bytes.
pub const V5_HEADER_LEN: usize = 24;
/// Size of one v5 flow record in bytes.
pub const V5_RECORD_LEN: usize = 48;
/// Maximum number of records in one v5 packet.
pub const V5_MAX_RECORDS: usize = 30;

/// NetFlow v5 packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V5Header {
    /// Milliseconds since the exporting device booted.
    pub sys_uptime_ms: u32,
    /// Export time, seconds since the Unix epoch.
    pub unix_secs: u32,
    /// Export time, residual nanoseconds.
    pub unix_nsecs: u32,
    /// Sequence counter of total flows seen.
    pub flow_sequence: u32,
    /// Type of flow-switching engine.
    pub engine_type: u8,
    /// Slot number of the flow-switching engine.
    pub engine_id: u8,
    /// Sampling mode (2 bits) and interval (14 bits).
    pub sampling: u16,
}

/// One NetFlow v5 flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V5Record {
    /// Source IP address.
    pub src_addr: Ipv4Addr,
    /// Destination IP address.
    pub dst_addr: Ipv4Addr,
    /// Next-hop router IP address.
    pub next_hop: Ipv4Addr,
    /// SNMP index of the input interface.
    pub input_if: u16,
    /// SNMP index of the output interface.
    pub output_if: u16,
    /// Packets in the flow.
    pub packets: u32,
    /// Bytes in the flow.
    pub octets: u32,
    /// SysUptime at the first packet of the flow.
    pub first: u32,
    /// SysUptime at the last packet of the flow.
    pub last: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Cumulative TCP flags.
    pub tcp_flags: u8,
    /// IP protocol number.
    pub proto: u8,
    /// Type of service.
    pub tos: u8,
    /// Source autonomous system number.
    pub src_as: u16,
    /// Destination autonomous system number.
    pub dst_as: u16,
    /// Source prefix mask length.
    pub src_mask: u8,
    /// Destination prefix mask length.
    pub dst_mask: u8,
}

impl Default for V5Record {
    fn default() -> Self {
        V5Record {
            src_addr: Ipv4Addr::UNSPECIFIED,
            dst_addr: Ipv4Addr::UNSPECIFIED,
            next_hop: Ipv4Addr::UNSPECIFIED,
            input_if: 0,
            output_if: 0,
            packets: 0,
            octets: 0,
            first: 0,
            last: 0,
            src_port: 0,
            dst_port: 0,
            tcp_flags: 0,
            proto: 6,
            tos: 0,
            src_as: 0,
            dst_as: 0,
            src_mask: 0,
            dst_mask: 0,
        }
    }
}

/// A complete NetFlow v5 export packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct V5Packet {
    /// Packet header.
    pub header: V5Header,
    /// Flow records (1..=30).
    pub records: Vec<V5Record>,
}

impl V5Packet {
    /// Encode the packet to wire format.
    pub fn encode(&self) -> Result<Vec<u8>, FlowDnsError> {
        if self.records.is_empty() || self.records.len() > V5_MAX_RECORDS {
            return Err(err(format!(
                "v5 packet must carry 1..=30 records, has {}",
                self.records.len()
            )));
        }
        let mut out = Vec::with_capacity(V5_HEADER_LEN + self.records.len() * V5_RECORD_LEN);
        out.extend_from_slice(&5u16.to_be_bytes());
        out.extend_from_slice(&(self.records.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.header.sys_uptime_ms.to_be_bytes());
        out.extend_from_slice(&self.header.unix_secs.to_be_bytes());
        out.extend_from_slice(&self.header.unix_nsecs.to_be_bytes());
        out.extend_from_slice(&self.header.flow_sequence.to_be_bytes());
        out.push(self.header.engine_type);
        out.push(self.header.engine_id);
        out.extend_from_slice(&self.header.sampling.to_be_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.src_addr.octets());
            out.extend_from_slice(&r.dst_addr.octets());
            out.extend_from_slice(&r.next_hop.octets());
            out.extend_from_slice(&r.input_if.to_be_bytes());
            out.extend_from_slice(&r.output_if.to_be_bytes());
            out.extend_from_slice(&r.packets.to_be_bytes());
            out.extend_from_slice(&r.octets.to_be_bytes());
            out.extend_from_slice(&r.first.to_be_bytes());
            out.extend_from_slice(&r.last.to_be_bytes());
            out.extend_from_slice(&r.src_port.to_be_bytes());
            out.extend_from_slice(&r.dst_port.to_be_bytes());
            out.push(0); // pad1
            out.push(r.tcp_flags);
            out.push(r.proto);
            out.push(r.tos);
            out.extend_from_slice(&r.src_as.to_be_bytes());
            out.extend_from_slice(&r.dst_as.to_be_bytes());
            out.push(r.src_mask);
            out.push(r.dst_mask);
            out.extend_from_slice(&[0, 0]); // pad2
        }
        Ok(out)
    }

    /// Decode a packet from wire format.
    pub fn decode(bytes: &[u8]) -> Result<Self, FlowDnsError> {
        if bytes.len() < V5_HEADER_LEN {
            return Err(err("packet shorter than v5 header"));
        }
        let version = u16::from_be_bytes([bytes[0], bytes[1]]);
        if version != 5 {
            return Err(err(format!("not a v5 packet (version {version})")));
        }
        let count = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if count == 0 || count > V5_MAX_RECORDS {
            return Err(err(format!("invalid v5 record count {count}")));
        }
        let expected = V5_HEADER_LEN + count * V5_RECORD_LEN;
        if bytes.len() < expected {
            return Err(err(format!(
                "v5 packet truncated: need {expected} bytes, have {}",
                bytes.len()
            )));
        }
        let header = V5Header {
            sys_uptime_ms: be32(&bytes[4..8]),
            unix_secs: be32(&bytes[8..12]),
            unix_nsecs: be32(&bytes[12..16]),
            flow_sequence: be32(&bytes[16..20]),
            engine_type: bytes[20],
            engine_id: bytes[21],
            sampling: u16::from_be_bytes([bytes[22], bytes[23]]),
        };
        let mut records = Vec::with_capacity(count);
        for i in 0..count {
            let base = V5_HEADER_LEN + i * V5_RECORD_LEN;
            let b = &bytes[base..base + V5_RECORD_LEN];
            records.push(V5Record {
                src_addr: Ipv4Addr::new(b[0], b[1], b[2], b[3]),
                dst_addr: Ipv4Addr::new(b[4], b[5], b[6], b[7]),
                next_hop: Ipv4Addr::new(b[8], b[9], b[10], b[11]),
                input_if: u16::from_be_bytes([b[12], b[13]]),
                output_if: u16::from_be_bytes([b[14], b[15]]),
                packets: be32(&b[16..20]),
                octets: be32(&b[20..24]),
                first: be32(&b[24..28]),
                last: be32(&b[28..32]),
                src_port: u16::from_be_bytes([b[32], b[33]]),
                dst_port: u16::from_be_bytes([b[34], b[35]]),
                tcp_flags: b[37],
                proto: b[38],
                tos: b[39],
                src_as: u16::from_be_bytes([b[40], b[41]]),
                dst_as: u16::from_be_bytes([b[42], b[43]]),
                src_mask: b[44],
                dst_mask: b[45],
            });
        }
        Ok(V5Packet { header, records })
    }
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(i: u8) -> V5Record {
        V5Record {
            src_addr: Ipv4Addr::new(203, 0, 113, i),
            dst_addr: Ipv4Addr::new(10, 0, 0, i),
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            input_if: 1,
            output_if: 2,
            packets: 100 + i as u32,
            octets: 140_000 + i as u32,
            first: 1000,
            last: 2000,
            src_port: 443,
            dst_port: 50_000 + i as u16,
            tcp_flags: 0x1B,
            proto: 6,
            tos: 0,
            src_as: 65_001,
            dst_as: 65_002,
            src_mask: 24,
            dst_mask: 16,
        }
    }

    #[test]
    fn round_trip_single_record() {
        let pkt = V5Packet {
            header: V5Header {
                sys_uptime_ms: 123_456,
                unix_secs: 1_700_000_000,
                unix_nsecs: 999,
                flow_sequence: 42,
                engine_type: 1,
                engine_id: 7,
                sampling: 0x4001,
            },
            records: vec![sample_record(1)],
        };
        let bytes = pkt.encode().unwrap();
        assert_eq!(bytes.len(), V5_HEADER_LEN + V5_RECORD_LEN);
        assert_eq!(V5Packet::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn round_trip_full_packet() {
        let pkt = V5Packet {
            header: V5Header::default(),
            records: (0..30).map(|i| sample_record(i as u8)).collect(),
        };
        let bytes = pkt.encode().unwrap();
        assert_eq!(V5Packet::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn rejects_empty_and_oversized_packets() {
        let empty = V5Packet::default();
        assert!(empty.encode().is_err());
        let over = V5Packet {
            header: V5Header::default(),
            records: vec![sample_record(0); 31],
        };
        assert!(over.encode().is_err());
    }

    #[test]
    fn rejects_wrong_version_and_truncation() {
        let pkt = V5Packet {
            header: V5Header::default(),
            records: vec![sample_record(3)],
        };
        let mut bytes = pkt.encode().unwrap();
        assert!(V5Packet::decode(&bytes[..10]).is_err());
        assert!(V5Packet::decode(&bytes[..V5_HEADER_LEN + 10]).is_err());
        bytes[1] = 9;
        assert!(V5Packet::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_bogus_record_count() {
        let pkt = V5Packet {
            header: V5Header::default(),
            records: vec![sample_record(3)],
        };
        let mut bytes = pkt.encode().unwrap();
        bytes[2] = 0xFF;
        bytes[3] = 0xFF;
        assert!(V5Packet::decode(&bytes).is_err());
        bytes[2] = 0;
        bytes[3] = 0;
        assert!(V5Packet::decode(&bytes).is_err());
    }
}
