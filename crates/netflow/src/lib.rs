//! # flowdns-netflow
//!
//! NetFlow substrate for the FlowDNS reproduction.
//!
//! The paper ingests NetFlow records captured at the ISP's ingress
//! interfaces (26 streams, ~1M records/s). This crate implements the
//! protocol machinery needed to produce and consume such records from
//! scratch:
//!
//! * [`v5`] — the fixed-format NetFlow v5 packet codec,
//! * [`template`] — field type definitions shared by the template-based
//!   formats,
//! * [`v9`] — NetFlow v9 (RFC 3954): template and data flowsets with a
//!   per-exporter template cache,
//! * [`ipfix`] — an IPFIX (RFC 7011) subset reader that reuses the v9
//!   template machinery,
//! * [`extract`] — the generic extraction layer that turns any parsed
//!   packet into the [`flowdns_types::FlowRecord`]s the correlator
//!   consumes (the paper: "the system is not bound to NetFlow data"),
//! * [`decode`] — per-exporter datagram decoding with v5/v9/IPFIX
//!   auto-detection by version word, used by the live ingest layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod extract;
pub mod ipfix;
pub mod template;
pub mod v5;
pub mod v9;

pub use decode::{DecodeStats, ExporterDecoder, FlowProtocol};
pub use extract::{ExtractorConfig, FlowExtractor};
pub use ipfix::{IpfixMessage, IpfixMessageBuilder, IpfixParser};
pub use template::{FieldSpec, FieldType, Template, TemplateCache, TemplateRegistry};
pub use v5::{V5Header, V5Packet, V5Record, V5_MAX_RECORDS};
pub use v9::{DataRecord, FlowSet, V9Packet, V9PacketBuilder, V9Parser};
