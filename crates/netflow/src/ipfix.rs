//! IPFIX (RFC 7011) subset reader.
//!
//! IPFIX is the IETF standardization of NetFlow v9: a 16-byte message
//! header followed by *sets*. Set id 2 carries templates (same layout as
//! v9 template records), set id 3 carries options templates, and set ids
//! ≥ 256 carry data records. Enterprise-specific information elements
//! (high bit of the field type set) are parsed but stored opaquely.
//!
//! The reader shares the per-source [`TemplateRegistry`] machinery and
//! record model with the v9 parser, so the extraction layer treats both
//! identically.

use flowdns_types::FlowDnsError;

use crate::template::{FieldSpec, FieldType, Template, TemplateRegistry};
use crate::v9::DataRecord;

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::NetflowParse(msg.into())
}

/// Size of the IPFIX message header in bytes.
pub const IPFIX_HEADER_LEN: usize = 16;
/// Set id carrying template records.
pub const TEMPLATE_SET_ID: u16 = 2;
/// Set id carrying options-template records.
pub const OPTIONS_TEMPLATE_SET_ID: u16 = 3;

/// A parsed IPFIX message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpfixMessage {
    /// Export time, seconds since the Unix epoch.
    pub export_time: u32,
    /// Message sequence number.
    pub sequence: u32,
    /// Observation domain id (plays the role of v9's source id).
    pub observation_domain: u32,
    /// Decoded data records (template and options sets update the cache
    /// but do not appear here).
    pub records: Vec<DataRecord>,
    /// Number of data sets that referenced an unknown template.
    pub unknown_template_sets: usize,
}

/// Stateful IPFIX reader (one per exporter peer).
#[derive(Debug, Default)]
pub struct IpfixParser {
    /// Per-observation-domain template caches shared across messages.
    pub templates: TemplateRegistry,
    /// Messages parsed so far.
    pub messages: u64,
    /// Data records decoded so far.
    pub records: u64,
}

impl IpfixParser {
    /// A fresh parser.
    pub fn new() -> Self {
        IpfixParser::default()
    }

    /// Parse one IPFIX message.
    pub fn parse(&mut self, bytes: &[u8]) -> Result<IpfixMessage, FlowDnsError> {
        if bytes.len() < IPFIX_HEADER_LEN {
            return Err(err("message shorter than IPFIX header"));
        }
        let version = u16::from_be_bytes([bytes[0], bytes[1]]);
        if version != 10 {
            return Err(err(format!("not an IPFIX message (version {version})")));
        }
        let length = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if length != bytes.len() {
            return Err(err(format!(
                "IPFIX length field {length} does not match buffer length {}",
                bytes.len()
            )));
        }
        let export_time = be32(&bytes[4..8]);
        let sequence = be32(&bytes[8..12]);
        let observation_domain = be32(&bytes[12..16]);

        let mut records = Vec::new();
        let mut unknown_template_sets = 0usize;
        let mut offset = IPFIX_HEADER_LEN;
        while offset + 4 <= bytes.len() {
            let set_id = u16::from_be_bytes([bytes[offset], bytes[offset + 1]]);
            let set_len = u16::from_be_bytes([bytes[offset + 2], bytes[offset + 3]]) as usize;
            if set_len < 4 {
                return Err(err(format!("set length {set_len} too small")));
            }
            if offset + set_len > bytes.len() {
                return Err(err("set runs past end of message"));
            }
            let body = &bytes[offset + 4..offset + set_len];
            match set_id {
                TEMPLATE_SET_ID => {
                    for t in parse_template_set(body)? {
                        self.templates.insert(observation_domain, t);
                    }
                }
                OPTIONS_TEMPLATE_SET_ID => {
                    // Recognized, not interpreted.
                }
                id if id >= 256 => match self.templates.get(observation_domain, id).cloned() {
                    Some(template) => {
                        records.extend(parse_data_set(body, &template)?);
                    }
                    None => {
                        self.templates.note_unknown(observation_domain);
                        unknown_template_sets += 1;
                    }
                },
                id => return Err(err(format!("reserved set id {id}"))),
            }
            offset += set_len;
        }

        self.messages += 1;
        self.records += records.len() as u64;
        Ok(IpfixMessage {
            export_time,
            sequence,
            observation_domain,
            records,
            unknown_template_sets,
        })
    }
}

fn parse_template_set(body: &[u8]) -> Result<Vec<Template>, FlowDnsError> {
    let mut templates = Vec::new();
    let mut off = 0usize;
    while off + 4 <= body.len() {
        let id = u16::from_be_bytes([body[off], body[off + 1]]);
        let field_count = u16::from_be_bytes([body[off + 2], body[off + 3]]) as usize;
        if id == 0 && field_count == 0 {
            break; // padding
        }
        if id < 256 {
            return Err(err(format!("template id {id} below 256")));
        }
        if field_count == 0 || field_count > 128 {
            return Err(err(format!("implausible field count {field_count}")));
        }
        off += 4;
        let mut fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            if off + 4 > body.len() {
                return Err(err("template set truncated"));
            }
            let raw_type = u16::from_be_bytes([body[off], body[off + 1]]);
            let length = u16::from_be_bytes([body[off + 2], body[off + 3]]);
            off += 4;
            // Enterprise-specific elements carry a 4-byte enterprise number.
            if raw_type & 0x8000 != 0 {
                if off + 4 > body.len() {
                    return Err(err("enterprise field truncated"));
                }
                off += 4;
            }
            if length == 0 {
                return Err(err("zero-length template field"));
            }
            fields.push(FieldSpec {
                ftype: FieldType::from_u16(raw_type & 0x7FFF),
                length,
            });
        }
        templates.push(Template { id, fields });
    }
    if templates.is_empty() {
        return Err(err("template set carries no templates"));
    }
    Ok(templates)
}

fn parse_data_set(body: &[u8], template: &Template) -> Result<Vec<DataRecord>, FlowDnsError> {
    let rec_len = template.record_len();
    if rec_len == 0 {
        return Err(err("template describes zero-length records"));
    }
    let mut records = Vec::new();
    let mut off = 0usize;
    while off + rec_len <= body.len() {
        let mut record = DataRecord::default();
        let mut pos = off;
        for field in &template.fields {
            let len = field.length as usize;
            record
                .fields
                .insert(field.ftype.to_u16(), body[pos..pos + len].to_vec());
            pos += len;
        }
        records.push(record);
        off += rec_len;
    }
    Ok(records)
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// Builder for IPFIX messages (used by tests and the synthetic exporter).
#[derive(Debug)]
pub struct IpfixMessageBuilder {
    observation_domain: u32,
    sequence: u32,
    export_time: u32,
    sets: Vec<u8>,
}

impl IpfixMessageBuilder {
    /// Start a message.
    pub fn new(observation_domain: u32, sequence: u32, export_time: u32) -> Self {
        IpfixMessageBuilder {
            observation_domain,
            sequence,
            export_time,
            sets: Vec::new(),
        }
    }

    /// Append a template set.
    pub fn add_templates(&mut self, templates: &[Template]) {
        let mut body = Vec::new();
        for t in templates {
            body.extend_from_slice(&t.id.to_be_bytes());
            body.extend_from_slice(&(t.fields.len() as u16).to_be_bytes());
            for f in &t.fields {
                body.extend_from_slice(&f.ftype.to_u16().to_be_bytes());
                body.extend_from_slice(&f.length.to_be_bytes());
            }
        }
        self.push_set(TEMPLATE_SET_ID, &body);
    }

    /// Append a data set of pre-encoded records following `template`.
    pub fn add_data(
        &mut self,
        template: &Template,
        records: &[Vec<u8>],
    ) -> Result<(), FlowDnsError> {
        let rec_len = template.record_len();
        let mut body = Vec::with_capacity(records.len() * rec_len);
        for r in records {
            if r.len() != rec_len {
                return Err(err("record length does not match template"));
            }
            body.extend_from_slice(r);
        }
        self.push_set(template.id, &body);
        Ok(())
    }

    fn push_set(&mut self, id: u16, body: &[u8]) {
        self.sets.extend_from_slice(&id.to_be_bytes());
        self.sets
            .extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
        self.sets.extend_from_slice(body);
    }

    /// Finish the message.
    pub fn build(self) -> Vec<u8> {
        let total = IPFIX_HEADER_LEN + self.sets.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&10u16.to_be_bytes());
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&self.export_time.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.observation_domain.to_be_bytes());
        out.extend_from_slice(&self.sets);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::v9::encode_standard_ipv4_record;
    use std::net::Ipv4Addr;

    fn template() -> Template {
        Template::standard_ipv4(400)
    }

    fn message(with_template: bool) -> Vec<u8> {
        let mut b = IpfixMessageBuilder::new(55, 3, 1_700_000_000);
        if with_template {
            b.add_templates(&[template()]);
        }
        let rec = encode_standard_ipv4_record(
            Ipv4Addr::new(203, 0, 113, 77),
            Ipv4Addr::new(10, 3, 0, 1),
            443,
            50123,
            6,
            2_000_000,
            1500,
            100,
            200,
        );
        b.add_data(&template(), &[rec]).unwrap();
        b.build()
    }

    #[test]
    fn template_then_data_round_trip() {
        let mut p = IpfixParser::new();
        let msg = p.parse(&message(true)).unwrap();
        assert_eq!(msg.observation_domain, 55);
        assert_eq!(msg.records.len(), 1);
        assert_eq!(
            msg.records[0].ip(FieldType::Ipv4SrcAddr),
            Some(std::net::IpAddr::from([203, 0, 113, 77]))
        );
        assert_eq!(msg.records[0].uint(FieldType::InBytes), Some(2_000_000));
    }

    #[test]
    fn data_before_template_counts_unknown() {
        let mut p = IpfixParser::new();
        let msg = p.parse(&message(false)).unwrap();
        assert_eq!(msg.records.len(), 0);
        assert_eq!(msg.unknown_template_sets, 1);
        let msg2 = p.parse(&message(true)).unwrap();
        assert_eq!(msg2.records.len(), 1);
    }

    #[test]
    fn length_field_is_validated() {
        let mut bytes = message(true);
        bytes[2] = 0;
        bytes[3] = 20;
        let mut p = IpfixParser::new();
        assert!(p.parse(&bytes).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = message(true);
        bytes[1] = 9;
        let mut p = IpfixParser::new();
        assert!(p.parse(&bytes).is_err());
    }

    #[test]
    fn truncated_message_is_rejected() {
        let bytes = message(true);
        let mut p = IpfixParser::new();
        assert!(p.parse(&bytes[..IPFIX_HEADER_LEN - 2]).is_err());
    }
}
