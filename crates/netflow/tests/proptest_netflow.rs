//! Property-based tests for the NetFlow codecs: v5 packets round-trip,
//! v9 template+data pipelines recover the encoded field values, and the
//! parsers never panic on arbitrary input.

use flowdns_netflow::v5::{V5Header, V5Packet, V5Record};
use flowdns_netflow::v9::{encode_standard_ipv4_record, V9PacketBuilder, V9Parser};
use flowdns_netflow::{FieldType, Template};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn v5_record() -> impl Strategy<Value = V5Record> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        1u32..10_000,
        1u32..100_000_000,
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(
            |(src, dst, sport, dport, packets, octets, proto, sas, das)| V5Record {
                src_addr: Ipv4Addr::from(src),
                dst_addr: Ipv4Addr::from(dst),
                next_hop: Ipv4Addr::UNSPECIFIED,
                input_if: 1,
                output_if: 2,
                packets,
                octets,
                first: 0,
                last: 1,
                src_port: sport,
                dst_port: dport,
                tcp_flags: 0,
                proto,
                tos: 0,
                src_as: sas,
                dst_as: das,
                src_mask: 24,
                dst_mask: 24,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn v5_round_trips(records in proptest::collection::vec(v5_record(), 1..=30),
                      uptime in any::<u32>(), secs in any::<u32>(), seq in any::<u32>()) {
        let pkt = V5Packet {
            header: V5Header {
                sys_uptime_ms: uptime,
                unix_secs: secs,
                unix_nsecs: 0,
                flow_sequence: seq,
                engine_type: 0,
                engine_id: 0,
                sampling: 0,
            },
            records,
        };
        let bytes = pkt.encode().unwrap();
        prop_assert_eq!(V5Packet::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn v5_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = V5Packet::decode(&bytes);
    }

    #[test]
    fn v9_field_values_survive(
        flows in proptest::collection::vec(
            (any::<[u8; 4]>(), any::<[u8; 4]>(), any::<u16>(), any::<u16>(), any::<u8>(), 1u32..1_000_000, 1u32..10_000),
            1..20)
    ) {
        let template = Template::standard_ipv4(256);
        let mut builder = V9PacketBuilder::new(1, 0, 1000);
        builder.add_templates(std::slice::from_ref(&template));
        let records: Vec<Vec<u8>> = flows
            .iter()
            .map(|(s, d, sp, dp, proto, bytes, pkts)| {
                encode_standard_ipv4_record(
                    Ipv4Addr::from(*s),
                    Ipv4Addr::from(*d),
                    *sp,
                    *dp,
                    *proto,
                    *bytes,
                    *pkts,
                    0,
                    1,
                )
            })
            .collect();
        builder.add_data(&template, &records).unwrap();
        let mut parser = V9Parser::new();
        let pkt = parser.parse(&builder.build(0)).unwrap();
        let decoded: Vec<_> = pkt.data_records().collect();
        prop_assert_eq!(decoded.len(), flows.len());
        for (rec, (s, _, _, _, proto, bytes, pkts)) in decoded.iter().zip(&flows) {
            prop_assert_eq!(rec.ip(FieldType::Ipv4SrcAddr), Some(std::net::IpAddr::from(*s)));
            prop_assert_eq!(rec.uint(FieldType::Protocol), Some(*proto as u64));
            prop_assert_eq!(rec.uint(FieldType::InBytes), Some(*bytes as u64));
            prop_assert_eq!(rec.uint(FieldType::InPkts), Some(*pkts as u64));
        }
    }

    #[test]
    fn v9_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut parser = V9Parser::new();
        let _ = parser.parse(&bytes);
    }

    #[test]
    fn ipfix_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut parser = flowdns_netflow::ipfix::IpfixParser::new();
        let _ = parser.parse(&bytes);
    }
}
