//! [`IngestRuntime`]: sockets in, correlated records out.
//!
//! The runtime binds the two listener groups (`SO_REUSEPORT` when more
//! than one socket per port is configured), starts a [`Correlator`] and
//! wires everything together: UDP datagram drains → per-listener
//! decoder shards → LookUp queue; TCP read drains → incremental decoder
//! → FillUp queue — with receive buffers drawn from one shared
//! [`BufferPool`]. Each side carries its own [`RateMeter`], and
//! shutdown is ordered: listeners stop accepting, connection handlers
//! drain and join, then the pipeline drains its bounded queues and the
//! final [`Report`] — with every per-exporter drop/malformed counter
//! folded into `core::metrics::IngestSummary` — comes back.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use flowdns_core::metrics::IngestSummary;
use flowdns_core::write::{DiscardSink, MemorySink, OutputSink, RotatingFileSink, TsvFileSink};
use flowdns_core::{Correlator, PipelineMetrics, Report};
use flowdns_stream::{MeterSnapshot, RateMeter};
use flowdns_types::{FlowDnsError, SimDuration};

use crate::buffer_pool::{BufferPool, PoolStats};
use crate::config::DaemonConfig;
use crate::dns_listener::{self, DnsFeedStats};
use crate::netflow_listener::{self, ExporterTable, ListenerCounters};
use crate::reuseport;

/// Width of the per-listener meter windows.
const METER_WINDOW_SECS: u64 = 60;

/// Split the `output` config value into the directory and filename
/// prefix the rotating sinks actually use (the extension is stripped:
/// `/var/log/flowdns/corr.tsv` → files `/var/log/flowdns/corr-<window>.tsv`).
/// Shared by [`IngestRuntime::start`] and `flowdnsd`'s startup banner so
/// the logged paths always match the files on disk.
pub fn rotating_output_parts(output: &str) -> (std::path::PathBuf, String) {
    let path = std::path::Path::new(output);
    let dir = path
        .parent()
        .map(|p| p.to_path_buf())
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let prefix = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "flowdns".to_string());
    (dir, prefix)
}

/// A point-in-time view of the ingest side, cheap enough to take every
/// stats tick.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSnapshot {
    /// Ingest totals so far (same shape as the final report's summary).
    pub summary: IngestSummary,
    /// NetFlow listener meter totals and rate.
    pub netflow_meter: MeterSnapshot,
    /// DNS-feed listener meter totals and rate.
    pub dns_meter: MeterSnapshot,
    /// Depths of the (fillup, lookup, write) queues.
    pub queue_depths: (usize, usize, usize),
    /// Per-listener drain counters of the NetFlow group, in listener
    /// order (length = effective `netflow_listeners`).
    pub netflow_listeners: Vec<ListenerCounters>,
    /// Effective size of the DNS accept-loop group.
    pub dns_listeners: usize,
    /// Shared receive-buffer pool counters.
    pub buffer_pool: PoolStats,
    /// Live pipeline metrics from [`Correlator::snapshot`]: worker stats,
    /// queue drop counters, store memory. Periodic reporters read this
    /// instead of probing queues and counters piecemeal.
    pub pipeline: PipelineMetrics,
}

/// The live ingestion runtime: two listeners feeding one [`Correlator`].
pub struct IngestRuntime {
    correlator: Arc<Correlator>,
    netflow_addr: SocketAddr,
    dns_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listeners: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    exporters: Arc<ExporterTable>,
    dns_stats: Arc<DnsFeedStats>,
    netflow_meter: Arc<Mutex<RateMeter>>,
    dns_meter: Arc<Mutex<RateMeter>>,
    pool: Arc<BufferPool>,
    dns_listener_count: usize,
}

impl std::fmt::Debug for IngestRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestRuntime")
            .field("netflow_addr", &self.netflow_addr)
            .field("dns_addr", &self.dns_addr)
            .finish()
    }
}

impl IngestRuntime {
    /// Start the runtime with the egress named by the configuration: with
    /// `output = path` each write-worker shard owns a
    /// [`RotatingFileSink`] (when `output_rotate_interval` is set) or a
    /// plain TSV file; otherwise records are discarded after accounting.
    pub fn start(config: &DaemonConfig) -> Result<Self, FlowDnsError> {
        let sharded = config.correlator.write_workers > 1;
        match &config.ingest.output {
            Some(path) => match config.ingest.output_rotate_interval {
                Some(window) => {
                    let window = SimDuration::from_secs(window.as_secs());
                    let (dir, prefix) = rotating_output_parts(path);
                    IngestRuntime::start_with_sink_factory(config, move |shard| {
                        let mut sink = RotatingFileSink::new(&dir, &prefix, window)?;
                        if sharded {
                            sink = sink.with_shard(shard);
                        }
                        Ok(Box::new(sink))
                    })
                }
                None => {
                    let path = path.clone();
                    IngestRuntime::start_with_sink_factory(config, move |shard| {
                        let shard_path = if sharded {
                            format!("{path}.w{shard}")
                        } else {
                            path.clone()
                        };
                        Ok(Box::new(TsvFileSink::create(shard_path)?))
                    })
                }
            },
            None => IngestRuntime::start_with_sink_factory(config, |_| Ok(Box::new(DiscardSink))),
        }
    }

    /// Start the runtime writing correlated records into in-memory sinks
    /// (tests and examples that inspect the output).
    pub fn start_in_memory(config: &DaemonConfig) -> Result<Self, FlowDnsError> {
        IngestRuntime::start_with_sink_factory(config, |_| Ok(Box::new(MemorySink::new())))
    }

    /// Start the runtime with an explicit single output sink (requires
    /// `write_workers = 1`; use
    /// [`IngestRuntime::start_with_sink_factory`] for sharded egress).
    pub fn start_with_sink(
        config: &DaemonConfig,
        sink: Box<dyn OutputSink>,
    ) -> Result<Self, FlowDnsError> {
        let factory =
            flowdns_core::write::single_sink_factory(config.correlator.write_workers, sink)?;
        IngestRuntime::start_with_sink_factory(config, factory)
    }

    /// Start the runtime with one sink per write-worker shard, built by
    /// `factory(shard)`.
    pub fn start_with_sink_factory<F>(
        config: &DaemonConfig,
        factory: F,
    ) -> Result<Self, FlowDnsError>
    where
        F: FnMut(usize) -> Result<Box<dyn OutputSink>, FlowDnsError>,
    {
        let io_err = |e: std::io::Error| FlowDnsError::Io(e.to_string());

        // Bind the listener groups first — the effective group sizes
        // (clamped to 1 where SO_REUSEPORT is unavailable) shape the
        // decoder shard layout below.
        let (udp_sockets, netflow_addr) =
            reuseport::bind_udp_group(config.ingest.netflow_bind, config.ingest.netflow_listeners)
                .map_err(io_err)?;
        if config.ingest.recv_buffer_bytes > 0 {
            for socket in &udp_sockets {
                // Best-effort: the kernel clamps to rmem_max, and a
                // denied resize still leaves a working (default-depth)
                // socket, so failure is not fatal.
                let _ = reuseport::set_recv_buffer(socket, config.ingest.recv_buffer_bytes);
            }
        }
        let (tcp_listeners, dns_addr) =
            reuseport::bind_tcp_group(config.ingest.dns_bind, config.ingest.dns_listeners)
                .map_err(io_err)?;
        let dns_listener_count = tcp_listeners.len();

        let correlator = Arc::new(Correlator::start_with_sink_factory(
            config.correlator.clone(),
            factory,
        )?);
        let shutdown = Arc::new(AtomicBool::new(false));
        let exporters = Arc::new(ExporterTable::new(udp_sockets.len()));
        let dns_stats = Arc::new(DnsFeedStats::default());
        let pool = BufferPool::new(config.ingest.buffer_pool);
        let window = SimDuration::from_secs(METER_WINDOW_SECS);
        let netflow_meter = Arc::new(Mutex::new(RateMeter::new(window)));
        let dns_meter = Arc::new(Mutex::new(RateMeter::new(window)));
        let conn_handles = Arc::new(Mutex::new(Vec::new()));

        let mut listeners = netflow_listener::spawn_group(
            udp_sockets,
            config.ingest.recv_batch,
            Arc::clone(&pool),
            Arc::clone(&correlator),
            Arc::clone(&shutdown),
            Arc::clone(&exporters),
            Arc::clone(&netflow_meter),
        )
        .map_err(io_err)?;
        listeners.extend(
            dns_listener::spawn_group(
                tcp_listeners,
                config.ingest.recv_batch,
                Arc::clone(&pool),
                Arc::clone(&correlator),
                Arc::clone(&shutdown),
                Arc::clone(&dns_stats),
                Arc::clone(&dns_meter),
                Arc::clone(&conn_handles),
            )
            .map_err(io_err)?,
        );

        Ok(IngestRuntime {
            correlator,
            netflow_addr,
            dns_addr,
            shutdown,
            listeners,
            conn_handles,
            exporters,
            dns_stats,
            netflow_meter,
            dns_meter,
            pool,
            dns_listener_count,
        })
    }

    /// The address the NetFlow UDP listener actually bound (resolves
    /// ephemeral port 0).
    pub fn netflow_addr(&self) -> SocketAddr {
        self.netflow_addr
    }

    /// The address the DNS-feed TCP listener actually bound.
    pub fn dns_addr(&self) -> SocketAddr {
        self.dns_addr
    }

    /// The correlation pipeline, for store/queue inspection.
    pub fn correlator(&self) -> &Correlator {
        &self.correlator
    }

    /// Current ingest totals, meters, queue depths and live pipeline
    /// metrics.
    pub fn snapshot(&self) -> IngestSnapshot {
        let summary = self.build_summary();
        // Fold the ingest totals into the pipeline view too, mirroring
        // what `shutdown()` does for the final report, so the two fields
        // of the snapshot never disagree.
        let mut pipeline = self.correlator.snapshot();
        pipeline.ingest = summary.clone();
        IngestSnapshot {
            summary,
            netflow_meter: self.netflow_meter.lock().snapshot(),
            dns_meter: self.dns_meter.lock().snapshot(),
            queue_depths: self.correlator.queue_depths(),
            netflow_listeners: self.exporters.per_listener(),
            dns_listeners: self.dns_listener_count,
            buffer_pool: self.pool.stats(),
            pipeline,
        }
    }

    fn build_summary(&self) -> IngestSummary {
        let totals = self.exporters.totals();
        IngestSummary {
            netflow_datagrams: totals.datagrams,
            netflow_flows: totals.flows,
            netflow_malformed: totals.malformed,
            netflow_unknown_template_drops: totals.unknown_template_drops,
            netflow_queue_drops: self.exporters.queue_drops.load(Ordering::Relaxed),
            dns_connections: self.dns_stats.connections.load(Ordering::Relaxed),
            dns_records: self.dns_stats.records.load(Ordering::Relaxed),
            dns_malformed_streams: self.dns_stats.malformed_streams.load(Ordering::Relaxed),
            dns_queue_drops: self.dns_stats.queue_drops.load(Ordering::Relaxed),
            per_exporter: self.exporters.per_exporter(),
        }
    }

    /// Ordered shutdown: stop the listeners, join every connection
    /// handler, drain the pipeline, and return the final report with the
    /// ingest summary folded into its metrics.
    pub fn shutdown(mut self) -> Result<Report, FlowDnsError> {
        self.shutdown.store(true, Ordering::Release);
        for handle in self.listeners.drain(..) {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("ingest listener panicked".into()))?;
        }
        // The accept loop is joined, so no new connections can arrive;
        // handlers see the flag within one poll interval.
        let handlers = std::mem::take(&mut *self.conn_handles.lock());
        for handle in handlers {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("dns feed handler panicked".into()))?;
        }
        let summary = self.build_summary();
        let correlator = Arc::try_unwrap(self.correlator).map_err(|_| {
            FlowDnsError::PipelineState("correlator still referenced at shutdown".into())
        })?;
        let mut report = correlator.finish()?;
        report.metrics.ingest = summary;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_config() -> DaemonConfig {
        let mut cfg = DaemonConfig::default();
        cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
        cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
        cfg
    }

    #[test]
    fn starts_on_ephemeral_ports_and_shuts_down_clean() {
        let rt = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        assert_ne!(rt.netflow_addr().port(), 0);
        assert_ne!(rt.dns_addr().port(), 0);
        let snap = rt.snapshot();
        assert!(!snap.summary.is_live());
        assert_eq!(snap.queue_depths, (0, 0, 0));
        assert_eq!(snap.pipeline.write.records_written, 0);
        assert_eq!(snap.pipeline.flows_dropped, 0);
        // The snapshot's two views of the ingest totals must agree.
        assert_eq!(snap.pipeline.ingest, snap.summary);
        let report = rt.shutdown().unwrap();
        assert_eq!(report.metrics.write.records_written, 0);
        assert!(!report.metrics.ingest.is_live());
    }

    #[test]
    fn listener_groups_start_and_report_their_size() {
        let mut cfg = loopback_config();
        cfg.ingest.netflow_listeners = 4;
        cfg.ingest.dns_listeners = 2;
        let rt = IngestRuntime::start_in_memory(&cfg).unwrap();
        let snap = rt.snapshot();
        // Real 4-socket group on Linux; clamped to 1 where SO_REUSEPORT
        // is unavailable — either way the snapshot reports the truth.
        assert!(snap.netflow_listeners.len() == 4 || snap.netflow_listeners.len() == 1);
        assert!(snap.dns_listeners == 2 || snap.dns_listeners == 1);
        assert_eq!(
            snap.netflow_listeners.len(),
            rt.exporters.listeners(),
            "shards must match the listener group"
        );
        rt.shutdown().unwrap();
    }

    #[test]
    fn two_runtimes_can_coexist() {
        let a = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        let b = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        assert_ne!(a.netflow_addr(), b.netflow_addr());
        a.shutdown().unwrap();
        b.shutdown().unwrap();
    }

    #[test]
    fn binding_an_occupied_port_is_an_io_error() {
        let rt = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        let mut cfg = loopback_config();
        cfg.ingest.dns_bind = rt.dns_addr();
        match IngestRuntime::start_in_memory(&cfg) {
            Err(FlowDnsError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        rt.shutdown().unwrap();
    }
}
