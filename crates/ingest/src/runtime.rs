//! [`IngestRuntime`]: sockets in, correlated records out.
//!
//! The runtime binds the two listener groups (`SO_REUSEPORT` when more
//! than one socket per port is configured), starts a [`Correlator`] and
//! wires everything together: UDP datagram drains → per-listener
//! decoder shards → LookUp queue; TCP read drains → incremental decoder
//! → FillUp queue — with receive buffers drawn from one shared
//! [`BufferPool`]. Each side carries its own [`RateMeter`], and
//! shutdown is ordered: listeners stop accepting, connection handlers
//! drain and join, then the pipeline drains its bounded queues and the
//! final [`Report`] — with every per-exporter drop/malformed counter
//! folded into `core::metrics::IngestSummary` — comes back.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use flowdns_core::metrics::IngestSummary;
use flowdns_core::write::{DiscardSink, MemorySink, OutputSink, RotatingFileSink, TsvFileSink};
use flowdns_core::{Correlator, PipelineMetrics, Report};
use flowdns_obs::{HealthCheck, HealthStatus, MetricsRegistry, MetricsServer};
use flowdns_stream::{MeterSnapshot, RateMeter};
use flowdns_types::{FlowDnsError, SimDuration};

use crate::buffer_pool::{BufferPool, PoolStats};
use crate::config::DaemonConfig;
use crate::dns_listener::{self, DnsFeedStats};
use crate::netflow_listener::{self, ExporterTable, ListenerCounters};
use crate::reuseport;

/// Width of the per-listener meter windows.
const METER_WINDOW_SECS: u64 = 60;

/// Queue fill level at which `/healthz` flips to 503.
const QUEUE_SATURATION_THRESHOLD: f64 = 0.95;

/// Split the `output` config value into the directory and filename
/// prefix the rotating sinks actually use (the extension is stripped:
/// `/var/log/flowdns/corr.tsv` → files `/var/log/flowdns/corr-<window>.tsv`).
/// Shared by [`IngestRuntime::start`] and `flowdnsd`'s startup banner so
/// the logged paths always match the files on disk.
pub fn rotating_output_parts(output: &str) -> (std::path::PathBuf, String) {
    let path = std::path::Path::new(output);
    let dir = path
        .parent()
        .map(|p| p.to_path_buf())
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let prefix = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "flowdns".to_string());
    (dir, prefix)
}

/// A point-in-time view of the ingest side, cheap enough to take every
/// stats tick.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSnapshot {
    /// Ingest totals so far (same shape as the final report's summary).
    pub summary: IngestSummary,
    /// NetFlow listener meter totals and rate.
    pub netflow_meter: MeterSnapshot,
    /// DNS-feed listener meter totals and rate.
    pub dns_meter: MeterSnapshot,
    /// Depths of the (fillup, lookup, write) queues.
    pub queue_depths: (usize, usize, usize),
    /// Per-listener drain counters of the NetFlow group, in listener
    /// order (length = effective `netflow_listeners`).
    pub netflow_listeners: Vec<ListenerCounters>,
    /// Effective size of the DNS accept-loop group.
    pub dns_listeners: usize,
    /// Shared receive-buffer pool counters.
    pub buffer_pool: PoolStats,
    /// Live pipeline metrics from [`Correlator::snapshot`]: worker stats,
    /// queue drop counters, store memory. Periodic reporters read this
    /// instead of probing queues and counters piecemeal.
    pub pipeline: PipelineMetrics,
}

/// The live ingestion runtime: two listeners feeding one [`Correlator`].
pub struct IngestRuntime {
    correlator: Arc<Correlator>,
    netflow_addr: SocketAddr,
    dns_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listeners: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    exporters: Arc<ExporterTable>,
    dns_stats: Arc<DnsFeedStats>,
    netflow_meter: Arc<Mutex<RateMeter>>,
    dns_meter: Arc<Mutex<RateMeter>>,
    pool: Arc<BufferPool>,
    dns_listener_count: usize,
    registry: Arc<MetricsRegistry>,
    metrics_server: Option<MetricsServer>,
}

impl std::fmt::Debug for IngestRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestRuntime")
            .field("netflow_addr", &self.netflow_addr)
            .field("dns_addr", &self.dns_addr)
            .finish()
    }
}

impl IngestRuntime {
    /// Start the runtime with the egress named by the configuration: with
    /// `output = path` each write-worker shard owns a
    /// [`RotatingFileSink`] (when `output_rotate_interval` is set) or a
    /// plain TSV file; otherwise records are discarded after accounting.
    pub fn start(config: &DaemonConfig) -> Result<Self, FlowDnsError> {
        let sharded = config.correlator.write_workers > 1;
        match &config.ingest.output {
            Some(path) => match config.ingest.output_rotate_interval {
                Some(window) => {
                    let window = SimDuration::from_secs(window.as_secs());
                    let (dir, prefix) = rotating_output_parts(path);
                    IngestRuntime::start_with_sink_factory(config, move |shard| {
                        let mut sink = RotatingFileSink::new(&dir, &prefix, window)?;
                        if sharded {
                            sink = sink.with_shard(shard);
                        }
                        Ok(Box::new(sink))
                    })
                }
                None => {
                    let path = path.clone();
                    IngestRuntime::start_with_sink_factory(config, move |shard| {
                        let shard_path = if sharded {
                            format!("{path}.w{shard}")
                        } else {
                            path.clone()
                        };
                        Ok(Box::new(TsvFileSink::create(shard_path)?))
                    })
                }
            },
            None => IngestRuntime::start_with_sink_factory(config, |_| Ok(Box::new(DiscardSink))),
        }
    }

    /// Start the runtime writing correlated records into in-memory sinks
    /// (tests and examples that inspect the output).
    pub fn start_in_memory(config: &DaemonConfig) -> Result<Self, FlowDnsError> {
        IngestRuntime::start_with_sink_factory(config, |_| Ok(Box::new(MemorySink::new())))
    }

    /// Start the runtime with an explicit single output sink (requires
    /// `write_workers = 1`; use
    /// [`IngestRuntime::start_with_sink_factory`] for sharded egress).
    pub fn start_with_sink(
        config: &DaemonConfig,
        sink: Box<dyn OutputSink>,
    ) -> Result<Self, FlowDnsError> {
        let factory =
            flowdns_core::write::single_sink_factory(config.correlator.write_workers, sink)?;
        IngestRuntime::start_with_sink_factory(config, factory)
    }

    /// Start the runtime with one sink per write-worker shard, built by
    /// `factory(shard)`.
    pub fn start_with_sink_factory<F>(
        config: &DaemonConfig,
        factory: F,
    ) -> Result<Self, FlowDnsError>
    where
        F: FnMut(usize) -> Result<Box<dyn OutputSink>, FlowDnsError>,
    {
        let io_err = |e: std::io::Error| FlowDnsError::Io(e.to_string());

        // Bind the listener groups first — the effective group sizes
        // (clamped to 1 where SO_REUSEPORT is unavailable) shape the
        // decoder shard layout below.
        let (udp_sockets, netflow_addr) =
            reuseport::bind_udp_group(config.ingest.netflow_bind, config.ingest.netflow_listeners)
                .map_err(io_err)?;
        if config.ingest.recv_buffer_bytes > 0 {
            for socket in &udp_sockets {
                // Best-effort: the kernel clamps to rmem_max, and a
                // denied resize still leaves a working (default-depth)
                // socket, so failure is not fatal.
                let _ = reuseport::set_recv_buffer(socket, config.ingest.recv_buffer_bytes);
            }
        }
        let (tcp_listeners, dns_addr) =
            reuseport::bind_tcp_group(config.ingest.dns_bind, config.ingest.dns_listeners)
                .map_err(io_err)?;
        let dns_listener_count = tcp_listeners.len();

        let correlator = Arc::new(Correlator::start_with_sink_factory(
            config.correlator.clone(),
            factory,
        )?);
        let shutdown = Arc::new(AtomicBool::new(false));
        let exporters = Arc::new(ExporterTable::new(udp_sockets.len()));
        let dns_stats = Arc::new(DnsFeedStats::default());
        let pool = BufferPool::new(config.ingest.buffer_pool);
        let window = SimDuration::from_secs(METER_WINDOW_SECS);
        let netflow_meter = Arc::new(Mutex::new(RateMeter::new(window)));
        let dns_meter = Arc::new(Mutex::new(RateMeter::new(window)));
        let conn_handles = Arc::new(Mutex::new(Vec::new()));

        let mut listeners = netflow_listener::spawn_group(
            udp_sockets,
            config.ingest.recv_batch,
            Arc::clone(&pool),
            Arc::clone(&correlator),
            Arc::clone(&shutdown),
            Arc::clone(&exporters),
            Arc::clone(&netflow_meter),
        )
        .map_err(io_err)?;
        listeners.extend(
            dns_listener::spawn_group(
                tcp_listeners,
                config.ingest.recv_batch,
                Arc::clone(&pool),
                Arc::clone(&correlator),
                Arc::clone(&shutdown),
                Arc::clone(&dns_stats),
                Arc::clone(&dns_meter),
                Arc::clone(&conn_handles),
            )
            .map_err(io_err)?,
        );

        // Every subsystem registers into one registry: pipeline workers,
        // queues, store, snapshots and BGP from the correlator; listener,
        // feed, meter and buffer-pool series from the ingest side. The
        // periodic stderr stats and the scrape endpoint both read it.
        let registry = Arc::new(MetricsRegistry::new());
        correlator.register_metrics(&registry);
        register_ingest_metrics(
            &registry,
            &exporters,
            &dns_stats,
            &netflow_meter,
            &dns_meter,
            &pool,
        );
        let metrics_server = match config.ingest.metrics_addr {
            Some(addr) => {
                let health = health_check(&correlator);
                match MetricsServer::start(addr, Arc::clone(&registry), health) {
                    Ok(server) => Some(server),
                    Err(e) => {
                        // The listener threads are already running; stop
                        // them before reporting the bind failure.
                        shutdown.store(true, Ordering::Release);
                        for handle in listeners {
                            let _ = handle.join();
                        }
                        return Err(io_err(e));
                    }
                }
            }
            None => None,
        };

        Ok(IngestRuntime {
            correlator,
            netflow_addr,
            dns_addr,
            shutdown,
            listeners,
            conn_handles,
            exporters,
            dns_stats,
            netflow_meter,
            dns_meter,
            pool,
            dns_listener_count,
            registry,
            metrics_server,
        })
    }

    /// The address the NetFlow UDP listener actually bound (resolves
    /// ephemeral port 0).
    pub fn netflow_addr(&self) -> SocketAddr {
        self.netflow_addr
    }

    /// The address the DNS-feed TCP listener actually bound.
    pub fn dns_addr(&self) -> SocketAddr {
        self.dns_addr
    }

    /// The correlation pipeline, for store/queue inspection.
    pub fn correlator(&self) -> &Correlator {
        &self.correlator
    }

    /// The metrics registry every subsystem registered into. Periodic
    /// reporters snapshot this instead of probing counters piecemeal.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The bound address of the metrics endpoint, when `metrics_addr`
    /// is configured (resolves an ephemeral port 0 request).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.local_addr())
    }

    /// Current ingest totals, meters, queue depths and live pipeline
    /// metrics.
    pub fn snapshot(&self) -> IngestSnapshot {
        let summary = self.build_summary();
        // Fold the ingest totals into the pipeline view too, mirroring
        // what `shutdown()` does for the final report, so the two fields
        // of the snapshot never disagree.
        let mut pipeline = self.correlator.snapshot();
        pipeline.ingest = summary.clone();
        IngestSnapshot {
            summary,
            netflow_meter: self.netflow_meter.lock().snapshot(),
            dns_meter: self.dns_meter.lock().snapshot(),
            queue_depths: self.correlator.queue_depths(),
            netflow_listeners: self.exporters.per_listener(),
            dns_listeners: self.dns_listener_count,
            buffer_pool: self.pool.stats(),
            pipeline,
        }
    }

    fn build_summary(&self) -> IngestSummary {
        let totals = self.exporters.totals();
        IngestSummary {
            netflow_datagrams: totals.datagrams,
            netflow_flows: totals.flows,
            netflow_malformed: totals.malformed,
            netflow_unknown_template_drops: totals.unknown_template_drops,
            netflow_queue_drops: self.exporters.queue_drops.load(Ordering::Relaxed),
            dns_connections: self.dns_stats.connections.load(Ordering::Relaxed),
            dns_records: self.dns_stats.records.load(Ordering::Relaxed),
            dns_malformed_streams: self.dns_stats.malformed_streams.load(Ordering::Relaxed),
            dns_queue_drops: self.dns_stats.queue_drops.load(Ordering::Relaxed),
            per_exporter: self.exporters.per_exporter(),
        }
    }

    /// Ordered shutdown: stop the listeners, join every connection
    /// handler, drain the pipeline, and return the final report with the
    /// ingest summary folded into its metrics.
    pub fn shutdown(mut self) -> Result<Report, FlowDnsError> {
        self.shutdown.store(true, Ordering::Release);
        for handle in self.listeners.drain(..) {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("ingest listener panicked".into()))?;
        }
        // The accept loop is joined, so no new connections can arrive;
        // handlers see the flag within one poll interval.
        let handlers = std::mem::take(&mut *self.conn_handles.lock());
        for handle in handlers {
            handle
                .join()
                .map_err(|_| FlowDnsError::PipelineState("dns feed handler panicked".into()))?;
        }
        // The health probe holds its own correlator handle; stop the
        // endpoint before unwrapping the pipeline.
        if let Some(server) = self.metrics_server.take() {
            server.shutdown();
        }
        let summary = self.build_summary();
        let correlator = Arc::try_unwrap(self.correlator).map_err(|_| {
            FlowDnsError::PipelineState("correlator still referenced at shutdown".into())
        })?;
        let mut report = correlator.finish()?;
        report.metrics.ingest = summary;
        Ok(report)
    }
}

/// The `/healthz` probe: an egress sink error or a near-full pipeline
/// queue turns the endpoint 503 so an orchestrator can restart or shed
/// load before data is silently dropped.
fn health_check(correlator: &Arc<Correlator>) -> HealthCheck {
    let correlator = Arc::clone(correlator);
    Arc::new(move || {
        if let Some(err) = correlator.egress_error_message() {
            return HealthStatus::unhealthy(format!("egress error: {err}"));
        }
        let (fillup, lookup, write) = correlator.queue_fill_levels();
        let detail = format!(
            "queues: fillup {:.0}% lookup {:.0}% write {:.0}%",
            fillup * 100.0,
            lookup * 100.0,
            write * 100.0
        );
        if fillup.max(lookup).max(write) >= QUEUE_SATURATION_THRESHOLD {
            HealthStatus::unhealthy(format!("saturated {detail}"))
        } else {
            HealthStatus::ok(detail)
        }
    })
}

/// Register the ingest-side series: per-listener drain counters, decode
/// totals, DNS-feed counters, meter totals with the wall-clock
/// `last_activity_seconds` gauges, and buffer-pool reuse. All closures
/// over counters the listeners already maintain — registration adds no
/// hot-path cost.
fn register_ingest_metrics(
    registry: &MetricsRegistry,
    exporters: &Arc<ExporterTable>,
    dns_stats: &Arc<DnsFeedStats>,
    netflow_meter: &Arc<Mutex<RateMeter>>,
    dns_meter: &Arc<Mutex<RateMeter>>,
    pool: &Arc<BufferPool>,
) {
    for i in 0..exporters.listeners() {
        let listener = i.to_string();
        let labels: &[(&str, &str)] = &[("listener", listener.as_str())];
        let t = Arc::clone(exporters);
        registry.counter_fn(
            "flowdns_ingest_netflow_datagrams_total",
            "UDP datagrams received, per NetFlow listener.",
            labels,
            move || t.per_listener()[i].datagrams,
        );
        let t = Arc::clone(exporters);
        registry.counter_fn(
            "flowdns_ingest_netflow_drains_total",
            "Receive drain rounds, per NetFlow listener.",
            labels,
            move || t.per_listener()[i].drains,
        );
        let t = Arc::clone(exporters);
        registry.counter_fn(
            "flowdns_ingest_netflow_batch_pushes_total",
            "Batches offered to the LookUp queue, per NetFlow listener.",
            labels,
            move || t.per_listener()[i].batch_pushes,
        );
        let t = Arc::clone(exporters);
        registry.gauge_fn(
            "flowdns_ingest_netflow_max_drain",
            "Largest single receive drain so far, in datagrams.",
            labels,
            move || t.per_listener()[i].max_drain as f64,
        );
    }
    let t = Arc::clone(exporters);
    registry.counter_fn(
        "flowdns_ingest_netflow_flows_total",
        "Flow records decoded from NetFlow/IPFIX datagrams.",
        &[],
        move || t.totals().flows,
    );
    let t = Arc::clone(exporters);
    registry.counter_fn(
        "flowdns_ingest_netflow_malformed_total",
        "Datagrams dropped as malformed.",
        &[],
        move || t.totals().malformed,
    );
    let t = Arc::clone(exporters);
    registry.counter_fn(
        "flowdns_ingest_netflow_unknown_template_drops_total",
        "IPFIX data records dropped for lack of their template.",
        &[],
        move || t.totals().unknown_template_drops,
    );
    let t = Arc::clone(exporters);
    registry.counter_fn(
        "flowdns_ingest_netflow_queue_dropped_total",
        "Decoded flows dropped because the LookUp queue was full.",
        &[],
        move || t.queue_drops.load(Ordering::Relaxed),
    );

    let s = Arc::clone(dns_stats);
    registry.counter_fn(
        "flowdns_ingest_dns_connections_total",
        "DNS-feed connections accepted.",
        &[],
        move || s.connections.load(Ordering::Relaxed),
    );
    let s = Arc::clone(dns_stats);
    registry.counter_fn(
        "flowdns_ingest_dns_records_total",
        "DNS records decoded from the feed.",
        &[],
        move || s.records.load(Ordering::Relaxed),
    );
    let s = Arc::clone(dns_stats);
    registry.counter_fn(
        "flowdns_ingest_dns_reads_total",
        "DNS-feed socket reads that returned data.",
        &[],
        move || s.reads.load(Ordering::Relaxed),
    );
    let s = Arc::clone(dns_stats);
    registry.counter_fn(
        "flowdns_ingest_dns_batch_pushes_total",
        "Batches offered to the FillUp queue by the DNS feed.",
        &[],
        move || s.batch_pushes.load(Ordering::Relaxed),
    );
    let s = Arc::clone(dns_stats);
    registry.counter_fn(
        "flowdns_ingest_dns_malformed_streams_total",
        "DNS-feed connections dropped for framing errors.",
        &[],
        move || s.malformed_streams.load(Ordering::Relaxed),
    );
    let s = Arc::clone(dns_stats);
    registry.counter_fn(
        "flowdns_ingest_dns_queue_dropped_total",
        "DNS records dropped because the FillUp queue was full.",
        &[],
        move || s.queue_drops.load(Ordering::Relaxed),
    );

    for (feed, meter) in [("netflow", netflow_meter), ("dns", dns_meter)] {
        let labels: &[(&str, &str)] = &[("feed", feed)];
        let m = Arc::clone(meter);
        registry.counter_fn(
            "flowdns_ingest_records_total",
            "Records metered per feed (simulated-time rate meter totals).",
            labels,
            move || m.lock().snapshot().count,
        );
        let m = Arc::clone(meter);
        registry.counter_fn(
            "flowdns_ingest_bytes_total",
            "Bytes metered per feed.",
            labels,
            move || m.lock().snapshot().bytes,
        );
        let m = Arc::clone(meter);
        registry.gauge_fn(
            "flowdns_ingest_last_activity_seconds",
            "Wall-clock seconds since the feed last received a batch (-1 = never).",
            labels,
            move || m.lock().snapshot().last_activity_secs.unwrap_or(-1.0),
        );
    }

    let p = Arc::clone(pool);
    registry.counter_fn(
        "flowdns_ingest_buffer_pool_hits_total",
        "Receive buffers served from the shared pool.",
        &[],
        move || p.stats().hits,
    );
    let p = Arc::clone(pool);
    registry.counter_fn(
        "flowdns_ingest_buffer_pool_misses_total",
        "Receive buffers freshly allocated (pool empty).",
        &[],
        move || p.stats().misses,
    );
    let p = Arc::clone(pool);
    registry.gauge_fn(
        "flowdns_ingest_buffer_pool_pooled",
        "Idle receive buffers currently retained by the pool.",
        &[],
        move || p.stats().pooled as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_config() -> DaemonConfig {
        let mut cfg = DaemonConfig::default();
        cfg.ingest.netflow_bind = "127.0.0.1:0".parse().unwrap();
        cfg.ingest.dns_bind = "127.0.0.1:0".parse().unwrap();
        cfg
    }

    #[test]
    fn starts_on_ephemeral_ports_and_shuts_down_clean() {
        let rt = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        assert_ne!(rt.netflow_addr().port(), 0);
        assert_ne!(rt.dns_addr().port(), 0);
        let snap = rt.snapshot();
        assert!(!snap.summary.is_live());
        assert_eq!(snap.queue_depths, (0, 0, 0));
        assert_eq!(snap.pipeline.write.records_written, 0);
        assert_eq!(snap.pipeline.flows_dropped, 0);
        // The snapshot's two views of the ingest totals must agree.
        assert_eq!(snap.pipeline.ingest, snap.summary);
        let report = rt.shutdown().unwrap();
        assert_eq!(report.metrics.write.records_written, 0);
        assert!(!report.metrics.ingest.is_live());
    }

    #[test]
    fn listener_groups_start_and_report_their_size() {
        let mut cfg = loopback_config();
        cfg.ingest.netflow_listeners = 4;
        cfg.ingest.dns_listeners = 2;
        let rt = IngestRuntime::start_in_memory(&cfg).unwrap();
        let snap = rt.snapshot();
        // Real 4-socket group on Linux; clamped to 1 where SO_REUSEPORT
        // is unavailable — either way the snapshot reports the truth.
        assert!(snap.netflow_listeners.len() == 4 || snap.netflow_listeners.len() == 1);
        assert!(snap.dns_listeners == 2 || snap.dns_listeners == 1);
        assert_eq!(
            snap.netflow_listeners.len(),
            rt.exporters.listeners(),
            "shards must match the listener group"
        );
        rt.shutdown().unwrap();
    }

    #[test]
    fn metrics_endpoint_is_off_by_default_but_registry_is_live() {
        let rt = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        assert!(rt.metrics_addr().is_none());
        // The registry exists (stderr stats derive from it) even with no
        // scrape endpoint; pipeline and ingest series are registered.
        let snap = rt.registry().snapshot();
        assert_eq!(snap.counter("flowdns_egress_records_total"), 0);
        assert_eq!(snap.counter("flowdns_ingest_netflow_datagrams_total"), 0);
        assert_eq!(
            snap.gauge_with("flowdns_ingest_last_activity_seconds", "feed", "netflow"),
            Some(-1.0),
            "no batch received yet"
        );
        rt.shutdown().unwrap();
    }

    #[test]
    fn metrics_endpoint_serves_when_configured() {
        use std::io::{Read as _, Write as _};
        let mut cfg = loopback_config();
        cfg.ingest.metrics_addr = Some("127.0.0.1:0".parse().unwrap());
        let rt = IngestRuntime::start_in_memory(&cfg).unwrap();
        let addr = rt.metrics_addr().expect("metrics server bound");
        assert_ne!(addr.port(), 0);
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        write!(conn, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("flowdns_ingest_netflow_datagrams_total"));
        assert!(response.contains("flowdns_egress_records_total"));
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        write!(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("queues"), "{response}");
        rt.shutdown().unwrap();
    }

    #[test]
    fn two_runtimes_can_coexist() {
        let a = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        let b = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        assert_ne!(a.netflow_addr(), b.netflow_addr());
        a.shutdown().unwrap();
        b.shutdown().unwrap();
    }

    #[test]
    fn binding_an_occupied_port_is_an_io_error() {
        let rt = IngestRuntime::start_in_memory(&loopback_config()).unwrap();
        let mut cfg = loopback_config();
        cfg.ingest.dns_bind = rt.dns_addr();
        match IngestRuntime::start_in_memory(&cfg) {
            Err(FlowDnsError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        rt.shutdown().unwrap();
    }
}
