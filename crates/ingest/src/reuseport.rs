//! `SO_REUSEPORT` listener groups.
//!
//! With `netflow_listeners`/`dns_listeners` > 1 the runtime binds N
//! sockets to the *same* address with `SO_REUSEPORT` set, and the kernel
//! load-balances datagrams (by 4-tuple hash) and connections across
//! them — each socket gets its own decode thread with no shared recv
//! path. Because the hash pins one exporter's source address to one
//! socket, every listener thread can keep its own per-exporter decoder
//! shard without cross-thread locking.
//!
//! `std` cannot set socket options before `bind`, and this build is
//! dependency-free, so on Linux the sockets are created with a small,
//! contained set of raw `socket(2)`/`setsockopt(2)`/`bind(2)` calls and
//! then handed to `std` types via `FromRawFd`. On other platforms (or
//! when a group bind fails) the group degrades gracefully to a single
//! `std`-bound socket — correctness is identical, only the parallelism
//! is lost — and the effective group size is visible to the operator via
//! the returned vector's length.

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};

/// Bind `count` UDP sockets to `addr` as a `SO_REUSEPORT` group.
/// Returns the sockets and the resolved local address (meaningful when
/// `addr` asked for port 0). The group is clamped to one socket when
/// `count <= 1` or the platform has no usable `SO_REUSEPORT`.
pub(crate) fn bind_udp_group(
    addr: SocketAddr,
    count: usize,
) -> io::Result<(Vec<UdpSocket>, SocketAddr)> {
    if count <= 1 {
        let socket = UdpSocket::bind(addr)?;
        let local = socket.local_addr()?;
        return Ok((vec![socket], local));
    }
    match sys::udp_group(addr, count) {
        Ok(group) => Ok(group),
        // Graceful fallback: no REUSEPORT support (or the raw path
        // failed) — a single listener keeps the daemon correct.
        Err(_) => {
            let socket = UdpSocket::bind(addr)?;
            let local = socket.local_addr()?;
            Ok((vec![socket], local))
        }
    }
}

/// Bind `count` TCP listeners to `addr` as a `SO_REUSEPORT` group; same
/// contract as [`bind_udp_group`].
pub(crate) fn bind_tcp_group(
    addr: SocketAddr,
    count: usize,
) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
    if count <= 1 {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        return Ok((vec![listener], local));
    }
    match sys::tcp_group(addr, count) {
        Ok(group) => Ok(group),
        Err(_) => {
            let listener = TcpListener::bind(addr)?;
            let local = listener.local_addr()?;
            Ok((vec![listener], local))
        }
    }
}

/// Ask the kernel for `bytes` of receive buffering on `socket`
/// (`SO_RCVBUF`). The kernel silently clamps the request to
/// `net.core.rmem_max`, so this is best-effort sizing, not a guarantee;
/// a deep buffer is what lets a collector ride out scheduling gaps and
/// exporter bursts without kernel-side datagram loss. No-op off Linux.
pub(crate) fn set_recv_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<()> {
    sys::set_recv_buffer(socket, bytes)
}

#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::net::{SocketAddr, TcpListener, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};

    // Linux ABI constants and layouts (x86_64/aarch64 generic values);
    // hand-declared because this build links no libc crate.
    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    const SO_REUSEPORT: i32 = 15;
    const LISTEN_BACKLOG: i32 = 1024;

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: [u8; 4],
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    struct SockAddrIn6 {
        sin6_family: u16,
        sin6_port: u16, // network byte order
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    // Each unsafe-bearing item carries its own allow, so new unsafe
    // code elsewhere in the crate still trips `deny(unsafe_code)`.
    #[allow(unsafe_code)]
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
        fn bind(fd: i32, addr: *const core::ffi::c_void, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Owned raw fd: closed on drop unless released into a std type.
    struct Fd(RawFd);

    impl Fd {
        fn release(self) -> RawFd {
            let fd = self.0;
            std::mem::forget(self);
            fd
        }
    }

    impl Drop for Fd {
        #[allow(unsafe_code)]
        fn drop(&mut self) {
            // SAFETY: `self.0` is an fd this module opened and still owns.
            unsafe {
                close(self.0);
            }
        }
    }

    /// socket() + SO_REUSEPORT + bind(), returning the still-raw fd.
    #[allow(unsafe_code)]
    fn bound_reuseport(addr: SocketAddr, ty: i32) -> io::Result<Fd> {
        let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
        // SAFETY: plain syscall with constant arguments.
        let raw = unsafe { socket(domain, ty | SOCK_CLOEXEC, 0) };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = Fd(raw);
        let one: i32 = 1;
        // SAFETY: `one` outlives the call; optlen matches its size.
        let rc = unsafe {
            setsockopt(
                fd.0,
                SOL_SOCKET,
                SO_REUSEPORT,
                (&one as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let rc = match addr {
            SocketAddr::V4(v4) => {
                let sa = SockAddrIn {
                    sin_family: AF_INET as u16,
                    sin_port: v4.port().to_be(),
                    sin_addr: v4.ip().octets(),
                    sin_zero: [0; 8],
                };
                // SAFETY: `sa` is a valid sockaddr_in for the call's
                // duration and addrlen matches its layout.
                unsafe {
                    bind(
                        fd.0,
                        (&sa as *const SockAddrIn).cast(),
                        std::mem::size_of::<SockAddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(v6) => {
                let sa = SockAddrIn6 {
                    sin6_family: AF_INET6 as u16,
                    sin6_port: v6.port().to_be(),
                    sin6_flowinfo: v6.flowinfo(),
                    sin6_addr: v6.ip().octets(),
                    sin6_scope_id: v6.scope_id(),
                };
                // SAFETY: as above, for sockaddr_in6.
                unsafe {
                    bind(
                        fd.0,
                        (&sa as *const SockAddrIn6).cast(),
                        std::mem::size_of::<SockAddrIn6>() as u32,
                    )
                }
            }
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    #[allow(unsafe_code)]
    pub(super) fn set_recv_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<()> {
        let requested: i32 = bytes.min(i32::MAX as usize) as i32;
        // SAFETY: `requested` outlives the call; optlen matches its size.
        let rc = unsafe {
            setsockopt(
                socket.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                (&requested as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    #[allow(unsafe_code)]
    pub(super) fn udp_group(
        addr: SocketAddr,
        count: usize,
    ) -> io::Result<(Vec<UdpSocket>, SocketAddr)> {
        // SAFETY: the fd is freshly bound, owned here, and released
        // exactly once into the std type.
        let first = unsafe { UdpSocket::from_raw_fd(bound_reuseport(addr, SOCK_DGRAM)?.release()) };
        // Port 0 resolves on the first bind; siblings join that port.
        let local = first.local_addr()?;
        let mut sockets = vec![first];
        for _ in 1..count {
            let fd = bound_reuseport(local, SOCK_DGRAM)?;
            // SAFETY: as above.
            sockets.push(unsafe { UdpSocket::from_raw_fd(fd.release()) });
        }
        Ok((sockets, local))
    }

    #[allow(unsafe_code)]
    pub(super) fn tcp_group(
        addr: SocketAddr,
        count: usize,
    ) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
        let mut listeners = Vec::with_capacity(count);
        let mut local = addr;
        for i in 0..count {
            let fd = bound_reuseport(local, SOCK_STREAM)?;
            // SAFETY: plain syscall on an owned, bound fd.
            if unsafe { listen(fd.0, LISTEN_BACKLOG) } != 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: bound+listening fd released exactly once.
            let listener = unsafe { TcpListener::from_raw_fd(fd.release()) };
            if i == 0 {
                local = listener.local_addr()?;
            }
            listeners.push(listener);
        }
        Ok((listeners, local))
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Non-Linux stub: report "unsupported" so the callers fall back to
    //! one `std`-bound socket per port.
    use std::io;
    use std::net::{SocketAddr, TcpListener, UdpSocket};

    pub(super) fn set_recv_buffer(_socket: &UdpSocket, _bytes: usize) -> io::Result<()> {
        Ok(())
    }

    pub(super) fn udp_group(
        _addr: SocketAddr,
        _count: usize,
    ) -> io::Result<(Vec<UdpSocket>, SocketAddr)> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT groups are only implemented on Linux",
        ))
    }

    pub(super) fn tcp_group(
        _addr: SocketAddr,
        _count: usize,
    ) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT groups are only implemented on Linux",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_socket_group_uses_std_bind() {
        let (sockets, local) = bind_udp_group("127.0.0.1:0".parse().unwrap(), 1).unwrap();
        assert_eq!(sockets.len(), 1);
        assert_ne!(local.port(), 0);
        assert_eq!(sockets[0].local_addr().unwrap(), local);
    }

    #[test]
    fn udp_group_shares_one_port() {
        let (sockets, local) = bind_udp_group("127.0.0.1:0".parse().unwrap(), 4).unwrap();
        assert_ne!(local.port(), 0);
        // On Linux this is a real 4-socket group; elsewhere it clamps to 1.
        assert!(sockets.len() == 4 || sockets.len() == 1);
        for socket in &sockets {
            assert_eq!(socket.local_addr().unwrap().port(), local.port());
        }
        // The group receives: a datagram sent to the port lands on
        // exactly one member.
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        sender.send_to(b"ping", local).unwrap();
        for socket in &sockets {
            socket
                .set_read_timeout(Some(std::time::Duration::from_millis(200)))
                .unwrap();
        }
        let mut buf = [0u8; 16];
        let received = sockets
            .iter()
            .filter_map(|s| s.recv_from(&mut buf).ok())
            .count();
        assert_eq!(received, 1);
    }

    #[test]
    fn tcp_group_accepts_on_one_port() {
        let (listeners, local) = bind_tcp_group("127.0.0.1:0".parse().unwrap(), 2).unwrap();
        assert_ne!(local.port(), 0);
        assert!(listeners.len() == 2 || listeners.len() == 1);
        let _client = std::net::TcpStream::connect(local).unwrap();
        for listener in &listeners {
            listener.set_nonblocking(true).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        let accepted = listeners.iter().filter(|l| l.accept().is_ok()).count();
        assert_eq!(accepted, 1);
    }
}
