//! Daemon configuration: listener addresses plus the correlator's own
//! `key = value` parameters, read from one config file.
//!
//! `flowdnsd` reads a single small file describing the whole deployment:
//! the ingest keys documented on [`IngestConfig`] are consumed here, and
//! every remaining line is handed to
//! [`CorrelatorConfig::from_config_text`], so worker counts, queue sizes,
//! store intervals and snapshot persistence use exactly the vocabulary
//! the offline tools already understand. The complete key reference —
//! every key with defaults and units — lives in `docs/CONFIG.md`.

use std::net::SocketAddr;
use std::time::Duration;

use flowdns_core::CorrelatorConfig;
use flowdns_types::FlowDnsError;

fn err(msg: impl Into<String>) -> FlowDnsError {
    FlowDnsError::Config(msg.into())
}

/// Configuration of the network listeners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestConfig {
    /// UDP socket address the NetFlow/IPFIX listener binds
    /// (`netflow_bind`, port 0 picks an ephemeral port).
    pub netflow_bind: SocketAddr,
    /// TCP socket address the DNS-feed listener binds (`dns_bind`).
    pub dns_bind: SocketAddr,
    /// Size of the NetFlow `SO_REUSEPORT` listener group
    /// (`netflow_listeners`): N sockets on one port, each with its own
    /// decode thread and per-exporter decoder shard. Clamped to 1 where
    /// `SO_REUSEPORT` is unavailable.
    pub netflow_listeners: usize,
    /// Size of the DNS-feed `SO_REUSEPORT` accept-loop group
    /// (`dns_listeners`).
    pub dns_listeners: usize,
    /// Upper bound of one receive drain (`recv_batch`): how many
    /// datagrams (UDP) or reads (TCP) a listener takes per blocking
    /// wake-up before pushing the decoded records as one batch. `1`
    /// disables draining — the per-datagram baseline the saturation
    /// harness measures against.
    pub recv_batch: usize,
    /// Retention cap of the shared receive-buffer pool (`buffer_pool`):
    /// idle buffers kept for reuse across listeners and connections.
    pub buffer_pool: usize,
    /// Kernel receive-buffer request per NetFlow socket
    /// (`recv_buffer_bytes`, `SO_RCVBUF`). A deep buffer absorbs
    /// exporter bursts and scheduling gaps that would otherwise drop
    /// datagrams before the listener is ever scheduled; the kernel
    /// silently clamps the request to `net.core.rmem_max`. `0` keeps
    /// the system default.
    pub recv_buffer_bytes: usize,
    /// Interval between periodic stats lines (`stats_interval`, seconds).
    pub stats_interval: Duration,
    /// TCP address of the embedded metrics endpoint (`metrics_addr`,
    /// port 0 picks an ephemeral port). Serves `/metrics` (Prometheus
    /// text exposition), `/healthz` and `/stats.json`; unset disables
    /// the server entirely.
    pub metrics_addr: Option<SocketAddr>,
    /// Output TSV path (`output`); correlated records are discarded after
    /// accounting when unset. With more than one write worker each shard
    /// writes its own file (`.w{shard}` suffix, or a `-w{shard}` filename
    /// tag when rotation is on).
    pub output: Option<String>,
    /// Rotation window of the output files
    /// (`output_rotate_interval`, seconds; `0` disables rotation and
    /// writes one file per shard). When set, `output` names the
    /// directory-plus-prefix of paper-style per-interval files:
    /// `output = /var/log/flowdns/corr` produces
    /// `/var/log/flowdns/corr-<window>.tsv`.
    pub output_rotate_interval: Option<Duration>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            netflow_bind: "127.0.0.1:9995".parse().expect("valid default addr"),
            dns_bind: "127.0.0.1:9953".parse().expect("valid default addr"),
            netflow_listeners: 1,
            dns_listeners: 1,
            recv_batch: 32,
            buffer_pool: 16,
            recv_buffer_bytes: 4 << 20,
            stats_interval: Duration::from_secs(10),
            metrics_addr: None,
            output: None,
            output_rotate_interval: None,
        }
    }
}

/// Everything `flowdnsd` needs: listeners plus correlator parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DaemonConfig {
    /// Listener configuration.
    pub ingest: IngestConfig,
    /// Correlation pipeline configuration.
    pub correlator: CorrelatorConfig,
}

impl DaemonConfig {
    /// Parse a daemon configuration from `key = value` text.
    ///
    /// Ingest keys (`netflow_bind`, `dns_bind`, `netflow_listeners`,
    /// `dns_listeners`, `recv_batch`, `buffer_pool`,
    /// `recv_buffer_bytes`, `stats_interval`, `metrics_addr`,
    /// `output`, `output_rotate_interval`) are consumed here; all other
    /// lines — including comments
    /// and blanks — are forwarded verbatim to
    /// [`CorrelatorConfig::from_config_text`], which keeps that parser's
    /// line numbers accurate in error messages.
    pub fn from_config_text(text: &str) -> Result<Self, FlowDnsError> {
        let mut ingest = IngestConfig::default();
        let mut correlator_text = String::with_capacity(text.len());
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let mut consumed = true;
            if let Some((key, value)) = line.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "netflow_bind" => ingest.netflow_bind = parse_addr(lineno, value)?,
                    "dns_bind" => ingest.dns_bind = parse_addr(lineno, value)?,
                    "netflow_listeners" => {
                        ingest.netflow_listeners = parse_count(lineno, key, value, 1)?;
                    }
                    "dns_listeners" => {
                        ingest.dns_listeners = parse_count(lineno, key, value, 1)?;
                    }
                    "recv_batch" => {
                        ingest.recv_batch = parse_count(lineno, key, value, 1)?;
                    }
                    "buffer_pool" => {
                        ingest.buffer_pool = parse_count(lineno, key, value, 0)?;
                    }
                    "recv_buffer_bytes" => {
                        ingest.recv_buffer_bytes = parse_count(lineno, key, value, 0)?;
                    }
                    "stats_interval" => {
                        let secs = value.parse::<u64>().map_err(|_| {
                            err(format!("line {}: '{value}' is not a number", lineno + 1))
                        })?;
                        if secs == 0 {
                            return Err(err(format!(
                                "line {}: stats_interval must be at least 1",
                                lineno + 1
                            )));
                        }
                        ingest.stats_interval = Duration::from_secs(secs);
                    }
                    "metrics_addr" => ingest.metrics_addr = Some(parse_addr(lineno, value)?),
                    "output" => ingest.output = Some(value.to_string()),
                    "output_rotate_interval" => {
                        let secs = value.parse::<u64>().map_err(|_| {
                            err(format!("line {}: '{value}' is not a number", lineno + 1))
                        })?;
                        ingest.output_rotate_interval =
                            (secs > 0).then(|| Duration::from_secs(secs));
                    }
                    _ => consumed = false,
                }
            } else {
                consumed = false;
            }
            if consumed {
                correlator_text.push('\n');
            } else {
                correlator_text.push_str(raw);
                correlator_text.push('\n');
            }
        }
        let correlator = CorrelatorConfig::from_config_text(&correlator_text)?;
        Ok(DaemonConfig { ingest, correlator })
    }

    /// Read and parse a configuration file.
    pub fn from_file(path: &str) -> Result<Self, FlowDnsError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read config file '{path}': {e}")))?;
        DaemonConfig::from_config_text(&text)
    }
}

fn parse_count(lineno: usize, key: &str, value: &str, min: usize) -> Result<usize, FlowDnsError> {
    let n = value
        .parse::<usize>()
        .map_err(|_| err(format!("line {}: '{value}' is not a number", lineno + 1)))?;
    if n < min {
        return Err(err(format!(
            "line {}: {key} must be at least {min}",
            lineno + 1
        )));
    }
    Ok(n)
}

fn parse_addr(lineno: usize, value: &str) -> Result<SocketAddr, FlowDnsError> {
    value.parse().map_err(|_| {
        err(format!(
            "line {}: '{value}' is not a socket address (expected ip:port)",
            lineno + 1
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_core::Variant;

    #[test]
    fn defaults_are_sane() {
        let cfg = DaemonConfig::default();
        assert_eq!(cfg.ingest.netflow_bind.port(), 9995);
        assert_eq!(cfg.ingest.dns_bind.port(), 9953);
        assert_eq!(cfg.ingest.stats_interval, Duration::from_secs(10));
        assert!(cfg.ingest.output.is_none());
        assert!(cfg.correlator.validate().is_ok());
    }

    #[test]
    fn mixed_config_splits_ingest_and_correlator_keys() {
        let text = "
# flowdnsd at the small ISP
netflow_bind = 127.0.0.1:0
dns_bind = 127.0.0.1:0
stats_interval = 2
output = /tmp/flowdns.tsv
output_rotate_interval = 60
routing_table = /tmp/rib.txt

lookup_workers = 8
variant = NoRotation
";
        let cfg = DaemonConfig::from_config_text(text).unwrap();
        assert_eq!(cfg.ingest.netflow_bind.port(), 0);
        assert_eq!(cfg.ingest.dns_bind.port(), 0);
        assert_eq!(cfg.ingest.stats_interval, Duration::from_secs(2));
        assert_eq!(cfg.ingest.output.as_deref(), Some("/tmp/flowdns.tsv"));
        assert_eq!(
            cfg.ingest.output_rotate_interval,
            Some(Duration::from_secs(60))
        );
        assert_eq!(cfg.correlator.lookup_workers, 8);
        assert_eq!(cfg.correlator.variant, Variant::NoRotation);
        // The routing table path lands on the correlator side.
        assert_eq!(
            cfg.correlator.routing_table.as_deref(),
            Some("/tmp/rib.txt")
        );
        // Untouched correlator keys keep their defaults.
        assert_eq!(cfg.correlator.num_split, 10);
    }

    #[test]
    fn listener_and_batch_keys_parse_and_validate() {
        let cfg = DaemonConfig::from_config_text(
            "netflow_listeners = 4\ndns_listeners = 2\nrecv_batch = 64\nbuffer_pool = 8\n\
             recv_buffer_bytes = 8388608\n",
        )
        .unwrap();
        assert_eq!(cfg.ingest.netflow_listeners, 4);
        assert_eq!(cfg.ingest.dns_listeners, 2);
        assert_eq!(cfg.ingest.recv_batch, 64);
        assert_eq!(cfg.ingest.buffer_pool, 8);
        assert_eq!(cfg.ingest.recv_buffer_bytes, 8 << 20);
        // Defaults: single listeners, batched receive on, deep rcvbuf.
        let defaults = IngestConfig::default();
        assert_eq!(defaults.netflow_listeners, 1);
        assert_eq!(defaults.dns_listeners, 1);
        assert_eq!(defaults.recv_batch, 32);
        assert_eq!(defaults.buffer_pool, 16);
        assert_eq!(defaults.recv_buffer_bytes, 4 << 20);
        // Zero listeners / zero recv_batch are configuration errors
        // (buffer_pool = 0 disables pooling; recv_buffer_bytes = 0
        // keeps the kernel's default socket depth).
        assert!(DaemonConfig::from_config_text("netflow_listeners = 0").is_err());
        assert!(DaemonConfig::from_config_text("dns_listeners = 0").is_err());
        assert!(DaemonConfig::from_config_text("recv_batch = 0").is_err());
        assert!(DaemonConfig::from_config_text("buffer_pool = 0").is_ok());
        assert!(DaemonConfig::from_config_text("recv_buffer_bytes = 0").is_ok());
        assert!(DaemonConfig::from_config_text("recv_batch = lots").is_err());
    }

    #[test]
    fn metrics_addr_parses_and_defaults_off() {
        assert!(IngestConfig::default().metrics_addr.is_none());
        let cfg = DaemonConfig::from_config_text("metrics_addr = 127.0.0.1:9100").unwrap();
        assert_eq!(
            cfg.ingest.metrics_addr,
            Some("127.0.0.1:9100".parse().unwrap())
        );
        let e = DaemonConfig::from_config_text("metrics_addr = nowhere")
            .unwrap_err()
            .to_string();
        assert!(e.contains("line 1"), "{e}");
    }

    #[test]
    fn zero_rotate_interval_disables_rotation() {
        let cfg = DaemonConfig::from_config_text("output_rotate_interval = 0").unwrap();
        assert_eq!(cfg.ingest.output_rotate_interval, None);
        assert!(DaemonConfig::from_config_text("output_rotate_interval = soon").is_err());
    }

    #[test]
    fn bad_values_are_rejected_with_line_numbers() {
        let e = DaemonConfig::from_config_text("netflow_bind = not-an-addr")
            .unwrap_err()
            .to_string();
        assert!(e.contains("line 1"), "{e}");
        assert!(DaemonConfig::from_config_text("stats_interval = zero").is_err());
        assert!(DaemonConfig::from_config_text("stats_interval = 0").is_err());
        // Unknown keys still error through the correlator parser, with the
        // original file's line number.
        let e = DaemonConfig::from_config_text("netflow_bind = 127.0.0.1:0\nbogus_key = 1")
            .unwrap_err()
            .to_string();
        assert!(e.contains("line 2"), "{e}");
        assert!(e.contains("bogus_key"), "{e}");
    }

    #[test]
    fn config_file_round_trip() {
        let dir = std::env::temp_dir().join("flowdns-ingest-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flowdnsd.conf");
        std::fs::write(&path, "dns_bind = 127.0.0.1:15353\nfillup_workers = 3\n").unwrap();
        let cfg = DaemonConfig::from_file(path.to_str().unwrap()).unwrap();
        assert_eq!(cfg.ingest.dns_bind.port(), 15353);
        assert_eq!(cfg.correlator.fillup_workers, 3);
        assert!(DaemonConfig::from_file("/nonexistent/flowdnsd.conf").is_err());
    }
}
