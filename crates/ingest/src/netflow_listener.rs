//! The UDP NetFlow/IPFIX listener group.
//!
//! # Drain loop
//!
//! Each listener thread owns one socket of a `SO_REUSEPORT` group (see
//! [`crate::reuseport`]; a group of one is just a plain socket) and runs
//! a batched receive loop instead of one syscall-decode-push round trip
//! per datagram:
//!
//! 1. block on `recv_from` (with a short timeout so the shutdown flag
//!    stays responsive);
//! 2. once the first datagram arrives, pull everything else the kernel
//!    has queued, up to `recv_batch` datagrams: on Linux with one real
//!    `recvmmsg(2)` call into the thread's pre-allocated receive ring
//!    ([`crate::mmsg`], one syscall per drain), elsewhere by
//!    flipping the socket non-blocking and receiving until `WouldBlock`
//!    (the portable per-datagram fallback);
//! 3. decode every drained datagram **during** the drain into one
//!    reusable `Vec<FlowRecord>` (the receive buffer is reused for the
//!    next datagram the moment its records are extracted);
//! 4. offer the whole batch to the correlator's LookUp queue with a
//!    single `push_flow_batch` — queue synchronization is paid once per
//!    drain, not per datagram, and the overflow remainder is a counted
//!    drop, never a blocked socket.
//!
//! With `recv_batch = 1` step 2 is skipped entirely and the loop is the
//! classic per-datagram baseline (that is what the saturation harness
//! measures the batched path against).
//!
//! # Ownership
//!
//! Decode state is **sharded per listener thread**: thread *i* owns
//! [`ListenerShard`] *i*, whose per-exporter [`ExporterDecoder`] map it
//! alone mutates (the mutex is only there so stats readers can walk the
//! map; it is never contended by another listener). `SO_REUSEPORT`
//! hashes by source address, so one exporter's datagrams consistently
//! land on one socket and its template state never migrates between
//! shards. A malformed datagram increments that exporter's own
//! `DecodeStats` and poisons nothing: the drain continues and the
//! already-decoded records of the same batch are still delivered.

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use flowdns_core::metrics::ExporterStats;
use flowdns_core::Correlator;
use flowdns_netflow::{DecodeStats, ExporterDecoder, ExtractorConfig};
use flowdns_stream::RateMeter;
use flowdns_types::FlowRecord;

use crate::buffer_pool::BufferPool;
use crate::mmsg::MmsgRing;

/// Largest datagram the listener accepts (64 KiB, the UDP maximum).
const MAX_DATAGRAM: usize = 65_535;
/// How long one blocking `recv_from` waits before re-checking shutdown.
const RECV_TIMEOUT: Duration = Duration::from_millis(50);

/// Per-listener-thread drain counters (all monotonic).
#[derive(Debug, Default)]
pub struct ListenerStats {
    /// Datagrams received by this listener.
    pub datagrams: AtomicU64,
    /// Drain rounds (each starts with one blocking receive).
    pub drains: AtomicU64,
    /// Batches offered to the LookUp queue (≤ `drains`; a drain of
    /// purely malformed datagrams pushes nothing).
    pub batch_pushes: AtomicU64,
    /// Largest number of datagrams taken in a single drain.
    pub max_drain: AtomicU64,
}

/// A point-in-time copy of one listener's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ListenerCounters {
    /// Datagrams received.
    pub datagrams: u64,
    /// Drain rounds completed.
    pub drains: u64,
    /// Batches pushed to the pipeline.
    pub batch_pushes: u64,
    /// Largest single drain, in datagrams.
    pub max_drain: u64,
}

impl ListenerCounters {
    /// Mean datagrams per drain round (1.0 = no batching happening).
    pub fn avg_drain(&self) -> f64 {
        if self.drains == 0 {
            0.0
        } else {
            self.datagrams as f64 / self.drains as f64
        }
    }
}

/// One listener thread's decode state: its exporters' decoders plus its
/// drain counters. The mutex exists for stats readers; the owning
/// listener thread is the only writer.
#[derive(Debug, Default)]
pub struct ListenerShard {
    decoders: Mutex<HashMap<SocketAddr, ExporterDecoder>>,
    /// Drain counters for this listener.
    pub stats: ListenerStats,
}

impl ListenerShard {
    fn counters(&self) -> ListenerCounters {
        ListenerCounters {
            datagrams: self.stats.datagrams.load(Ordering::Relaxed),
            drains: self.stats.drains.load(Ordering::Relaxed),
            batch_pushes: self.stats.batch_pushes.load(Ordering::Relaxed),
            max_drain: self.stats.max_drain.load(Ordering::Relaxed),
        }
    }
}

/// Sharded per-exporter decode state plus listener-level counters.
/// Malformed/unknown-template counts live inside each exporter's
/// [`DecodeStats`]; [`ExporterTable::totals`] folds them across shards.
#[derive(Debug)]
pub struct ExporterTable {
    shards: Vec<Arc<ListenerShard>>,
    /// Flow records dropped because the LookUp queue was full.
    pub queue_drops: AtomicU64,
}

impl Default for ExporterTable {
    fn default() -> Self {
        ExporterTable::new(1)
    }
}

impl ExporterTable {
    /// A table with one decoder shard per listener thread.
    pub fn new(listeners: usize) -> Self {
        ExporterTable {
            shards: (0..listeners.max(1))
                .map(|_| Arc::new(ListenerShard::default()))
                .collect(),
            queue_drops: AtomicU64::new(0),
        }
    }

    /// Number of listener shards.
    pub fn listeners(&self) -> usize {
        self.shards.len()
    }

    /// Per-listener drain counters, in listener order.
    pub fn per_listener(&self) -> Vec<ListenerCounters> {
        self.shards.iter().map(|s| s.counters()).collect()
    }

    /// Per-exporter counters merged across shards, sorted by exporter
    /// address. (An exporter normally lives in exactly one shard, but a
    /// group resize across restarts may leave its history split.)
    pub fn per_exporter(&self) -> Vec<ExporterStats> {
        let mut merged: HashMap<String, ExporterStats> = HashMap::new();
        for shard in &self.shards {
            for (addr, dec) in shard.decoders.lock().iter() {
                let entry = merged
                    .entry(addr.to_string())
                    .or_insert_with(|| ExporterStats {
                        exporter: addr.to_string(),
                        ..Default::default()
                    });
                entry.datagrams += dec.stats.datagrams;
                entry.flows += dec.stats.flows;
                entry.malformed += dec.stats.malformed;
                entry.unknown_template_drops += dec.stats.unknown_template_drops;
            }
        }
        let mut out: Vec<ExporterStats> = merged.into_values().collect();
        out.sort_by(|a, b| a.exporter.cmp(&b.exporter));
        out
    }

    /// Totals folded over every exporter in every shard.
    pub fn totals(&self) -> DecodeStats {
        let mut total = DecodeStats::default();
        for shard in &self.shards {
            for dec in shard.decoders.lock().values() {
                total.merge(&dec.stats);
            }
        }
        total
    }
}

/// Spawn one listener thread per socket. Thread *i* owns socket *i* and
/// decoder shard *i* of `table` (which must have been built with
/// `ExporterTable::new(sockets.len())`); each exits once `shutdown` is
/// set.
pub(crate) fn spawn_group(
    sockets: Vec<UdpSocket>,
    recv_batch: usize,
    pool: Arc<BufferPool>,
    correlator: Arc<Correlator>,
    shutdown: Arc<AtomicBool>,
    table: Arc<ExporterTable>,
    meter: Arc<Mutex<RateMeter>>,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    assert_eq!(
        sockets.len(),
        table.listeners(),
        "listener group and shard count must match"
    );
    let recv_batch = recv_batch.max(1);
    let mut handles = Vec::with_capacity(sockets.len());
    for (i, socket) in sockets.into_iter().enumerate() {
        socket.set_read_timeout(Some(RECV_TIMEOUT))?;
        let shard = Arc::clone(&table.shards[i]);
        let pool = Arc::clone(&pool);
        let correlator = Arc::clone(&correlator);
        let shutdown = Arc::clone(&shutdown);
        let table = Arc::clone(&table);
        let meter = Arc::clone(&meter);
        handles.push(
            std::thread::Builder::new()
                .name(format!("ingest-netflow-{i}"))
                .spawn(move || {
                    listener_loop(
                        &socket,
                        recv_batch,
                        &pool,
                        &correlator,
                        &shutdown,
                        &shard,
                        &table,
                        &meter,
                    )
                })?,
        );
    }
    Ok(handles)
}

/// Decode one datagram into `batch` under this shard's (uncontended)
/// decoder lock. Errors are already counted in the exporter's stats.
fn decode_into(shard: &ListenerShard, peer: SocketAddr, bytes: &[u8], batch: &mut Vec<FlowRecord>) {
    let mut decoders = shard.decoders.lock();
    let decoder = decoders
        .entry(peer)
        .or_insert_with(|| ExporterDecoder::new(ExtractorConfig::default()));
    let _ = decoder.decode_datagram_into(bytes, batch);
}

#[allow(clippy::too_many_arguments)]
fn listener_loop(
    socket: &UdpSocket,
    recv_batch: usize,
    pool: &Arc<BufferPool>,
    correlator: &Correlator,
    shutdown: &AtomicBool,
    shard: &ListenerShard,
    table: &ExporterTable,
    meter: &Mutex<RateMeter>,
) {
    let mut buf = pool.take(MAX_DATAGRAM);
    let mut batch: Vec<FlowRecord> = Vec::new();
    // Tracing off = no recorder = no per-flow work beyond this Option.
    let flight = correlator.flight_recorder().cloned();
    // Sharded pipeline: each listener thread owns its ingress router,
    // so routed pushes are lock-free SPSC ring writes.
    let mut router = correlator.ingress_router();
    // The recvmmsg ring holds the rest of a drain after the opening
    // blocking receive; `None` once the platform reports Unsupported.
    let mut ring = (recv_batch > 1).then(|| MmsgRing::new(recv_batch - 1, MAX_DATAGRAM));
    while !shutdown.load(Ordering::Acquire) {
        // Step 1: one blocking receive opens the drain round.
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(pair) => pair,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            // Transient network errors (e.g. ICMP port unreachable
            // bounced back on Linux) must not kill the listener.
            Err(_) => continue,
        };
        decode_into(shard, peer, &buf[..len], &mut batch);
        let mut drained = 1u64;
        // Step 2+3: drain whatever else is already queued in the kernel
        // buffer, decoding as we go.
        if let Some(r) = ring.as_mut() {
            // One recvmmsg syscall takes the rest of the round.
            match r.recv(socket) {
                Ok(count) => {
                    for i in 0..count {
                        let (bytes, peer) = r.datagram(i);
                        decode_into(shard, peer, bytes, &mut batch);
                    }
                    drained += count as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                    ring = None; // fall back permanently on this platform
                }
                Err(_) => {} // WouldBlock: kernel queue is empty
            }
        }
        if ring.is_none() && recv_batch > 1 && socket.set_nonblocking(true).is_ok() {
            // Portable fallback: per-datagram non-blocking receives.
            while (drained as usize) < recv_batch {
                match socket.recv_from(&mut buf) {
                    Ok((len, peer)) => {
                        drained += 1;
                        decode_into(shard, peer, &buf[..len], &mut batch);
                    }
                    Err(_) => break, // WouldBlock: kernel queue is empty
                }
            }
            // Back to blocking mode; the read timeout set at spawn still
            // applies (SO_RCVTIMEO is independent of O_NONBLOCK).
            let _ = socket.set_nonblocking(false);
        }
        // ordering: stats-only counters read by scrapes; momentary skew
        // between them is tolerated.
        shard.stats.datagrams.fetch_add(drained, Ordering::Relaxed);
        shard.stats.drains.fetch_add(1, Ordering::Relaxed);
        shard.stats.max_drain.fetch_max(drained, Ordering::Relaxed);
        if batch.is_empty() {
            continue; // purely malformed / unknown-template drain
        }
        if let Some(flight) = &flight {
            // Sampled flows pick up their trace token here, right after
            // decode; the non-sampled majority costs one fetch_add each.
            for flow in &mut batch {
                flow.trace = flight.maybe_start();
            }
        }
        {
            let mut meter = meter.lock();
            for flow in &batch {
                meter.record(flow.ts, flow.bytes);
            }
            // Wall-clock activity is per drain round, not per record —
            // it feeds the `last_activity_seconds` gauge.
            meter.mark_activity();
        }
        // Step 4: the whole drain in one queue offer; the overflow
        // remainder is counted as dropped. `drain(..)` keeps the batch
        // vector's capacity for the next round.
        let offered = batch.len();
        // ordering: stats-only counter.
        shard.stats.batch_pushes.fetch_add(1, Ordering::Relaxed);
        if let Some(flight) = &flight {
            for flow in &batch {
                if let Some(id) = flow.trace {
                    flight.stamp_enqueue(id);
                }
            }
        }
        let accepted = match router.as_mut() {
            Some(router) => router.route_flow_batch(batch.drain(..)),
            None => correlator.push_flow_batch(batch.drain(..)),
        };
        if accepted < offered {
            // ordering: stats-only drop counter.
            table
                .queue_drops
                .fetch_add((offered - accepted) as u64, Ordering::Relaxed);
        }
    }
}
