//! The UDP NetFlow/IPFIX listener.
//!
//! One socket receives export datagrams from every exporter; the listener
//! demultiplexes them **by peer address** and keeps one
//! [`ExporterDecoder`] — and therefore one per-source template registry —
//! per exporter, exactly like the per-source decode state of production
//! collectors. Each decoded datagram's flow records go onto the
//! correlator's LookUp queue as one batch (`push_flow_batch`), so queue
//! synchronization is paid per datagram, not per record; a full queue is
//! a counted drop, never a blocked socket.

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use flowdns_core::metrics::ExporterStats;
use flowdns_core::Correlator;
use flowdns_netflow::{DecodeStats, ExporterDecoder, ExtractorConfig};
use flowdns_stream::RateMeter;

/// Largest datagram the listener accepts (64 KiB, the UDP maximum).
const MAX_DATAGRAM: usize = 65_535;
/// How long one `recv_from` waits before re-checking the shutdown flag.
const RECV_TIMEOUT: Duration = Duration::from_millis(50);

/// Shared per-exporter decode state plus listener-level counters.
/// Malformed/unknown-template counts live inside each exporter's
/// [`DecodeStats`]; [`ExporterTable::totals`] folds them.
#[derive(Debug, Default)]
pub struct ExporterTable {
    decoders: Mutex<HashMap<SocketAddr, ExporterDecoder>>,
    /// Flow records dropped because the LookUp queue was full.
    pub queue_drops: AtomicU64,
}

impl ExporterTable {
    /// Per-exporter counters, sorted by exporter address.
    pub fn per_exporter(&self) -> Vec<ExporterStats> {
        let mut out: Vec<ExporterStats> = self
            .decoders
            .lock()
            .iter()
            .map(|(addr, dec)| ExporterStats {
                exporter: addr.to_string(),
                datagrams: dec.stats.datagrams,
                flows: dec.stats.flows,
                malformed: dec.stats.malformed,
                unknown_template_drops: dec.stats.unknown_template_drops,
            })
            .collect();
        out.sort_by(|a, b| a.exporter.cmp(&b.exporter));
        out
    }

    /// Totals folded over every exporter.
    pub fn totals(&self) -> DecodeStats {
        let mut total = DecodeStats::default();
        for dec in self.decoders.lock().values() {
            total.merge(&dec.stats);
        }
        total
    }
}

/// Spawn the UDP listener thread. It owns the socket and exits once
/// `shutdown` is set.
pub(crate) fn spawn(
    socket: UdpSocket,
    correlator: Arc<Correlator>,
    shutdown: Arc<AtomicBool>,
    table: Arc<ExporterTable>,
    meter: Arc<Mutex<RateMeter>>,
) -> std::io::Result<JoinHandle<()>> {
    socket.set_read_timeout(Some(RECV_TIMEOUT))?;
    std::thread::Builder::new()
        .name("ingest-netflow".into())
        .spawn(move || {
            let mut buf = vec![0u8; MAX_DATAGRAM];
            while !shutdown.load(Ordering::Acquire) {
                let (len, peer) = match socket.recv_from(&mut buf) {
                    Ok(pair) => pair,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    // Transient network errors (e.g. ICMP port unreachable
                    // bounced back on Linux) must not kill the listener.
                    Err(_) => continue,
                };
                let mut decoders = table.decoders.lock();
                let decoder = decoders
                    .entry(peer)
                    .or_insert_with(|| ExporterDecoder::new(ExtractorConfig::default()));
                match decoder.decode_datagram(&buf[..len]) {
                    Ok(flows) => {
                        drop(decoders);
                        {
                            let mut meter = meter.lock();
                            for flow in &flows {
                                meter.record(flow.ts, flow.bytes);
                            }
                        }
                        // One queue offer per datagram, not per flow: the
                        // whole decoded batch goes in together and the
                        // overflow remainder is counted as dropped.
                        let offered = flows.len();
                        let accepted = correlator.push_flow_batch(flows);
                        if accepted < offered {
                            table
                                .queue_drops
                                .fetch_add((offered - accepted) as u64, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        // Already counted in the exporter's DecodeStats.
                    }
                }
            }
        })
}
