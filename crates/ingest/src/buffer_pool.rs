//! A shared pool of reusable receive buffers.
//!
//! Listener threads and per-connection handlers used to allocate their
//! socket buffers on spawn and drop them on exit, so a busy DNS feed
//! (resolvers reconnect constantly) and every listener restart paid
//! allocation churn on the hot path. The [`BufferPool`] keeps returned
//! buffers around instead: [`BufferPool::take`] hands out a
//! [`PooledBuf`] — a plain `Vec<u8>` behind `Deref` — and dropping the
//! `PooledBuf` returns the allocation to the pool (up to the configured
//! retention cap, the `buffer_pool` config key). The pool never zeroes
//! recycled memory beyond the requested length, so a take is O(1) after
//! warm-up.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Takes served from a recycled buffer.
    pub hits: u64,
    /// Takes that had to allocate.
    pub misses: u64,
    /// Buffers currently parked in the pool.
    pub pooled: u64,
}

/// A bounded pool of `Vec<u8>` buffers shared by every listener.
#[derive(Debug)]
pub struct BufferPool {
    parked: Mutex<Vec<Vec<u8>>>,
    /// Retention cap: buffers returned beyond this are simply freed.
    max_parked: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool retaining at most `max_parked` idle buffers.
    pub fn new(max_parked: usize) -> Arc<Self> {
        Arc::new(BufferPool {
            parked: Mutex::new(Vec::new()),
            max_parked,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Take a buffer of exactly `len` readable bytes (recycled capacity
    /// when available, freshly allocated otherwise).
    pub fn take(self: &Arc<Self>, len: usize) -> PooledBuf {
        let recycled = self.parked.lock().pop();
        let mut buf = match recycled {
            Some(buf) => {
                // ordering: stats-only hit/miss counters; the buffer
                // itself is handed over by the mutex above.
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                // ordering: see the hit counter above.
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(len)
            }
        };
        buf.resize(len, 0);
        PooledBuf {
            buf,
            pool: Arc::clone(self),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pooled: self.parked.lock().len() as u64,
        }
    }

    fn put_back(&self, buf: Vec<u8>) {
        let mut parked = self.parked.lock();
        if parked.len() < self.max_parked {
            parked.push(buf);
        }
    }
}

/// A buffer borrowed from a [`BufferPool`]; returns its allocation to
/// the pool on drop.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.put_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_up_to_the_cap() {
        let pool = BufferPool::new(2);
        let a = pool.take(100);
        let b = pool.take(200);
        let c = pool.take(300);
        assert_eq!((a.len(), b.len(), c.len()), (100, 200, 300));
        assert_eq!(pool.stats().misses, 3);
        drop(a);
        drop(b);
        drop(c); // beyond the cap: freed, not parked
        assert_eq!(pool.stats().pooled, 2);
        let d = pool.take(64);
        assert_eq!(d.len(), 64);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.pooled, 1);
    }

    #[test]
    fn recycled_buffers_are_resized_for_the_new_take() {
        let pool = BufferPool::new(4);
        {
            let mut big = pool.take(1000);
            big[999] = 42;
        }
        let small = pool.take(10);
        assert_eq!(small.len(), 10);
        let grown = pool.take(50);
        assert_eq!(grown.len(), 50);
        // Freshly exposed bytes are zeroed by `resize`.
        assert!(grown.iter().all(|&b| b == 0));
    }

    #[test]
    fn shared_across_threads() {
        let pool = BufferPool::new(8);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let buf = pool.take(4096);
                        assert_eq!(buf.len(), 4096);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert!(stats.pooled <= 8);
    }
}
