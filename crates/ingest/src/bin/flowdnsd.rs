//! `flowdnsd` — the FlowDNS network daemon.
//!
//! Reads a small `key = value` config file, binds the NetFlow UDP and
//! DNS-feed TCP listeners, runs the correlation pipeline, and prints
//! periodic stats to stderr. Shuts down cleanly — listeners joined,
//! queues drained, final report printed — when any of these happens:
//!
//! * stdin reaches EOF or carries a `quit`/`stop` line (the portable
//!   "shutdown signal" of this dependency-free build: run it under a
//!   supervisor with a pipe on stdin and close the pipe to stop it),
//! * `--duration <secs>` elapses.
//!
//! ```text
//! flowdnsd --config examples/flowdnsd.conf [--duration 30]
//! ```

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowdns_ingest::{DaemonConfig, IngestRuntime};

fn usage() -> ! {
    eprintln!("usage: flowdnsd [--config <path>] [--duration <secs>]");
    std::process::exit(2);
}

fn main() {
    let mut config_path: Option<String> = None;
    let mut duration: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" | "-c" => match args.next() {
                Some(path) => config_path = Some(path),
                None => usage(),
            },
            "--duration" | "-d" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) => duration = Some(Duration::from_secs(secs)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("flowdnsd: unknown argument '{other}'");
                usage();
            }
        }
    }

    let config = match &config_path {
        Some(path) => match DaemonConfig::from_file(path) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("flowdnsd: {e}");
                std::process::exit(1);
            }
        },
        None => DaemonConfig::default(),
    };

    let runtime = match IngestRuntime::start(&config) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("flowdnsd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let startup = runtime.snapshot();
    eprintln!(
        "flowdnsd: netflow/udp on {} ({} listener{}), dns-feed/tcp on {} ({} listener{}) \
         ({} fillup + {} lookup + {} write workers, recv_batch {})",
        runtime.netflow_addr(),
        startup.netflow_listeners.len(),
        if startup.netflow_listeners.len() == 1 {
            ""
        } else {
            "s"
        },
        runtime.dns_addr(),
        startup.dns_listeners,
        if startup.dns_listeners == 1 { "" } else { "s" },
        config.correlator.fillup_workers,
        config.correlator.lookup_workers,
        config.correlator.write_workers,
        config.ingest.recv_batch,
    );
    if config.ingest.netflow_listeners > startup.netflow_listeners.len()
        || config.ingest.dns_listeners > startup.dns_listeners
    {
        eprintln!(
            "flowdnsd: SO_REUSEPORT unavailable — listener groups clamped to a single socket"
        );
    }
    if let Some(view) = runtime.correlator().asn_view() {
        eprintln!(
            "flowdnsd: routing table loaded ({} prefixes) — stamping src/dst origin AS",
            view.snapshot().len()
        );
    }
    if let (Some(output), Some(window)) =
        (&config.ingest.output, config.ingest.output_rotate_interval)
    {
        let (dir, prefix) = flowdns_ingest::runtime::rotating_output_parts(output);
        eprintln!(
            "flowdnsd: rotating output files {}-<window>.tsv every {} s",
            dir.join(prefix).display(),
            window.as_secs()
        );
    }
    if let Some(path) = &config.correlator.snapshot_path {
        if runtime.correlator().store().is_exact_ttl() {
            // Be honest with the operator: the exact-TTL strawman store
            // has nothing durable to write, so a configured path gives
            // no restart protection at all.
            eprintln!(
                "flowdnsd: snapshot_path is set but the ExactTTL store variant \
                 has no durable state — snapshots are disabled"
            );
        } else {
            let stats = runtime.correlator().snapshot_stats();
            if stats.warm_started() {
                eprintln!(
                    "flowdnsd: warm start — {} store entries restored from {path}",
                    stats.warm_start_entries
                );
            } else {
                match &stats.last_error {
                    // A torn/corrupt snapshot is rejected by its checksum
                    // and the daemon serves cold rather than refusing to
                    // start.
                    Some(error) => eprintln!("flowdnsd: cold start — {error}"),
                    None => eprintln!("flowdnsd: cold start — no snapshot at {path} yet"),
                }
            }
            if config.correlator.snapshot_interval.is_zero() {
                eprintln!("flowdnsd: snapshotting store to {path} at shutdown only");
            } else {
                eprintln!(
                    "flowdnsd: snapshotting store to {path} every {} s",
                    config.correlator.snapshot_interval.as_secs()
                );
            }
        }
    }

    // Shutdown watcher: stdin EOF or an explicit quit/stop line. The
    // thread is detached on purpose — if the duration path wins, a thread
    // blocked in `read_line` must not keep the process alive, and it
    // cannot, because the process exits from main.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("flowdnsd-stdin".into())
            .spawn(move || {
                let stdin = std::io::stdin();
                let mut line = String::new();
                loop {
                    line.clear();
                    match stdin.lock().read_line(&mut line) {
                        Ok(0) => break, // EOF: shut down
                        Ok(_) => {
                            let cmd = line.trim();
                            if cmd.eq_ignore_ascii_case("quit") || cmd.eq_ignore_ascii_case("stop")
                            {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                stop.store(true, Ordering::Release);
            })
            .expect("spawn stdin watcher");
    }

    let started = Instant::now();
    let mut last_stats = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if stop.load(Ordering::Acquire) {
            eprintln!("flowdnsd: shutdown signal received");
            break;
        }
        if let Some(limit) = duration {
            if started.elapsed() >= limit {
                eprintln!("flowdnsd: duration elapsed");
                break;
            }
        }
        if last_stats.elapsed() >= config.ingest.stats_interval {
            last_stats = Instant::now();
            // One snapshot carries ingest totals AND live pipeline metrics
            // (worker stats, drop counters, queue depths, store memory).
            let snap = runtime.snapshot();
            let (fq, lq, wq) = snap.queue_depths;
            let pipeline = &snap.pipeline;
            eprintln!(
                "flowdnsd: {} | rates: {:.0} flows/s, {:.0} dns/s (sim) | queues fillup={fq} lookup={lq} write={wq}",
                snap.summary.summary_line(),
                snap.netflow_meter.rate_per_sec(),
                snap.dns_meter.rate_per_sec(),
            );
            eprintln!(
                "flowdnsd: pipeline: {} written ({:.1}% correlated), \
                 {} dns stored, loss dns={:.2}% flows={:.2}%, store {} entries / {:.3} GB",
                pipeline.write.records_written,
                pipeline.write.volumes.correlation_rate_pct(),
                pipeline.fillup.addresses_stored + pipeline.fillup.cnames_stored,
                pipeline.dns_loss_pct(),
                pipeline.flow_loss_pct(),
                pipeline.peak_memory.entries,
                pipeline.peak_memory.total_gb(),
            );
            // Per-listener drain efficiency: how many datagrams each
            // NetFlow listener takes per socket wake-up, plus buffer-pool
            // reuse. avg≈1 means the batched path is idling (or
            // recv_batch = 1).
            let drains: Vec<String> = snap
                .netflow_listeners
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    format!(
                        "#{i} {} dgrams ({:.1}/drain, max {})",
                        l.datagrams,
                        l.avg_drain(),
                        l.max_drain
                    )
                })
                .collect();
            eprintln!(
                "flowdnsd: listeners: netflow [{}] | dns {} accept loop{} | pool {} hits / {} misses",
                drains.join(", "),
                snap.dns_listeners,
                if snap.dns_listeners == 1 { "" } else { "s" },
                snap.buffer_pool.hits,
                snap.buffer_pool.misses,
            );
            if config.correlator.snapshot_path.is_some()
                && !runtime.correlator().store().is_exact_ttl()
            {
                eprintln!("flowdnsd: snapshots: {}", pipeline.snapshot.summary_line());
                if let Some(error) = &pipeline.snapshot.last_error {
                    eprintln!("flowdnsd: snapshot error: {error}");
                }
            }
        }
    }

    match runtime.shutdown() {
        Ok(report) => {
            eprintln!("flowdnsd: final report: {}", report.summary());
        }
        Err(e) => {
            eprintln!("flowdnsd: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}
