//! `flowdnsd` — the FlowDNS network daemon.
//!
//! Reads a small `key = value` config file, binds the NetFlow UDP and
//! DNS-feed TCP listeners, runs the correlation pipeline, and prints
//! periodic stats to stderr. Shuts down cleanly — listeners joined,
//! queues drained, final report printed — when any of these happens:
//!
//! * stdin reaches EOF or carries a `quit`/`stop` line (the portable
//!   "shutdown signal" of this dependency-free build: run it under a
//!   supervisor with a pipe on stdin and close the pipe to stop it),
//! * `--duration <secs>` elapses.
//!
//! ```text
//! flowdnsd --config examples/flowdnsd.conf [--duration 30]
//! ```

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowdns_ingest::{DaemonConfig, IngestRuntime};

/// Drops as a percentage of records seen (0 when nothing was seen).
fn loss_pct(drops: u64, seen: u64) -> f64 {
    if seen == 0 {
        0.0
    } else {
        drops as f64 / seen as f64 * 100.0
    }
}

/// Render a `last_activity_seconds` gauge for the stats line.
fn idle_text(secs: Option<f64>) -> String {
    match secs {
        Some(s) if s >= 0.0 => format!("{s:.0}s"),
        _ => "-".to_string(),
    }
}

fn usage() -> ! {
    eprintln!("usage: flowdnsd [--config <path>] [--duration <secs>]");
    std::process::exit(2);
}

fn main() {
    let mut config_path: Option<String> = None;
    let mut duration: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" | "-c" => match args.next() {
                Some(path) => config_path = Some(path),
                None => usage(),
            },
            "--duration" | "-d" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) => duration = Some(Duration::from_secs(secs)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("flowdnsd: unknown argument '{other}'");
                usage();
            }
        }
    }

    let config = match &config_path {
        Some(path) => match DaemonConfig::from_file(path) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("flowdnsd: {e}");
                std::process::exit(1);
            }
        },
        None => DaemonConfig::default(),
    };

    let runtime = match IngestRuntime::start(&config) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("flowdnsd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let startup = runtime.snapshot();
    eprintln!(
        "flowdnsd: netflow/udp on {} ({} listener{}), dns-feed/tcp on {} ({} listener{}) \
         ({} fillup + {} lookup + {} write workers, recv_batch {})",
        runtime.netflow_addr(),
        startup.netflow_listeners.len(),
        if startup.netflow_listeners.len() == 1 {
            ""
        } else {
            "s"
        },
        runtime.dns_addr(),
        startup.dns_listeners,
        if startup.dns_listeners == 1 { "" } else { "s" },
        config.correlator.fillup_workers,
        config.correlator.lookup_workers,
        config.correlator.write_workers,
        config.ingest.recv_batch,
    );
    if config.ingest.netflow_listeners > startup.netflow_listeners.len()
        || config.ingest.dns_listeners > startup.dns_listeners
    {
        eprintln!(
            "flowdnsd: SO_REUSEPORT unavailable — listener groups clamped to a single socket"
        );
    }
    if let Some(addr) = runtime.metrics_addr() {
        eprintln!(
            "flowdnsd: metrics endpoint on http://{addr}/ — /metrics (Prometheus), \
             /healthz, /stats.json"
        );
    }
    if let Some(flight) = runtime.correlator().flight_recorder() {
        eprintln!(
            "flowdnsd: flight recorder tracing 1-in-{} flows to {}",
            flight.sample_every(),
            flight.path().display()
        );
    }
    if let Some(view) = runtime.correlator().asn_view() {
        eprintln!(
            "flowdnsd: routing table loaded ({} prefixes) — stamping src/dst origin AS",
            view.snapshot().len()
        );
    }
    if let (Some(output), Some(window)) =
        (&config.ingest.output, config.ingest.output_rotate_interval)
    {
        let (dir, prefix) = flowdns_ingest::runtime::rotating_output_parts(output);
        eprintln!(
            "flowdnsd: rotating output files {}-<window>.tsv every {} s",
            dir.join(prefix).display(),
            window.as_secs()
        );
    }
    if let Some(path) = &config.correlator.snapshot_path {
        if runtime.correlator().is_exact_ttl() {
            // Be honest with the operator: the exact-TTL strawman store
            // has nothing durable to write, so a configured path gives
            // no restart protection at all.
            eprintln!(
                "flowdnsd: snapshot_path is set but the ExactTTL store variant \
                 has no durable state — snapshots are disabled"
            );
        } else {
            let stats = runtime.correlator().snapshot_stats();
            if stats.warm_started() {
                eprintln!(
                    "flowdnsd: warm start — {} store entries restored from {path}",
                    stats.warm_start_entries
                );
            } else {
                match &stats.last_error {
                    // A torn/corrupt snapshot is rejected by its checksum
                    // and the daemon serves cold rather than refusing to
                    // start.
                    Some(error) => eprintln!("flowdnsd: cold start — {error}"),
                    None => eprintln!("flowdnsd: cold start — no snapshot at {path} yet"),
                }
            }
            if config.correlator.snapshot_interval.is_zero() {
                eprintln!("flowdnsd: snapshotting store to {path} at shutdown only");
            } else {
                eprintln!(
                    "flowdnsd: snapshotting store to {path} every {} s",
                    config.correlator.snapshot_interval.as_secs()
                );
            }
        }
    }

    // Shutdown watcher: stdin EOF or an explicit quit/stop line. The
    // thread is detached on purpose — if the duration path wins, a thread
    // blocked in `read_line` must not keep the process alive, and it
    // cannot, because the process exits from main.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        let spawned = std::thread::Builder::new()
            .name("flowdnsd-stdin".into())
            .spawn(move || {
                let stdin = std::io::stdin();
                let mut line = String::new();
                loop {
                    line.clear();
                    match stdin.lock().read_line(&mut line) {
                        Ok(0) => break, // EOF: shut down
                        Ok(_) => {
                            let cmd = line.trim();
                            if cmd.eq_ignore_ascii_case("quit") || cmd.eq_ignore_ascii_case("stop")
                            {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                stop.store(true, Ordering::Release);
            });
        // The watcher is a convenience; without it the duration limit
        // and process signals still stop the daemon.
        if let Err(e) = spawned {
            eprintln!("flowdnsd: stdin watcher not started ({e}); use --duration or signals");
        }
    }

    let started = Instant::now();
    let mut last_stats = Instant::now();
    // Previous-tick meter totals: live rates are per-tick counter deltas
    // over the wall clock, so an idle feed honestly reads 0 flows/s (a
    // meter's lifetime average never decays, however long the silence).
    let mut prev_netflow = 0u64;
    let mut prev_dns = 0u64;
    let netflow_listener_count = startup.netflow_listeners.len();
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if stop.load(Ordering::Acquire) {
            eprintln!("flowdnsd: shutdown signal received");
            break;
        }
        if let Some(limit) = duration {
            if started.elapsed() >= limit {
                eprintln!("flowdnsd: duration elapsed");
                break;
            }
        }
        if last_stats.elapsed() >= config.ingest.stats_interval {
            let tick_secs = last_stats.elapsed().as_secs_f64();
            last_stats = Instant::now();
            // Every number below reads the metrics registry — the same
            // series `/metrics` exports — so this log and a scraper can
            // never disagree about what the daemon did.
            let reg = runtime.registry().snapshot();
            let netflow_records =
                reg.counter_with("flowdns_ingest_records_total", "feed", "netflow");
            let dns_records = reg.counter_with("flowdns_ingest_records_total", "feed", "dns");
            let flow_rate = netflow_records.saturating_sub(prev_netflow) as f64 / tick_secs;
            let dns_rate = dns_records.saturating_sub(prev_dns) as f64 / tick_secs;
            prev_netflow = netflow_records;
            prev_dns = dns_records;
            eprintln!(
                "flowdnsd: ingest: netflow {} datagrams -> {} flows ({} malformed, \
                 {} no-template, {} queue-dropped); dns {} records over {} connections \
                 ({} malformed streams, {} queue-dropped)",
                reg.counter("flowdns_ingest_netflow_datagrams_total"),
                reg.counter("flowdns_ingest_netflow_flows_total"),
                reg.counter("flowdns_ingest_netflow_malformed_total"),
                reg.counter("flowdns_ingest_netflow_unknown_template_drops_total"),
                reg.counter("flowdns_ingest_netflow_queue_dropped_total"),
                reg.counter("flowdns_ingest_dns_records_total"),
                reg.counter("flowdns_ingest_dns_connections_total"),
                reg.counter("flowdns_ingest_dns_malformed_streams_total"),
                reg.counter("flowdns_ingest_dns_queue_dropped_total"),
            );
            eprintln!(
                "flowdnsd: rates: {flow_rate:.0} flows/s, {dns_rate:.0} dns/s (last {tick_secs:.0}s) \
                 | queues fillup={:.0} lookup={:.0} write={:.0} | idle netflow={} dns={}",
                reg.gauge_with("flowdns_queue_depth", "queue", "fillup").unwrap_or(0.0),
                reg.gauge_with("flowdns_queue_depth", "queue", "lookup").unwrap_or(0.0),
                reg.gauge_sum("flowdns_egress_queue_depth"),
                idle_text(reg.gauge_with("flowdns_ingest_last_activity_seconds", "feed", "netflow")),
                idle_text(reg.gauge_with("flowdns_ingest_last_activity_seconds", "feed", "dns")),
            );
            let egress_bytes = reg.counter("flowdns_egress_bytes_total");
            let correlated_bytes = reg.counter("flowdns_egress_correlated_bytes_total");
            let corr_pct = if egress_bytes == 0 {
                0.0
            } else {
                correlated_bytes as f64 / egress_bytes as f64 * 100.0
            };
            let dns_stored = reg.counter_with("flowdns_fillup_records_total", "kind", "addresses")
                + reg.counter_with("flowdns_fillup_records_total", "kind", "cnames");
            let dns_drops = reg.counter_with("flowdns_queue_dropped_total", "queue", "fillup")
                + reg.counter("flowdns_ingest_dns_queue_dropped_total");
            let flow_drops = reg.counter_with("flowdns_queue_dropped_total", "queue", "lookup")
                + reg.counter("flowdns_ingest_netflow_queue_dropped_total")
                + reg.counter("flowdns_egress_queue_dropped_total");
            eprintln!(
                "flowdnsd: pipeline: {} written ({corr_pct:.1}% correlated), {dns_stored} dns \
                 stored, loss dns={:.2}% flows={:.2}%, store {} entries / {:.3} GB",
                reg.counter("flowdns_egress_records_total"),
                loss_pct(dns_drops, reg.counter("flowdns_ingest_dns_records_total")),
                loss_pct(
                    flow_drops,
                    reg.counter("flowdns_ingest_netflow_flows_total")
                ),
                reg.gauge("flowdns_store_entries").unwrap_or(0.0) as u64,
                reg.gauge("flowdns_store_payload_bytes").unwrap_or(0.0) / 1e9,
            );
            // Per-listener drain efficiency: how many datagrams each
            // NetFlow listener takes per socket wake-up, plus buffer-pool
            // reuse. avg≈1 means the batched path is idling (or
            // recv_batch = 1).
            let drains: Vec<String> = (0..netflow_listener_count)
                .map(|i| {
                    let listener = i.to_string();
                    let dgrams = reg.counter_with(
                        "flowdns_ingest_netflow_datagrams_total",
                        "listener",
                        &listener,
                    );
                    let drains = reg.counter_with(
                        "flowdns_ingest_netflow_drains_total",
                        "listener",
                        &listener,
                    );
                    let avg = if drains == 0 {
                        0.0
                    } else {
                        dgrams as f64 / drains as f64
                    };
                    let max = reg
                        .gauge_with("flowdns_ingest_netflow_max_drain", "listener", &listener)
                        .unwrap_or(0.0);
                    format!("#{i} {dgrams} dgrams ({avg:.1}/drain, max {max:.0})")
                })
                .collect();
            eprintln!(
                "flowdnsd: listeners: netflow [{}] | dns {} accept loop{} | pool {} hits / {} misses",
                drains.join(", "),
                startup.dns_listeners,
                if startup.dns_listeners == 1 { "" } else { "s" },
                reg.counter("flowdns_ingest_buffer_pool_hits_total"),
                reg.counter("flowdns_ingest_buffer_pool_misses_total"),
            );
            if config.correlator.snapshot_path.is_some() && !runtime.correlator().is_exact_ttl() {
                let age = reg
                    .gauge("flowdns_snapshot_last_write_age_seconds")
                    .unwrap_or(-1.0);
                let age = if age < 0.0 {
                    "never".to_string()
                } else {
                    format!("{age:.0}s")
                };
                eprintln!(
                    "flowdnsd: snapshots: {} written, last {} B, age {age}",
                    reg.counter("flowdns_snapshots_written_total"),
                    reg.gauge("flowdns_snapshot_last_bytes").unwrap_or(0.0) as u64,
                );
                if let Some(error) = &runtime.correlator().snapshot_stats().last_error {
                    eprintln!("flowdnsd: snapshot error: {error}");
                }
            }
            if runtime.correlator().flight_recorder().is_some() {
                eprintln!(
                    "flowdnsd: traces: {} spans emitted, {} dropped",
                    reg.counter("flowdns_trace_spans_total"),
                    reg.counter("flowdns_trace_spans_dropped_total"),
                );
            }
        }
    }

    match runtime.shutdown() {
        Ok(report) => {
            eprintln!("flowdnsd: final report: {}", report.summary());
        }
        Err(e) => {
            eprintln!("flowdnsd: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}
