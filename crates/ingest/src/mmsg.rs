//! Batched datagram I/O via `recvmmsg(2)`/`sendmmsg(2)`.
//!
//! The drain loop in [`crate::netflow_listener`] wants to pull every
//! datagram the kernel has queued in as few syscalls as possible: at
//! high packet rates the per-`recvfrom` syscall cost *is* the ingest
//! hot path's dominant term (the decode itself is a few dozen
//! nanoseconds per record). `recvmmsg(2)` receives up to a whole
//! drain's worth of datagrams — payloads *and* source addresses — in
//! one syscall, so a 32-deep drain costs 1 syscall instead of 32 plus
//! the two `fcntl` mode flips the portable fallback needs. The
//! transmit-side twin, [`send_burst`], exists for load generators that
//! must out-pace the listener they are measuring.
//!
//! As with [`crate::reuseport`], this build links no libc crate, so the
//! syscall and its argument structures are declared here, gated to
//! Linux, and kept behind a safe interface: the crate-private
//! `MmsgRing` owns all the receive buffers, address storage, and
//! header arrays for a listener thread, and its `recv` hands back
//! parsed `(payload, peer)`
//! views. On other platforms `recv` reports `Unsupported` and the
//! listener quietly stays on its per-datagram `recv_from` drain —
//! behaviour is identical, only the syscall amortization is lost.

use std::io;
use std::net::SocketAddr;
use std::net::UdpSocket;

/// Pre-allocated receive state for one listener thread: `slots`
/// datagram buffers of `buf_len` bytes each, plus the per-message
/// address storage and header arrays `recvmmsg(2)` scatters into.
pub(crate) struct MmsgRing {
    inner: sys::Ring,
}

impl MmsgRing {
    /// Allocate a ring. `slots` bounds how many datagrams one [`recv`]
    /// call can return (the drain depth); `buf_len` must be the largest
    /// datagram the protocol allows, or tails would be truncated.
    ///
    /// [`recv`]: MmsgRing::recv
    pub(crate) fn new(slots: usize, buf_len: usize) -> Self {
        MmsgRing {
            inner: sys::Ring::new(slots.max(1), buf_len),
        }
    }

    /// Non-blockingly receive up to `slots` queued datagrams from
    /// `socket` in one syscall. Returns the number received; the
    /// payload/peer of each is then readable via [`MmsgRing::datagram`].
    /// `WouldBlock` means the socket queue is empty; `Unsupported`
    /// means this platform has no `recvmmsg` and the caller should use
    /// its portable path instead (the ring stays reusable either way).
    pub(crate) fn recv(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        self.inner.recv(socket)
    }

    /// Payload and source address of datagram `index` from the most
    /// recent [`MmsgRing::recv`]. Panics if `index` is out of range or
    /// the peer address family is unknown (the kernel only hands back
    /// families the socket speaks, so that indicates memory corruption).
    pub(crate) fn datagram(&self, index: usize) -> (&[u8], SocketAddr) {
        self.inner.datagram(index)
    }
}

/// Send every payload as one datagram on a **connected** UDP socket,
/// using a single `sendmmsg(2)` syscall on Linux and a per-datagram
/// `send` loop elsewhere. Returns how many payloads were sent (the
/// kernel may stop short under memory pressure).
///
/// This is the transmit-side twin of the receive ring, exported for load
/// generators — `flowdns-bench`'s saturation harness uses it so that
/// the *driver's* syscall cost doesn't become the bottleneck being
/// measured when driving the listener path at saturation.
pub fn send_burst(socket: &UdpSocket, payloads: &[&[u8]]) -> io::Result<usize> {
    if payloads.is_empty() {
        return Ok(0);
    }
    sys::send_burst(socket, payloads)
}

#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::net::UdpSocket;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
    use std::os::fd::AsRawFd;

    // Linux ABI declarations (x86_64/aarch64 generic values), matching
    // the style of `crate::reuseport::sys`.
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const MSG_DONTWAIT: i32 = 0x40;
    /// `sizeof(struct sockaddr_storage)` — large enough for any family.
    const NAME_LEN: usize = 128;

    #[repr(C)]
    struct IoVec {
        iov_base: *mut u8,
        iov_len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut u8,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut u8,
        msg_controllen: usize,
        msg_flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: u32,
    }

    // Each unsafe-bearing item carries its own allow, so new unsafe
    // code elsewhere in the crate still trips `deny(unsafe_code)`.
    #[allow(unsafe_code)]
    extern "C" {
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut core::ffi::c_void,
        ) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }

    #[allow(unsafe_code)]
    pub(super) fn send_burst(socket: &UdpSocket, payloads: &[&[u8]]) -> io::Result<usize> {
        // The socket is connected, so each message carries no name; the
        // iovecs borrow the caller's payload slices for the duration of
        // the call only.
        let mut iovecs: Vec<IoVec> = payloads
            .iter()
            .map(|p| IoVec {
                iov_base: p.as_ptr() as *mut u8,
                iov_len: p.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = iovecs
            .iter_mut()
            .map(|iov| MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: std::ptr::null_mut(),
                    msg_namelen: 0,
                    msg_iov: iov,
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            })
            .collect();
        // SAFETY: every pointer in `hdrs` targets `iovecs`/`payloads`
        // storage that outlives this call; vlen matches the array.
        let rc = unsafe { sendmmsg(socket.as_raw_fd(), hdrs.as_mut_ptr(), hdrs.len() as u32, 0) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    pub(super) struct Ring {
        // Box<[u8]> keeps every base pointer stable for the lifetime of
        // the ring, so the header arrays can be built once and reused
        // for every syscall (the Vecs are never grown, so their heap
        // allocations are stable too).
        bufs: Vec<Box<[u8]>>,
        names: Vec<[u8; NAME_LEN]>,
        iovecs: Vec<IoVec>,
        hdrs: Vec<MMsgHdr>,
    }

    // SAFETY: the raw pointers in `iovecs`/`hdrs` only ever point into
    // `bufs`/`names` owned by the same Ring; moving the Ring between
    // threads moves all of them together and they are only dereferenced
    // (by the kernel) during `recv` while `&mut self` is held.
    #[allow(unsafe_code)]
    unsafe impl Send for Ring {}

    impl Ring {
        pub(super) fn new(slots: usize, buf_len: usize) -> Ring {
            let mut bufs: Vec<Box<[u8]>> = (0..slots)
                .map(|_| vec![0u8; buf_len.max(1)].into_boxed_slice())
                .collect();
            let mut names: Vec<[u8; NAME_LEN]> = vec![[0u8; NAME_LEN]; slots];
            let mut iovecs: Vec<IoVec> = bufs
                .iter_mut()
                .map(|b| IoVec {
                    iov_base: b.as_mut_ptr(),
                    iov_len: b.len(),
                })
                .collect();
            let hdrs: Vec<MMsgHdr> = iovecs
                .iter_mut()
                .zip(names.iter_mut())
                .map(|(iov, name)| MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: name.as_mut_ptr(),
                        msg_namelen: NAME_LEN as u32,
                        msg_iov: iov,
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                })
                .collect();
            Ring {
                bufs,
                names,
                iovecs,
                hdrs,
            }
        }

        #[allow(unsafe_code)]
        pub(super) fn recv(&mut self, socket: &UdpSocket) -> io::Result<usize> {
            // `recvmmsg` writes back each msg_namelen; reset before reuse.
            for hdr in &mut self.hdrs {
                hdr.msg_hdr.msg_namelen = NAME_LEN as u32;
            }
            // SAFETY: every pointer in `hdrs` targets storage owned by
            // `self` and sized as declared; vlen matches the array.
            let rc = unsafe {
                recvmmsg(
                    socket.as_raw_fd(),
                    self.hdrs.as_mut_ptr(),
                    self.hdrs.len() as u32,
                    MSG_DONTWAIT,
                    std::ptr::null_mut(),
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(rc as usize)
        }

        pub(super) fn datagram(&self, index: usize) -> (&[u8], SocketAddr) {
            let hdr = &self.hdrs[index];
            let payload = &self.bufs[index][..hdr.msg_len as usize];
            let name = &self.names[index][..];
            let family = u16::from_ne_bytes([name[0], name[1]]);
            // sockaddr port fields are big-endian on the wire.
            let port = u16::from_be_bytes([name[2], name[3]]);
            let peer = match family {
                AF_INET => {
                    let ip = Ipv4Addr::new(name[4], name[5], name[6], name[7]);
                    SocketAddr::new(IpAddr::V4(ip), port)
                }
                AF_INET6 => {
                    let mut octets = [0u8; 16];
                    octets.copy_from_slice(&name[8..24]);
                    SocketAddr::new(IpAddr::V6(Ipv6Addr::from(octets)), port)
                }
                other => unreachable!("recvmmsg returned address family {other}"),
            };
            (payload, peer)
        }

        // `iovecs` is only read through raw pointers in `hdrs`.
        #[allow(dead_code)]
        fn keep_alive(&self) -> usize {
            self.iovecs.len()
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Non-Linux stub: `recv` reports `Unsupported` so the listener's
    //! portable per-datagram drain is used instead.
    use std::io;
    use std::net::{SocketAddr, UdpSocket};

    pub(super) fn send_burst(socket: &UdpSocket, payloads: &[&[u8]]) -> io::Result<usize> {
        for (i, payload) in payloads.iter().enumerate() {
            if let Err(e) = socket.send(payload) {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
        }
        Ok(payloads.len())
    }

    pub(super) struct Ring;

    impl Ring {
        pub(super) fn new(_slots: usize, _buf_len: usize) -> Ring {
            Ring
        }

        pub(super) fn recv(&mut self, _socket: &UdpSocket) -> io::Result<usize> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "recvmmsg is only implemented on Linux",
            ))
        }

        pub(super) fn datagram(&self, _index: usize) -> (&[u8], SocketAddr) {
            unreachable!("recv never succeeds on this platform")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;

    #[test]
    fn empty_socket_reports_would_block_or_unsupported() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut ring = MmsgRing::new(4, 2048);
        let err = ring.recv(&socket).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Unsupported
            ),
            "{err}"
        );
    }

    #[test]
    fn burst_is_received_in_one_call_with_peers() {
        let receiver = UdpSocket::bind("127.0.0.1:0").unwrap();
        let target = receiver.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sender_addr = sender.local_addr().unwrap();
        for i in 0..5u8 {
            sender.send_to(&[i; 7], target).unwrap();
        }
        // Give loopback delivery a moment.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut ring = MmsgRing::new(8, 2048);
        match ring.recv(&receiver) {
            Ok(count) => {
                assert!((1..=5).contains(&count), "count {count}");
                for i in 0..count {
                    let (payload, peer) = ring.datagram(i);
                    assert_eq!(payload.len(), 7);
                    assert_eq!(payload, &[payload[0]; 7]);
                    assert_eq!(peer, sender_addr);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn send_burst_delivers_every_payload() {
        let receiver = UdpSocket::bind("127.0.0.1:0").unwrap();
        let target = receiver.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        sender.connect(target).unwrap();
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; (i as usize) + 3]).collect();
        let views: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        assert_eq!(send_burst(&sender, &[]).unwrap(), 0);
        let sent = send_burst(&sender, &views).unwrap();
        assert_eq!(sent, 4);
        receiver
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 64];
        for payload in &payloads {
            let n = receiver.recv(&mut buf).unwrap();
            assert_eq!(&buf[..n], payload.as_slice());
        }
    }

    #[test]
    fn ring_is_reusable_across_drains() {
        let receiver = UdpSocket::bind("127.0.0.1:0").unwrap();
        let target = receiver.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut ring = MmsgRing::new(2, 64);
        for round in 0..3u8 {
            sender.send_to(&[round], target).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(30));
            match ring.recv(&receiver) {
                Ok(count) => {
                    assert_eq!(count, 1);
                    assert_eq!(ring.datagram(0).0, &[round]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Unsupported => return,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
}
