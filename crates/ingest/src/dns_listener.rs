//! The TCP DNS-feed listener.
//!
//! The ISP's resolvers forward cache-miss records over framed TCP
//! (Section 4, Coverage). The listener accepts any number of resolver
//! connections; each connection gets its own handler thread running the
//! incremental [`FrameDecoder`] over raw socket reads, so frames split
//! across arbitrary read boundaries decode correctly and a connection cut
//! mid-message simply ends that stream. Each socket read's decoded
//! records go onto the correlator's FillUp queue as one batch
//! (`push_dns_batch`); a full queue is a counted drop.

use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use flowdns_core::Correlator;
use flowdns_dns::framing::FrameDecoder;
use flowdns_stream::RateMeter;

/// How long a blocked accept/read waits before re-checking shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Socket read buffer size.
const READ_BUF: usize = 16 * 1024;

/// Listener-level DNS-feed counters shared with the runtime.
#[derive(Debug, Default)]
pub struct DnsFeedStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Records decoded across all connections.
    pub records: AtomicU64,
    /// Connections dropped because their stream was malformed.
    pub malformed_streams: AtomicU64,
    /// Records dropped because the FillUp queue was full.
    pub queue_drops: AtomicU64,
}

/// Spawn the TCP accept-loop thread. Per-connection handler threads are
/// pushed onto `conn_handles` so the runtime can join them at shutdown.
pub(crate) fn spawn(
    listener: TcpListener,
    correlator: Arc<Correlator>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<DnsFeedStats>,
    meter: Arc<Mutex<RateMeter>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    std::thread::Builder::new()
        .name("ingest-dns-accept".into())
        .spawn(move || {
            let mut next_conn = 0u64;
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let handle = spawn_connection(
                            stream,
                            next_conn,
                            Arc::clone(&correlator),
                            Arc::clone(&shutdown),
                            Arc::clone(&stats),
                            Arc::clone(&meter),
                        );
                        next_conn += 1;
                        match handle {
                            Ok(h) => conn_handles.lock().push(h),
                            Err(_) => {
                                stats.malformed_streams.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        })
}

fn spawn_connection(
    stream: TcpStream,
    id: u64,
    correlator: Arc<Correlator>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<DnsFeedStats>,
    meter: Arc<Mutex<RateMeter>>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("ingest-dns-{id}"))
        .spawn(move || {
            // The accept loop runs nonblocking; the accepted stream
            // inherits that on some platforms, so switch to blocking reads
            // with a timeout to keep the shutdown flag responsive.
            if stream.set_nonblocking(false).is_err()
                || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
            {
                stats.malformed_streams.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let mut stream = stream;
            let mut decoder = FrameDecoder::new();
            let mut buf = vec![0u8; READ_BUF];
            while !shutdown.load(Ordering::Acquire) {
                let n = match stream.read(&mut buf) {
                    Ok(0) => break, // clean EOF; partial frame (if any) discarded
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break, // reset mid-stream; never a panic
                };
                match decoder.feed(&buf[..n]) {
                    Ok(records) => {
                        {
                            let mut meter = meter.lock();
                            for record in &records {
                                meter.record(record.ts, 0);
                            }
                        }
                        stats
                            .records
                            .fetch_add(records.len() as u64, Ordering::Relaxed);
                        // Whole decoded read in one queue offer; the
                        // overflow remainder is counted as dropped.
                        let offered = records.len();
                        let accepted = correlator.push_dns_batch(records);
                        if accepted < offered {
                            stats
                                .queue_drops
                                .fetch_add((offered - accepted) as u64, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        // Corrupt framing: count it and drop the
                        // connection; the resolver will reconnect.
                        stats.malformed_streams.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
        })
}
