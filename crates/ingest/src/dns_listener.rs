//! The TCP DNS-feed listener group.
//!
//! The ISP's resolvers forward cache-miss records over framed TCP
//! (Section 4, Coverage). With `dns_listeners > 1` the runtime binds a
//! `SO_REUSEPORT` listener group (see [`crate::reuseport`]) and the
//! kernel spreads incoming resolver connections across the accept
//! loops; each group member runs its own accept thread, and each
//! accepted connection still gets a dedicated handler thread running the
//! incremental [`FrameDecoder`] — frames split across arbitrary read
//! boundaries decode correctly and a connection cut mid-message simply
//! ends that stream.
//!
//! # Drain loop and ownership
//!
//! A handler thread owns its connection's socket, decoder, and one
//! receive buffer borrowed from the shared [`BufferPool`] (returned to
//! the pool when the connection closes). Reads are batched like the UDP
//! side's drain: one blocking read (short timeout, keeps shutdown
//! responsive) opens the round, then the socket flips non-blocking and
//! further reads are consumed until `WouldBlock` or `recv_batch` reads
//! are in hand. All records decoded during the round are offered to the
//! FillUp queue in **one** `push_dns_batch`; a full queue is a counted
//! drop. A framing error counts the stream malformed and drops the
//! connection — records decoded earlier in the same round are still
//! delivered.

use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use flowdns_core::Correlator;
use flowdns_dns::framing::FrameDecoder;
use flowdns_stream::RateMeter;
use flowdns_types::DnsRecord;

use crate::buffer_pool::BufferPool;

/// How long a blocked accept/read waits before re-checking shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Socket read buffer size.
const READ_BUF: usize = 16 * 1024;

/// Listener-level DNS-feed counters shared with the runtime.
#[derive(Debug, Default)]
pub struct DnsFeedStats {
    /// Connections accepted (across every listener of the group).
    pub connections: AtomicU64,
    /// Records decoded across all connections.
    pub records: AtomicU64,
    /// Socket reads that returned data.
    pub reads: AtomicU64,
    /// Batches offered to the FillUp queue (≤ `reads`: a drain round
    /// folds several reads into one push).
    pub batch_pushes: AtomicU64,
    /// Connections dropped because their stream was malformed.
    pub malformed_streams: AtomicU64,
    /// Records dropped because the FillUp queue was full.
    pub queue_drops: AtomicU64,
}

/// Spawn one accept-loop thread per listener in the group.
/// Per-connection handler threads are pushed onto `conn_handles` so the
/// runtime can join them at shutdown.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_group(
    listeners: Vec<TcpListener>,
    recv_batch: usize,
    pool: Arc<BufferPool>,
    correlator: Arc<Correlator>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<DnsFeedStats>,
    meter: Arc<Mutex<RateMeter>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    let recv_batch = recv_batch.max(1);
    let mut handles = Vec::with_capacity(listeners.len());
    for (i, listener) in listeners.into_iter().enumerate() {
        listener.set_nonblocking(true)?;
        let pool = Arc::clone(&pool);
        let correlator = Arc::clone(&correlator);
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let meter = Arc::clone(&meter);
        let conn_handles = Arc::clone(&conn_handles);
        handles.push(
            std::thread::Builder::new()
                .name(format!("ingest-dns-accept-{i}"))
                .spawn(move || {
                    let mut next_conn = 0u64;
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                // ordering: stats-only counter; scrapes
                                // tolerate momentary skew.
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                let handle = spawn_connection(
                                    stream,
                                    i,
                                    next_conn,
                                    recv_batch,
                                    Arc::clone(&pool),
                                    Arc::clone(&correlator),
                                    Arc::clone(&shutdown),
                                    Arc::clone(&stats),
                                    Arc::clone(&meter),
                                );
                                next_conn += 1;
                                match handle {
                                    Ok(h) => conn_handles.lock().push(h),
                                    Err(_) => {
                                        // ordering: stats-only counter.
                                        stats.malformed_streams.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => std::thread::sleep(POLL_INTERVAL),
                        }
                    }
                })?,
        );
    }
    Ok(handles)
}

#[allow(clippy::too_many_arguments)]
fn spawn_connection(
    stream: TcpStream,
    listener_id: usize,
    id: u64,
    recv_batch: usize,
    pool: Arc<BufferPool>,
    correlator: Arc<Correlator>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<DnsFeedStats>,
    meter: Arc<Mutex<RateMeter>>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("ingest-dns-{listener_id}-{id}"))
        .spawn(move || {
            // The accept loop runs nonblocking; the accepted stream
            // inherits that on some platforms, so switch to blocking reads
            // with a timeout to keep the shutdown flag responsive.
            if stream.set_nonblocking(false).is_err()
                || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
            {
                // ordering: stats-only counter.
                stats.malformed_streams.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let mut stream = stream;
            let mut decoder = FrameDecoder::new();
            let mut buf = pool.take(READ_BUF);
            let mut batch: Vec<DnsRecord> = Vec::new();
            // Sharded pipeline: this connection thread owns its ingress
            // router, so routed pushes are lock-free SPSC ring writes.
            let mut router = correlator.ingress_router();
            'conn: while !shutdown.load(Ordering::Acquire) {
                // One blocking read opens the drain round.
                let n = match stream.read(&mut buf) {
                    Ok(0) => break, // clean EOF; partial frame (if any) discarded
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break, // reset mid-stream; never a panic
                };
                // ordering: stats-only counter.
                stats.reads.fetch_add(1, Ordering::Relaxed);
                let mut closing = !feed(&mut decoder, &buf[..n], &mut batch, &stats);
                // Drain whatever else is already buffered, folding every
                // read's records into the same batch.
                let mut reads = 1usize;
                if !closing && recv_batch > 1 && stream.set_nonblocking(true).is_ok() {
                    while reads < recv_batch {
                        match stream.read(&mut buf) {
                            Ok(0) => {
                                closing = true;
                                break;
                            }
                            Ok(n) => {
                                reads += 1;
                                // ordering: stats-only counter.
                                stats.reads.fetch_add(1, Ordering::Relaxed);
                                if !feed(&mut decoder, &buf[..n], &mut batch, &stats) {
                                    closing = true;
                                    break;
                                }
                            }
                            Err(_) => break, // WouldBlock: nothing queued
                        }
                    }
                    if stream.set_nonblocking(false).is_err() {
                        closing = true;
                    }
                }
                // One queue offer for the whole round; the overflow
                // remainder is counted as dropped.
                if !batch.is_empty() {
                    {
                        let mut meter = meter.lock();
                        for record in &batch {
                            meter.record(record.ts, 0);
                        }
                        // One wall-clock activity mark per drain round,
                        // for the `last_activity_seconds` gauge.
                        meter.mark_activity();
                    }
                    // ordering: stats-only counters (records, batches).
                    stats
                        .records
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    stats.batch_pushes.fetch_add(1, Ordering::Relaxed);
                    let offered = batch.len();
                    let accepted = match router.as_mut() {
                        Some(router) => router.route_dns_batch(batch.drain(..)),
                        None => correlator.push_dns_batch(batch.drain(..)),
                    };
                    if accepted < offered {
                        // ordering: stats-only drop counter.
                        stats
                            .queue_drops
                            .fetch_add((offered - accepted) as u64, Ordering::Relaxed);
                    }
                }
                if closing {
                    break 'conn;
                }
            }
        })
}

/// Feed one read's bytes through the connection's decoder, appending the
/// decoded records to `batch`. Returns `false` when the stream is
/// corrupt (counted; the connection must close — records already decoded
/// into `batch` are still delivered by the caller).
fn feed(
    decoder: &mut FrameDecoder,
    bytes: &[u8],
    batch: &mut Vec<DnsRecord>,
    stats: &DnsFeedStats,
) -> bool {
    match decoder.feed(bytes) {
        Ok(records) => {
            batch.extend(records);
            true
        }
        Err(_) => {
            // ordering: stats-only counter.
            stats.malformed_streams.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}
