//! # flowdns-ingest
//!
//! Live network ingestion for the FlowDNS reproduction.
//!
//! The paper's FlowDNS runs *inside* an ISP: NetFlow/IPFIX arrives over
//! UDP from many exporters and the resolvers' cache-miss feed arrives
//! over framed TCP. This crate is that socket layer:
//!
//! * [`config`] — [`DaemonConfig`], the `key = value` file `flowdnsd`
//!   reads (listener addresses here, everything else forwarded to
//!   [`flowdns_core::CorrelatorConfig`]),
//! * [`netflow_listener`] — the UDP listener demultiplexing datagrams by
//!   exporter address with **per-exporter** v5/v9/IPFIX decode state,
//! * [`dns_listener`] — the TCP DNS-feed listener running the
//!   length-prefix framing incrementally over socket reads,
//! * [`runtime`] — [`IngestRuntime`], which wires both listeners into the
//!   FillUp/LookUp bounded queues with per-listener meters and an ordered
//!   shutdown that drains every queue before reporting.
//!
//! The `flowdnsd` binary (this crate's `src/bin/flowdnsd.rs`) reads a
//! config file, runs ingest + pipeline, prints periodic stats to stderr,
//! and exits with a final [`flowdns_core::Report`] on shutdown (stdin
//! EOF, a `quit` line, or `--duration` elapsing).
//!
//! Everything is testable over loopback sockets with no external
//! dependencies; see `tests/live_ingest.rs` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dns_listener;
pub mod netflow_listener;
pub mod runtime;

pub use config::{DaemonConfig, IngestConfig};
pub use dns_listener::DnsFeedStats;
// Re-exported for compatibility: the discard sink moved into the core
// write module with the sharded-egress refactor.
pub use flowdns_core::write::DiscardSink;
pub use netflow_listener::ExporterTable;
pub use runtime::{IngestRuntime, IngestSnapshot};
