//! # flowdns-ingest
//!
//! Live network ingestion for the FlowDNS reproduction.
//!
//! The paper's FlowDNS runs *inside* an ISP: NetFlow/IPFIX arrives over
//! UDP from many exporters and the resolvers' cache-miss feed arrives
//! over framed TCP. This crate is that socket layer:
//!
//! * [`config`] — [`DaemonConfig`], the `key = value` file `flowdnsd`
//!   reads (listener addresses here, everything else forwarded to
//!   [`flowdns_core::CorrelatorConfig`]),
//! * [`netflow_listener`] — the UDP listener group: batched socket
//!   drains (real `recvmmsg(2)` on Linux via [`mmsg`], a portable
//!   per-datagram fallback elsewhere) feeding one pipeline batch per
//!   drain, with **per-listener** decoder shards holding per-exporter
//!   v5/v9/IPFIX decode state,
//! * [`dns_listener`] — the TCP DNS-feed listener group running the
//!   length-prefix framing incrementally over drained socket reads,
//! * [`buffer_pool`] — the shared [`BufferPool`] recycling receive
//!   buffers across listeners and connections,
//! * [`runtime`] — [`IngestRuntime`], which binds the `SO_REUSEPORT`
//!   listener groups (`netflow_listeners`/`dns_listeners` config keys)
//!   and wires them into the FillUp/LookUp bounded queues with
//!   per-listener meters and an ordered shutdown that drains every
//!   queue before reporting.
//!
//! The `flowdnsd` binary (this crate's `src/bin/flowdnsd.rs`) reads a
//! config file, runs ingest + pipeline, prints periodic stats to stderr,
//! and exits with a final [`flowdns_core::Report`] on shutdown (stdin
//! EOF, a `quit` line, or `--duration` elapsing).
//!
//! Everything is testable over loopback sockets with no external
//! dependencies; see `tests/live_ingest.rs` at the workspace root.

// `deny`, not `forbid`: the contained exceptions are the `reuseport`
// module (raw socket(2)/setsockopt(2)/bind(2) FFI to set SO_REUSEPORT
// *before* bind, which std cannot) and the `mmsg` module (recvmmsg(2)
// batched receive); this build links no libc crate, so both declare the
// syscalls themselves. Everything else in the crate is unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer_pool;
pub mod config;
pub mod dns_listener;
pub mod mmsg;
pub mod netflow_listener;
pub mod reuseport;
pub mod runtime;

pub use buffer_pool::{BufferPool, PoolStats};
pub use config::{DaemonConfig, IngestConfig};
pub use dns_listener::DnsFeedStats;
// Re-exported for compatibility: the discard sink moved into the core
// write module with the sharded-egress refactor.
pub use flowdns_core::write::DiscardSink;
pub use netflow_listener::{ExporterTable, ListenerCounters};
pub use runtime::{IngestRuntime, IngestSnapshot};
