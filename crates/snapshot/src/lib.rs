//! # flowdns-snapshot
//!
//! Durable snapshots of the FlowDNS DNS store, so a restarted daemon can
//! warm-start instead of re-learning the IP→NAME and NAME→CNAME maps from
//! scratch.
//!
//! FlowDNS only correlates well once its fill-up phase has populated the
//! stores, so every `flowdnsd` restart silently degrades correlation for
//! up to a clear-up interval. This crate defines a compact, versioned,
//! checksummed binary file format for the store's full state — the
//! interned name pool, the `NUM_SPLIT` IP-NAME generation triples, the
//! NAME-CNAME triple, and the per-store rotation clocks — together with
//! atomic write (`.part` + rename) and strict, checksum-verified read.
//!
//! The crate deliberately knows nothing about live stores or threads: it
//! only defines the *image* types ([`DnsStoreImage`], [`StoreImage`]) and
//! the codec ([`write_snapshot`], [`read_snapshot`]). `flowdns-storage`
//! exports and imports generation images, and `flowdns-core` maps live
//! [`flowdns_types::NameRef`] handles to and from the image's name
//! indices and runs the background snapshot thread.
//!
//! ## File format (version 2)
//!
//! ```text
//! magic    8 bytes  "FDNSSNAP"
//! version  u32 LE   2
//! length   u64 LE   payload byte count
//! checksum u64 LE   FNV-1a 64 over the payload bytes
//! payload  ...      see `wire` for the section encodings
//! ```
//!
//! Version 2 added the [`DnsStoreImage::shards`] field for the sharded
//! correlator (the IP-NAME section then holds `shards × num_split`
//! generation triples in shard-major order). Version 1 files are
//! rejected by the version check — the daemon records the error and
//! cold-starts; see MIGRATION.md.
//!
//! A torn or corrupted file fails the checksum (or the length check) and
//! is rejected with [`FlowDnsError::Snapshot`]; the writer never exposes
//! a partially written file under the final name because it writes to
//! `<path>.part` and renames only after a successful flush.
//!
//! # Examples
//!
//! ```
//! use flowdns_snapshot::{decode_snapshot, encode_snapshot, DnsStoreImage, StoreImage};
//! use flowdns_types::SimTime;
//!
//! let image = DnsStoreImage {
//!     as_of: SimTime::from_secs(900),
//!     num_split: 1,
//!     shards: 0, // classic shared store; N > 0 for sharded correlators
//!     a_interval_secs: 3600,
//!     c_interval_secs: 7200,
//!     names: vec!["svc.example".to_string()],
//!     ip_name: vec![StoreImage::default()],
//!     name_cname: StoreImage::default(),
//! };
//! let bytes = encode_snapshot(&image);
//! assert_eq!(decode_snapshot(&bytes).unwrap(), image);
//!
//! // A torn write is rejected by the checksum, never half-decoded.
//! assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod wire;

pub use image::{DnsStoreImage, SnapshotKey, StoreImage};

use std::path::Path;

use flowdns_types::FlowDnsError;

/// Magic bytes opening every snapshot file.
pub const MAGIC: &[u8; 8] = b"FDNSSNAP";

/// Current format version. Version 2 added [`DnsStoreImage::shards`];
/// version 1 files are rejected (cold start), see MIGRATION.md.
pub const FORMAT_VERSION: u32 = 2;

/// Bytes of header before the payload (magic + version + length +
/// checksum).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// FNV-1a 64-bit checksum over a byte slice — small, dependency-free,
/// and more than strong enough to reject torn or bit-flipped files
/// (it is not a cryptographic integrity check).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serialize an image into a complete snapshot file body (header +
/// payload).
pub fn encode_snapshot(image: &DnsStoreImage) -> Vec<u8> {
    let mut payload = Vec::new();
    image.encode(&mut payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse a complete snapshot file body, verifying magic, version,
/// length and checksum before decoding the payload.
pub fn decode_snapshot(bytes: &[u8]) -> Result<DnsStoreImage, FlowDnsError> {
    let fail = |msg: &str| Err(FlowDnsError::Snapshot(msg.to_string()));
    if bytes.len() < HEADER_LEN {
        return fail("file shorter than the snapshot header");
    }
    if &bytes[..8] != MAGIC {
        return fail("bad magic (not a FlowDNS snapshot)");
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(FlowDnsError::Snapshot(format!(
            "unsupported snapshot version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    let length = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let stored_checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != length {
        return Err(FlowDnsError::Snapshot(format!(
            "payload length mismatch: header says {length} bytes, file has {}",
            payload.len()
        )));
    }
    if checksum(payload) != stored_checksum {
        return fail("checksum mismatch (torn or corrupted snapshot)");
    }
    let mut reader = wire::Reader::new(payload);
    let image = DnsStoreImage::decode(&mut reader)?;
    reader.finish()?;
    Ok(image)
}

/// Write a snapshot atomically: encode, write `<path>.part`, flush, and
/// rename over the final path. Readers therefore never observe a
/// partially written snapshot under `path`. Returns the total file size
/// in bytes.
pub fn write_snapshot<P: AsRef<Path>>(path: P, image: &DnsStoreImage) -> Result<u64, FlowDnsError> {
    let path = path.as_ref();
    let bytes = encode_snapshot(image);
    let part = part_path(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&part, &bytes)?;
    // Durability is best-effort (no fsync of the directory), atomicity is
    // not: the rename is what makes the snapshot visible.
    std::fs::rename(&part, path)?;
    Ok(bytes.len() as u64)
}

/// Read and verify a snapshot file.
pub fn read_snapshot<P: AsRef<Path>>(path: P) -> Result<DnsStoreImage, FlowDnsError> {
    let bytes = std::fs::read(path.as_ref())?;
    decode_snapshot(&bytes)
}

/// The temporary name a snapshot is written under before the atomic
/// rename (`<path>.part`).
pub fn part_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    name.push_str(".part");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::{IpKey, SimTime};
    use std::net::Ipv4Addr;

    fn sample_image() -> DnsStoreImage {
        let ip_split = StoreImage {
            last_clear_ts: Some(SimTime::from_secs(3600)),
            last_seen_ts: Some(SimTime::from_secs(4000)),
            active: vec![(
                SnapshotKey::Ip(IpKey::from(Ipv4Addr::new(203, 0, 113, 9))),
                0,
            )],
            long: vec![(
                SnapshotKey::Ip(IpKey::from_ip("2001:db8::7".parse().unwrap())),
                1,
            )],
            ..StoreImage::default()
        };
        let cname = StoreImage {
            inactive: vec![(SnapshotKey::Name(0), 2)],
            ..StoreImage::default()
        };
        DnsStoreImage {
            as_of: SimTime::from_secs(4000),
            num_split: 1,
            shards: 0,
            a_interval_secs: 3600,
            c_interval_secs: 7200,
            names: vec![
                "edge7.cdn.example.net".into(),
                "v6.example".into(),
                "www.shop.example".into(),
            ],
            ip_name: vec![ip_split],
            name_cname: cname,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let image = sample_image();
        let bytes = encode_snapshot(&image);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn truncated_and_corrupted_files_are_rejected() {
        let bytes = encode_snapshot(&sample_image());
        // Torn write: any strict prefix must fail (short header, short
        // payload, or checksum mismatch — never a silent partial decode).
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_snapshot(&bytes[..cut]),
                    Err(FlowDnsError::Snapshot(_))
                ),
                "prefix of {cut} bytes must be rejected"
            );
        }
        // Single flipped payload byte: checksum mismatch.
        let mut flipped = bytes.clone();
        flipped[HEADER_LEN + 1] ^= 0x40;
        match decode_snapshot(&flipped) {
            Err(FlowDnsError::Snapshot(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum rejection, got {other:?}"),
        }
        // Wrong magic and wrong version.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_snapshot(&wrong_magic).is_err());
        let mut wrong_version = bytes;
        wrong_version[8] = 99;
        match decode_snapshot(&wrong_version) {
            Err(FlowDnsError::Snapshot(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn version_one_files_are_rejected_not_misparsed() {
        // A v1 file lacks the shards field; decoding its payload with the
        // v2 layout would silently shear every later section, so the
        // version gate must fire first.
        let mut v1 = encode_snapshot(&sample_image());
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        match decode_snapshot(&v1) {
            Err(FlowDnsError::Snapshot(msg)) => {
                assert!(msg.contains("unsupported snapshot version 1"), "{msg}")
            }
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_snapshot(&sample_image());
        bytes.extend_from_slice(b"junk");
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join("flowdns-snapshot-file-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("store.fdns");
        let image = sample_image();
        let bytes = write_snapshot(&path, &image).unwrap();
        assert!(bytes > HEADER_LEN as u64);
        // The .part intermediate must be gone after the rename.
        assert!(!part_path(&path).exists());
        assert_eq!(read_snapshot(&path).unwrap(), image);
        // Overwriting goes through the same .part dance.
        write_snapshot(&path, &image).unwrap();
        assert!(!part_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        match read_snapshot("/nonexistent/flowdns/store.fdns") {
            Err(FlowDnsError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn checksum_is_stable_and_input_sensitive() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
    }
}
