//! Little-endian payload primitives for the snapshot format.
//!
//! Everything in a snapshot payload is built from four shapes: fixed
//! `u8`/`u32`/`u64` integers, and length-prefixed UTF-8 strings
//! (`u32` byte count + bytes). Writers append to a plain `Vec<u8>`;
//! [`Reader`] walks a byte slice with strict bounds checks, so a
//! truncated payload turns into a [`FlowDnsError::Snapshot`] instead of a
//! panic (the checksum catches corruption first in practice, but the
//! decoder must stand on its own).

use flowdns_types::FlowDnsError;

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u128`.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over a snapshot payload.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FlowDnsError> {
        if self.remaining() < n {
            return Err(FlowDnsError::Snapshot(format!(
                "truncated payload: needed {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, FlowDnsError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, FlowDnsError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, FlowDnsError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, FlowDnsError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, FlowDnsError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FlowDnsError::Snapshot("string section is not UTF-8".into()))
    }

    /// Read an element count and sanity-check it against the bytes left:
    /// a payload cannot hold more than `remaining / min_element_bytes`
    /// elements, so a corrupt count fails here instead of triggering a
    /// huge allocation.
    pub fn count(&mut self, min_element_bytes: usize) -> Result<usize, FlowDnsError> {
        let count = self.u32()? as usize;
        let cap = self.remaining() / min_element_bytes.max(1);
        if count > cap {
            return Err(FlowDnsError::Snapshot(format!(
                "implausible element count {count} (at most {cap} fit in the remaining payload)"
            )));
        }
        Ok(count)
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), FlowDnsError> {
        if self.remaining() != 0 {
            return Err(FlowDnsError::Snapshot(format!(
                "{} unexpected trailing bytes after the last section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_u128(&mut buf, u128::MAX / 3);
        put_str(&mut buf, "edge7.cdn.example.net");
        put_str(&mut buf, "");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.str().unwrap(), "edge7.cdn.example.net");
        assert_eq!(r.str().unwrap(), "");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut r = Reader::new(&buf[..5]);
        assert!(r.u64().is_err());
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut r = Reader::new(&buf[..6]);
        assert!(r.str().is_err());
    }

    #[test]
    fn finish_rejects_leftovers() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        put_u8(&mut buf, 9);
        let mut r = Reader::new(&buf);
        let _ = r.u32().unwrap();
        assert!(r.finish().is_err());
        let _ = r.u8().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn implausible_counts_are_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims 4 billion elements
        let mut r = Reader::new(&buf);
        assert!(r.count(8).is_err());
        // A plausible count passes.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        put_u64(&mut buf, 0);
        put_u64(&mut buf, 0);
        let mut r = Reader::new(&buf);
        assert_eq!(r.count(8).unwrap(), 2);
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());
    }
}
