//! The snapshot *image*: a plain-data picture of one DNS store.
//!
//! An image is everything a warm restart needs, decoupled from the live
//! store types: a deduplicated name table (the interner pool, referenced
//! by index so each distinct name is stored once, exactly like it is held
//! once in memory), one generation triple per IP-NAME split, the
//! NAME-CNAME triple, and the per-store rotation clocks that let the
//! loader decide which generations are still within the rotation window.
//!
//! `flowdns_core::DnsStore` builds and consumes these images
//! (`export_image` / `import_image`); this crate only defines their
//! shape and byte encoding.

use flowdns_types::{FlowDnsError, IpKey, SimTime};

use crate::wire::{self, Reader};

/// A key of one snapshotted store entry.
///
/// IP-NAME splits key by address bits, the NAME-CNAME store keys by a
/// name-table index; the tag byte in the encoding keeps the two
/// self-describing so a mismatched section is a decode error rather than
/// a misinterpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotKey {
    /// An IP address key (IP-NAME splits).
    Ip(IpKey),
    /// An index into [`DnsStoreImage::names`] (NAME-CNAME store).
    Name(u32),
}

impl SnapshotKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SnapshotKey::Name(idx) => {
                wire::put_u8(out, 0);
                wire::put_u32(out, *idx);
            }
            SnapshotKey::Ip(IpKey::V4(bits)) => {
                wire::put_u8(out, 1);
                wire::put_u32(out, *bits);
            }
            SnapshotKey::Ip(IpKey::V6(bits)) => {
                wire::put_u8(out, 2);
                wire::put_u128(out, *bits);
            }
        }
    }

    fn decode(reader: &mut Reader<'_>) -> Result<Self, FlowDnsError> {
        match reader.u8()? {
            0 => Ok(SnapshotKey::Name(reader.u32()?)),
            1 => Ok(SnapshotKey::Ip(IpKey::V4(reader.u32()?))),
            2 => Ok(SnapshotKey::Ip(IpKey::V6(reader.u128()?))),
            tag => Err(FlowDnsError::Snapshot(format!(
                "unknown snapshot key tag {tag}"
            ))),
        }
    }
}

/// One rotating store's state: the three generation maps as entry lists
/// (key → name-table index) plus the rotation clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreImage {
    /// When the store last performed a clear-up, in data time (`None` if
    /// it never has). The loader measures generation age from here.
    pub last_clear_ts: Option<SimTime>,
    /// The latest data timestamp the store observed (`None` if it never
    /// saw a record). Feeds [`DnsStoreImage::as_of`].
    pub last_seen_ts: Option<SimTime>,
    /// The Active generation's entries.
    pub active: Vec<(SnapshotKey, u32)>,
    /// The Inactive generation's entries.
    pub inactive: Vec<(SnapshotKey, u32)>,
    /// The Long generation's entries.
    pub long: Vec<(SnapshotKey, u32)>,
}

/// Smallest possible encoded entry: 1 tag + 4 key + 4 value bytes.
const MIN_ENTRY_BYTES: usize = 9;

impl StoreImage {
    /// Total entries across the three generations.
    pub fn entry_count(&self) -> usize {
        self.active.len() + self.inactive.len() + self.long.len()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        encode_opt_ts(out, self.last_clear_ts);
        encode_opt_ts(out, self.last_seen_ts);
        for generation in [&self.active, &self.inactive, &self.long] {
            wire::put_u32(out, generation.len() as u32);
            for (key, value) in generation {
                key.encode(out);
                wire::put_u32(out, *value);
            }
        }
    }

    fn decode(reader: &mut Reader<'_>) -> Result<Self, FlowDnsError> {
        let last_clear_ts = decode_opt_ts(reader)?;
        let last_seen_ts = decode_opt_ts(reader)?;
        let mut generations: [Vec<(SnapshotKey, u32)>; 3] = Default::default();
        for generation in &mut generations {
            let count = reader.count(MIN_ENTRY_BYTES)?;
            generation.reserve_exact(count);
            for _ in 0..count {
                let key = SnapshotKey::decode(reader)?;
                let value = reader.u32()?;
                generation.push((key, value));
            }
        }
        let [active, inactive, long] = generations;
        Ok(StoreImage {
            last_clear_ts,
            last_seen_ts,
            active,
            inactive,
            long,
        })
    }
}

/// The full store image: name table, IP-NAME splits, NAME-CNAME store,
/// and the configuration facts the loader checks before importing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsStoreImage {
    /// The latest data timestamp any store in the image observed; the
    /// loader's default "now" when judging generation age.
    pub as_of: SimTime,
    /// Number of IP-NAME splits the image was exported with. An import
    /// into a store with a different split count is rejected — the split
    /// label function is stable, so entries cannot simply be reassigned
    /// generation-by-generation.
    pub num_split: u32,
    /// Number of shared-nothing correlator shards the image was exported
    /// with. `0` means the classic shared store (one set of `num_split`
    /// splits); any positive value means [`DnsStoreImage::ip_name`]
    /// holds `shards × num_split` images in shard-major order (shard 0's
    /// splits first). Like `num_split`, a mismatch on import is rejected
    /// — the shard routing function is stable, so partitions cannot be
    /// reassigned without rehashing every entry.
    pub shards: u32,
    /// `AClearUpInterval` (seconds) the exporting store ran with.
    pub a_interval_secs: u64,
    /// `CClearUpInterval` (seconds) the exporting store ran with.
    pub c_interval_secs: u64,
    /// The deduplicated name table. Every entry value — and every
    /// NAME-CNAME key — is an index into this table, so one snapshot
    /// stores each distinct name exactly once and the importer can
    /// rebuild interner sharing exactly.
    pub names: Vec<String>,
    /// One image per IP-NAME split, in split-label order.
    pub ip_name: Vec<StoreImage>,
    /// The NAME-CNAME store image.
    pub name_cname: StoreImage,
}

impl DnsStoreImage {
    /// Total entries across every store in the image.
    pub fn entry_count(&self) -> usize {
        self.ip_name
            .iter()
            .map(StoreImage::entry_count)
            .sum::<usize>()
            + self.name_cname.entry_count()
    }

    /// Serialize the payload sections (without the file header).
    pub fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.as_of.as_micros());
        wire::put_u32(out, self.num_split);
        wire::put_u32(out, self.shards);
        wire::put_u64(out, self.a_interval_secs);
        wire::put_u64(out, self.c_interval_secs);
        wire::put_u32(out, self.names.len() as u32);
        for name in &self.names {
            wire::put_str(out, name);
        }
        wire::put_u32(out, self.ip_name.len() as u32);
        for split in &self.ip_name {
            split.encode(out);
        }
        self.name_cname.encode(out);
    }

    /// Decode the payload sections and validate internal consistency
    /// (split count, name-index bounds, key kinds per section).
    pub fn decode(reader: &mut Reader<'_>) -> Result<Self, FlowDnsError> {
        let as_of = SimTime::from_micros(reader.u64()?);
        let num_split = reader.u32()?;
        let shards = reader.u32()?;
        let a_interval_secs = reader.u64()?;
        let c_interval_secs = reader.u64()?;
        let name_count = reader.count(4)?;
        let mut names = Vec::with_capacity(name_count);
        for _ in 0..name_count {
            names.push(reader.str()?);
        }
        let split_count = reader.count(1)?;
        let mut ip_name = Vec::with_capacity(split_count);
        for _ in 0..split_count {
            ip_name.push(StoreImage::decode(reader)?);
        }
        let name_cname = StoreImage::decode(reader)?;
        let image = DnsStoreImage {
            as_of,
            num_split,
            shards,
            a_interval_secs,
            c_interval_secs,
            names,
            ip_name,
            name_cname,
        };
        image.validate()?;
        Ok(image)
    }

    fn validate(&self) -> Result<(), FlowDnsError> {
        let fail = |msg: String| Err(FlowDnsError::Snapshot(msg));
        let expected_sections = self.num_split as usize * self.shards.max(1) as usize;
        if self.ip_name.len() != expected_sections {
            return fail(format!(
                "split section count {} does not match declared num_split {} × {} shard(s)",
                self.ip_name.len(),
                self.num_split,
                self.shards.max(1)
            ));
        }
        let names = self.names.len() as u32;
        let check_name = |idx: u32| -> Result<(), FlowDnsError> {
            if idx >= names {
                return Err(FlowDnsError::Snapshot(format!(
                    "name index {idx} out of bounds (table has {names} names)"
                )));
            }
            Ok(())
        };
        for split in &self.ip_name {
            for (key, value) in split
                .active
                .iter()
                .chain(&split.inactive)
                .chain(&split.long)
            {
                if !matches!(key, SnapshotKey::Ip(_)) {
                    return fail("IP-NAME split contains a non-IP key".into());
                }
                check_name(*value)?;
            }
        }
        for (key, value) in self
            .name_cname
            .active
            .iter()
            .chain(&self.name_cname.inactive)
            .chain(&self.name_cname.long)
        {
            match key {
                SnapshotKey::Name(idx) => check_name(*idx)?,
                SnapshotKey::Ip(_) => {
                    return fail("NAME-CNAME store contains an IP key".into());
                }
            }
            check_name(*value)?;
        }
        Ok(())
    }
}

fn encode_opt_ts(out: &mut Vec<u8>, ts: Option<SimTime>) {
    match ts {
        Some(ts) => {
            wire::put_u8(out, 1);
            wire::put_u64(out, ts.as_micros());
        }
        None => wire::put_u8(out, 0),
    }
}

fn decode_opt_ts(reader: &mut Reader<'_>) -> Result<Option<SimTime>, FlowDnsError> {
    match reader.u8()? {
        0 => Ok(None),
        1 => Ok(Some(SimTime::from_micros(reader.u64()?))),
        tag => Err(FlowDnsError::Snapshot(format!(
            "invalid optional-timestamp tag {tag}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_image(image: &DnsStoreImage) -> Result<DnsStoreImage, FlowDnsError> {
        let mut payload = Vec::new();
        image.encode(&mut payload);
        let mut reader = Reader::new(&payload);
        let back = DnsStoreImage::decode(&mut reader)?;
        reader.finish()?;
        Ok(back)
    }

    fn minimal_image() -> DnsStoreImage {
        DnsStoreImage {
            as_of: SimTime::from_secs(100),
            num_split: 2,
            shards: 0,
            a_interval_secs: 3600,
            c_interval_secs: 7200,
            names: vec!["a.example".into()],
            ip_name: vec![StoreImage::default(), StoreImage::default()],
            name_cname: StoreImage::default(),
        }
    }

    #[test]
    fn empty_stores_round_trip() {
        let image = minimal_image();
        assert_eq!(image.entry_count(), 0);
        assert_eq!(decode_image(&image).unwrap(), image);
    }

    #[test]
    fn out_of_bounds_name_indices_are_rejected() {
        let mut image = minimal_image();
        image.ip_name[0]
            .active
            .push((SnapshotKey::Ip(IpKey::V4(1)), 7)); // only 1 name in the table
        assert!(decode_image(&image).is_err());
        let mut image = minimal_image();
        image.name_cname.long.push((SnapshotKey::Name(9), 0));
        assert!(decode_image(&image).is_err());
    }

    #[test]
    fn key_kind_mismatches_are_rejected() {
        let mut image = minimal_image();
        image.ip_name[1].inactive.push((SnapshotKey::Name(0), 0));
        assert!(decode_image(&image).is_err());
        let mut image = minimal_image();
        image
            .name_cname
            .active
            .push((SnapshotKey::Ip(IpKey::V4(1)), 0));
        assert!(decode_image(&image).is_err());
    }

    #[test]
    fn split_count_mismatch_is_rejected() {
        let mut image = minimal_image();
        image.num_split = 3; // but only 2 split sections
        assert!(decode_image(&image).is_err());
    }

    #[test]
    fn sharded_images_carry_shard_major_sections() {
        // 3 shards × 2 splits = 6 sections, shard-major.
        let mut image = minimal_image();
        image.shards = 3;
        image.ip_name = (0..6).map(|_| StoreImage::default()).collect();
        image.ip_name[5]
            .active
            .push((SnapshotKey::Ip(IpKey::V4(0xC0A80001)), 0));
        let back = decode_image(&image).unwrap();
        assert_eq!(back.shards, 3);
        assert_eq!(back.ip_name.len(), 6);
        assert_eq!(back, image);
        // shards = 1 is NOT the same as the classic layout marker 0 in
        // the header, but both expect num_split sections.
        let mut image = minimal_image();
        image.shards = 1;
        assert_eq!(decode_image(&image).unwrap().shards, 1);
    }

    #[test]
    fn shard_count_section_mismatch_is_rejected() {
        let mut image = minimal_image();
        image.shards = 2; // declares 2 × 2 = 4 sections, but only 2 present
        match decode_image(&image) {
            Err(FlowDnsError::Snapshot(msg)) => assert!(msg.contains("shard"), "{msg}"),
            other => panic!("expected shard mismatch rejection, got {other:?}"),
        }
    }
}
