//! Property-based tests of the snapshot codec: any well-formed image
//! must survive encode → decode byte-exactly, and any prefix truncation
//! of the encoded file must be rejected (never mis-decoded).

use flowdns_snapshot::{decode_snapshot, encode_snapshot, DnsStoreImage, SnapshotKey, StoreImage};
use flowdns_types::{IpKey, SimTime};
use proptest::prelude::*;

fn ip_entries(names: u32) -> impl Strategy<Value = Vec<(SnapshotKey, u32)>> {
    proptest::collection::vec(
        (
            prop_oneof![
                any::<u32>().prop_map(|bits| SnapshotKey::Ip(IpKey::V4(bits))),
                any::<u128>().prop_map(|bits| SnapshotKey::Ip(IpKey::V6(bits))),
            ],
            0..names,
        ),
        0..20,
    )
}

fn name_entries(names: u32) -> impl Strategy<Value = Vec<(SnapshotKey, u32)>> {
    proptest::collection::vec(((0..names).prop_map(SnapshotKey::Name), 0..names), 0..20)
}

fn opt_ts() -> impl Strategy<Value = Option<SimTime>> {
    prop_oneof![
        Just(None),
        (0u64..1_000_000_000).prop_map(|micros| Some(SimTime::from_micros(micros))),
    ]
}

fn ip_store_image(names: u32) -> impl Strategy<Value = StoreImage> {
    (
        opt_ts(),
        opt_ts(),
        ip_entries(names),
        ip_entries(names),
        ip_entries(names),
    )
        .prop_map(
            |(last_clear_ts, last_seen_ts, active, inactive, long)| StoreImage {
                last_clear_ts,
                last_seen_ts,
                active,
                inactive,
                long,
            },
        )
}

fn cname_store_image(names: u32) -> impl Strategy<Value = StoreImage> {
    (
        opt_ts(),
        opt_ts(),
        name_entries(names),
        name_entries(names),
        name_entries(names),
    )
        .prop_map(
            |(last_clear_ts, last_seen_ts, active, inactive, long)| StoreImage {
                last_clear_ts,
                last_seen_ts,
                active,
                inactive,
                long,
            },
        )
}

const NAMES: u32 = 8;

fn name_table() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::string::string_regex("[a-z0-9]{1,12}\\.[a-z]{2,8}").unwrap(),
        NAMES as usize..(NAMES as usize + 1),
    )
}

fn dns_store_image() -> impl Strategy<Value = DnsStoreImage> {
    (
        0u64..1_000_000_000,
        name_table(),
        // A sharded image carries num_split × shards sections (shards = 0
        // is the classic shared layout: num_split alone). Generate the
        // maximum 3 × 3 = 9 sections up front and truncate in prop_map.
        (
            1u32..4,
            0u32..4,
            proptest::collection::vec(ip_store_image(NAMES), 9..10),
        )
            .prop_map(|(num_split, shards, mut pool)| {
                pool.truncate((num_split * shards.max(1)) as usize);
                (num_split, shards, pool)
            }),
        cname_store_image(NAMES),
        0u64..100_000,
        0u64..100_000,
    )
        .prop_map(
            |(as_of, names, (num_split, shards, ip_name), name_cname, a_secs, c_secs)| {
                DnsStoreImage {
                    as_of: SimTime::from_micros(as_of),
                    num_split,
                    shards,
                    a_interval_secs: a_secs,
                    c_interval_secs: c_secs,
                    names,
                    ip_name,
                    name_cname,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_is_the_identity(image in dns_store_image()) {
        let bytes = encode_snapshot(&image);
        let back = decode_snapshot(&bytes).expect("well-formed image must decode");
        prop_assert_eq!(back, image);
    }

    #[test]
    fn every_truncation_is_rejected(image in dns_store_image(), cut_back in 1usize..64) {
        let bytes = encode_snapshot(&image);
        // Cut anywhere — header, checksum, or payload — and the loader
        // must reject rather than return a partial store.
        let cut = bytes.len().saturating_sub(cut_back);
        prop_assert!(decode_snapshot(&bytes[..cut]).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_equal(image in dns_store_image(), pos in any::<u16>(), bit in 0u8..8) {
        let bytes = encode_snapshot(&image);
        let pos = (pos as usize) % bytes.len();
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1 << bit;
        // Flips in the payload are caught by the checksum; flips in the
        // header fail the magic/version/length/checksum checks. A flip
        // of the stored checksum itself also fails (payload no longer
        // matches). No flip may decode successfully.
        prop_assert!(decode_snapshot(&flipped).is_err());
    }
}
