//! Bounded, lossy stream buffers.
//!
//! A [`StreamBuffer`] is the in-memory stand-in for the ISP feed's socket
//! buffer: producers `push` without ever blocking; when the buffer is full
//! the record is dropped and counted. Consumers `pop` (non-blocking) or
//! `pop_wait` (blocking with timeout). The loss statistics feed directly
//! into the paper's "loss on the streams" metric, and keeping them per
//! buffer lets the ablation experiments show e.g. the >90% loss of the
//! exact-TTL variant (Appendix A.8).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use crate::latency::{LatencyHistogram, LatencySnapshot};

/// Snapshot of a buffer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Records accepted into the buffer.
    pub accepted: u64,
    /// Records dropped because the buffer was full.
    pub dropped: u64,
    /// Records taken out by the consumer.
    pub consumed: u64,
}

impl BufferStats {
    /// Total records offered to the buffer.
    pub fn offered(&self) -> u64 {
        self.accepted + self.dropped
    }

    /// Loss rate in percent of offered records (0 when nothing offered).
    pub fn loss_rate_pct(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered() as f64 * 100.0
        }
    }
}

struct Shared {
    accepted: AtomicU64,
    dropped: AtomicU64,
    consumed: AtomicU64,
}

/// Queue-residency sampling state, present only on buffers built with
/// [`StreamBuffer::with_latency`]. Every `sample_every`-th accepted
/// record leaves a `(sequence, enqueue time)` marker; the consumer side
/// matches markers against the consumed counter (the queue is FIFO, so
/// the n-th accepted record is the n-th consumed one) and records the
/// elapsed time. The fast path is a single relaxed atomic load — the
/// marker queue's mutex is touched roughly twice per `sample_every`
/// records.
struct LatencyTracker {
    histogram: LatencyHistogram,
    sample_every: u64,
    /// Accepted-sequence markers awaiting consumption, oldest first.
    pending: Mutex<VecDeque<(u64, Instant)>>,
    /// Sequence of the oldest pending marker (0 = none): lets consumers
    /// skip the mutex entirely until a marked record is actually due.
    oldest_pending: AtomicU64,
}

impl LatencyTracker {
    fn new(sample_every: u64) -> Self {
        LatencyTracker {
            histogram: LatencyHistogram::new(),
            sample_every,
            pending: Mutex::new(VecDeque::new()),
            oldest_pending: AtomicU64::new(0),
        }
    }

    /// Called after the accepted counter moved from `prev` to `total`:
    /// leave one marker if the window crossed a sampling boundary.
    fn on_accepted(&self, prev: u64, total: u64) {
        let crossed = total / self.sample_every > prev / self.sample_every;
        if !crossed {
            return;
        }
        // The marked record is the first multiple past `prev`; its
        // enqueue time is "now" (for batches this is the batch's push
        // time, which is what queue residency means for a batch).
        let seq = (prev / self.sample_every + 1) * self.sample_every;
        // A poisoned lock means a panic elsewhere already lost markers;
        // dropping this sample beats propagating the panic into every
        // producer thread.
        let Ok(mut pending) = self.pending.lock() else {
            return;
        };
        pending.push_back((seq, Instant::now()));
        if pending.len() == 1 {
            self.oldest_pending.store(seq, Ordering::Release);
        }
    }

    /// Called after the consumed counter reached `consumed`: resolve any
    /// markers whose record has now left the queue.
    fn on_consumed(&self, consumed: u64) {
        let oldest = self.oldest_pending.load(Ordering::Acquire);
        if oldest == 0 || consumed < oldest {
            return;
        }
        let now = Instant::now();
        // See on_accepted: skip the sample rather than poison-panic.
        let Ok(mut pending) = self.pending.lock() else {
            return;
        };
        while let Some(&(seq, enqueued)) = pending.front() {
            if seq > consumed {
                break;
            }
            pending.pop_front();
            self.histogram
                .record(now.saturating_duration_since(enqueued));
        }
        let next = pending.front().map(|&(seq, _)| seq).unwrap_or(0);
        self.oldest_pending.store(next, Ordering::Release);
    }
}

/// The producer+consumer handle of a bounded lossy buffer.
///
/// Cloning the buffer clones both ends (all clones share the same queue
/// and counters), which is how multiple FillUp/LookUp workers drain one
/// stream and multiple stream readers feed one queue.
pub struct StreamBuffer<T> {
    tx: Sender<T>,
    rx: Receiver<T>,
    shared: Arc<Shared>,
    latency: Option<Arc<LatencyTracker>>,
    capacity: usize,
}

impl<T> Clone for StreamBuffer<T> {
    fn clone(&self) -> Self {
        StreamBuffer {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            shared: Arc::clone(&self.shared),
            latency: self.latency.clone(),
            capacity: self.capacity,
        }
    }
}

impl<T> std::fmt::Debug for StreamBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamBuffer")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> StreamBuffer<T> {
    /// Create a buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stream buffer capacity must be positive");
        let (tx, rx) = bounded(capacity);
        StreamBuffer {
            tx,
            rx,
            shared: Arc::new(Shared {
                accepted: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                consumed: AtomicU64::new(0),
            }),
            latency: None,
            capacity,
        }
    }

    /// Like [`new`](Self::new), but every `sample_every`-th accepted
    /// record is timed from enqueue to dequeue into a shared
    /// [`LatencyHistogram`], readable via
    /// [`latency_snapshot`](Self::latency_snapshot). Sampling keeps the
    /// overhead off the hot path: producers and consumers pay one extra
    /// relaxed atomic load per record, and a short mutex-protected
    /// bookkeeping step only on sampled records.
    pub fn with_latency(capacity: usize, sample_every: u64) -> Self {
        assert!(sample_every > 0, "latency sample interval must be positive");
        let mut buf = Self::new(capacity);
        buf.latency = Some(Arc::new(LatencyTracker::new(sample_every)));
        buf
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Current fill level as a fraction of capacity (0.0–1.0).
    pub fn fill_level(&self) -> f64 {
        self.len() as f64 / self.capacity as f64
    }

    /// Offer one record. Returns `true` if it was accepted, `false` if the
    /// buffer was full and the record was dropped (the stream "loss" of
    /// the paper). Never blocks.
    pub fn push(&self, item: T) -> bool {
        match self.tx.try_send(item) {
            Ok(()) => {
                // ordering: monotonic stats counter; the record itself
                // travels through the channel (which synchronizes), the
                // counter carries no payload and tolerates stale reads.
                let prev = self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                if let Some(lat) = &self.latency {
                    lat.on_accepted(prev, prev + 1);
                }
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                // ordering: stats-only, as above.
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offer every record of a batch, returning how many were accepted.
    /// Records beyond the buffer's free space are dropped and counted,
    /// like [`push`](Self::push) — but the drop/accept counters are
    /// updated once per batch instead of once per record, so pushing a
    /// whole decoded datagram costs two atomic updates, not `2 × n`.
    pub fn push_batch<I>(&self, items: I) -> usize
    where
        I: IntoIterator<Item = T>,
    {
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for item in items {
            match self.tx.try_send(item) {
                Ok(()) => accepted += 1,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => dropped += 1,
            }
        }
        if accepted > 0 {
            // ordering: stats-only counters (see push); records
            // synchronize via the channel, not these.
            let prev = self.shared.accepted.fetch_add(accepted, Ordering::Relaxed);
            if let Some(lat) = &self.latency {
                lat.on_accepted(prev, prev + accepted);
            }
        }
        if dropped > 0 {
            // ordering: stats-only, as above.
            self.shared.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        accepted as usize
    }

    /// Take one record if immediately available.
    pub fn pop(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(item) => {
                // ordering: stats-only counter; receiving the item is
                // what synchronizes with the producer.
                let consumed = self.shared.consumed.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(lat) = &self.latency {
                    lat.on_consumed(consumed);
                }
                Some(item)
            }
            Err(_) => None,
        }
    }

    /// Take one record, waiting up to `timeout` for one to arrive.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(item) => {
                // ordering: stats-only counter, as in pop.
                let consumed = self.shared.consumed.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(lat) = &self.latency {
                    lat.on_consumed(consumed);
                }
                Some(item)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drain up to `max` immediately available records.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max.min(self.len()));
        for _ in 0..max {
            match self.pop() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out
    }

    /// Snapshot of the sampled queue-residency distribution. `None` for
    /// buffers built without [`with_latency`](Self::with_latency).
    pub fn latency_snapshot(&self) -> Option<LatencySnapshot> {
        self.latency.as_ref().map(|lat| lat.histogram.snapshot())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            consumed: self.shared.consumed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pop_preserves_order() {
        let buf = StreamBuffer::new(16);
        for i in 0..10 {
            assert!(buf.push(i));
        }
        assert_eq!(buf.len(), 10);
        let drained: Vec<i32> = std::iter::from_fn(|| buf.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        let s = buf.stats();
        assert_eq!(s.accepted, 10);
        assert_eq!(s.consumed, 10);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.loss_rate_pct(), 0.0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let buf = StreamBuffer::new(4);
        let mut accepted = 0;
        for i in 0..10 {
            if buf.push(i) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        let s = buf.stats();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.dropped, 6);
        assert!((s.loss_rate_pct() - 60.0).abs() < 1e-9);
        assert!((buf.fill_level() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consumer_makes_room_again() {
        let buf = StreamBuffer::new(2);
        assert!(buf.push(1));
        assert!(buf.push(2));
        assert!(!buf.push(3));
        assert_eq!(buf.pop(), Some(1));
        assert!(buf.push(4));
        assert_eq!(buf.pop_batch(10), vec![2, 4]);
        assert!(buf.is_empty());
    }

    #[test]
    fn push_batch_accepts_until_full_and_counts_once() {
        let buf = StreamBuffer::new(4);
        assert!(buf.push(0));
        let accepted = buf.push_batch(1..=10);
        assert_eq!(accepted, 3);
        let s = buf.stats();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.dropped, 7);
        assert_eq!(buf.pop_batch(10), vec![0, 1, 2, 3]);
        // An empty batch is a no-op.
        assert_eq!(buf.push_batch(std::iter::empty::<i32>()), 0);
        assert_eq!(buf.stats().accepted, 4);
    }

    #[test]
    fn pop_wait_times_out_and_receives() {
        let buf: StreamBuffer<u32> = StreamBuffer::new(4);
        assert_eq!(buf.pop_wait(Duration::from_millis(10)), None);
        let producer = buf.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            producer.push(99);
        });
        assert_eq!(buf.pop_wait(Duration::from_secs(2)), Some(99));
        handle.join().unwrap();
    }

    #[test]
    fn clones_share_queue_and_counters() {
        let a: StreamBuffer<u32> = StreamBuffer::new(8);
        let b = a.clone();
        a.push(1);
        b.push(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.pop(), Some(1));
        assert_eq!(a.pop(), Some(2));
        assert_eq!(a.stats().accepted, 2);
        assert_eq!(b.stats().consumed, 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing_when_sized() {
        let buf: StreamBuffer<u64> = StreamBuffer::new(100_000);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let b = buf.clone();
                thread::spawn(move || {
                    for i in 0..10_000u64 {
                        b.push(p * 10_000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let b = buf.clone();
                thread::spawn(move || {
                    let mut n = 0u64;
                    while b.pop().is_some() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 40_000);
        let s = buf.stats();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.consumed, 40_000);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_is_rejected() {
        let _ = StreamBuffer::<u8>::new(0);
    }

    #[test]
    fn plain_buffer_has_no_latency_snapshot() {
        let buf: StreamBuffer<u8> = StreamBuffer::new(4);
        buf.push(1);
        buf.pop();
        assert!(buf.latency_snapshot().is_none());
    }

    #[test]
    fn latency_sampling_times_queue_residency() {
        let buf: StreamBuffer<u32> = StreamBuffer::with_latency(1024, 10);
        for i in 0..100 {
            assert!(buf.push(i));
        }
        // Records sit in the queue for a measurable dwell time.
        thread::sleep(Duration::from_millis(30));
        while buf.pop().is_some() {}
        let snap = buf.latency_snapshot().expect("sampling enabled");
        // 100 accepted / sample_every=10 → exactly 10 samples resolved.
        assert_eq!(snap.count, 10);
        assert!(
            snap.p50_us() >= 20_000,
            "dwell not captured: p50 {}µs",
            snap.p50_us()
        );
    }

    #[test]
    fn latency_sampling_survives_batches_and_concurrency() {
        let buf: StreamBuffer<u64> = StreamBuffer::with_latency(100_000, 7);
        let consumer = {
            let b = buf.clone();
            thread::spawn(move || {
                let mut n = 0u64;
                while n < 40_000 {
                    if b.pop_wait(Duration::from_millis(50)).is_some() {
                        n += 1;
                    }
                }
            })
        };
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let b = buf.clone();
                thread::spawn(move || {
                    for chunk in 0..100u64 {
                        b.push_batch((0..100).map(|i| p * 10_000 + chunk * 100 + i));
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        consumer.join().unwrap();
        let snap = buf.latency_snapshot().unwrap();
        // Batch pushes leave at most one marker per crossed boundary, so
        // the sample count is bounded by accepted/sample_every and every
        // resolved sample is consistent.
        assert!(snap.count > 0, "no samples resolved");
        assert!(snap.count <= 40_000 / 7 + 1);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }
}
