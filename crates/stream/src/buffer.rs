//! Bounded, lossy stream buffers.
//!
//! A [`StreamBuffer`] is the in-memory stand-in for the ISP feed's socket
//! buffer: producers `push` without ever blocking; when the buffer is full
//! the record is dropped and counted. Consumers `pop` (non-blocking) or
//! `pop_wait` (blocking with timeout). The loss statistics feed directly
//! into the paper's "loss on the streams" metric, and keeping them per
//! buffer lets the ablation experiments show e.g. the >90% loss of the
//! exact-TTL variant (Appendix A.8).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};

/// Snapshot of a buffer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Records accepted into the buffer.
    pub accepted: u64,
    /// Records dropped because the buffer was full.
    pub dropped: u64,
    /// Records taken out by the consumer.
    pub consumed: u64,
}

impl BufferStats {
    /// Total records offered to the buffer.
    pub fn offered(&self) -> u64 {
        self.accepted + self.dropped
    }

    /// Loss rate in percent of offered records (0 when nothing offered).
    pub fn loss_rate_pct(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered() as f64 * 100.0
        }
    }
}

struct Shared {
    accepted: AtomicU64,
    dropped: AtomicU64,
    consumed: AtomicU64,
}

/// The producer+consumer handle of a bounded lossy buffer.
///
/// Cloning the buffer clones both ends (all clones share the same queue
/// and counters), which is how multiple FillUp/LookUp workers drain one
/// stream and multiple stream readers feed one queue.
pub struct StreamBuffer<T> {
    tx: Sender<T>,
    rx: Receiver<T>,
    shared: Arc<Shared>,
    capacity: usize,
}

impl<T> Clone for StreamBuffer<T> {
    fn clone(&self) -> Self {
        StreamBuffer {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            shared: Arc::clone(&self.shared),
            capacity: self.capacity,
        }
    }
}

impl<T> std::fmt::Debug for StreamBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamBuffer")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> StreamBuffer<T> {
    /// Create a buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stream buffer capacity must be positive");
        let (tx, rx) = bounded(capacity);
        StreamBuffer {
            tx,
            rx,
            shared: Arc::new(Shared {
                accepted: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                consumed: AtomicU64::new(0),
            }),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Current fill level as a fraction of capacity (0.0–1.0).
    pub fn fill_level(&self) -> f64 {
        self.len() as f64 / self.capacity as f64
    }

    /// Offer one record. Returns `true` if it was accepted, `false` if the
    /// buffer was full and the record was dropped (the stream "loss" of
    /// the paper). Never blocks.
    pub fn push(&self, item: T) -> bool {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offer every record of a batch, returning how many were accepted.
    /// Records beyond the buffer's free space are dropped and counted,
    /// like [`push`](Self::push) — but the drop/accept counters are
    /// updated once per batch instead of once per record, so pushing a
    /// whole decoded datagram costs two atomic updates, not `2 × n`.
    pub fn push_batch<I>(&self, items: I) -> usize
    where
        I: IntoIterator<Item = T>,
    {
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for item in items {
            match self.tx.try_send(item) {
                Ok(()) => accepted += 1,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => dropped += 1,
            }
        }
        if accepted > 0 {
            self.shared.accepted.fetch_add(accepted, Ordering::Relaxed);
        }
        if dropped > 0 {
            self.shared.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        accepted as usize
    }

    /// Take one record if immediately available.
    pub fn pop(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(item) => {
                self.shared.consumed.fetch_add(1, Ordering::Relaxed);
                Some(item)
            }
            Err(_) => None,
        }
    }

    /// Take one record, waiting up to `timeout` for one to arrive.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(item) => {
                self.shared.consumed.fetch_add(1, Ordering::Relaxed);
                Some(item)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drain up to `max` immediately available records.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max.min(self.len()));
        for _ in 0..max {
            match self.pop() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            consumed: self.shared.consumed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pop_preserves_order() {
        let buf = StreamBuffer::new(16);
        for i in 0..10 {
            assert!(buf.push(i));
        }
        assert_eq!(buf.len(), 10);
        let drained: Vec<i32> = std::iter::from_fn(|| buf.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        let s = buf.stats();
        assert_eq!(s.accepted, 10);
        assert_eq!(s.consumed, 10);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.loss_rate_pct(), 0.0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let buf = StreamBuffer::new(4);
        let mut accepted = 0;
        for i in 0..10 {
            if buf.push(i) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        let s = buf.stats();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.dropped, 6);
        assert!((s.loss_rate_pct() - 60.0).abs() < 1e-9);
        assert!((buf.fill_level() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consumer_makes_room_again() {
        let buf = StreamBuffer::new(2);
        assert!(buf.push(1));
        assert!(buf.push(2));
        assert!(!buf.push(3));
        assert_eq!(buf.pop(), Some(1));
        assert!(buf.push(4));
        assert_eq!(buf.pop_batch(10), vec![2, 4]);
        assert!(buf.is_empty());
    }

    #[test]
    fn push_batch_accepts_until_full_and_counts_once() {
        let buf = StreamBuffer::new(4);
        assert!(buf.push(0));
        let accepted = buf.push_batch(1..=10);
        assert_eq!(accepted, 3);
        let s = buf.stats();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.dropped, 7);
        assert_eq!(buf.pop_batch(10), vec![0, 1, 2, 3]);
        // An empty batch is a no-op.
        assert_eq!(buf.push_batch(std::iter::empty::<i32>()), 0);
        assert_eq!(buf.stats().accepted, 4);
    }

    #[test]
    fn pop_wait_times_out_and_receives() {
        let buf: StreamBuffer<u32> = StreamBuffer::new(4);
        assert_eq!(buf.pop_wait(Duration::from_millis(10)), None);
        let producer = buf.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            producer.push(99);
        });
        assert_eq!(buf.pop_wait(Duration::from_secs(2)), Some(99));
        handle.join().unwrap();
    }

    #[test]
    fn clones_share_queue_and_counters() {
        let a: StreamBuffer<u32> = StreamBuffer::new(8);
        let b = a.clone();
        a.push(1);
        b.push(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.pop(), Some(1));
        assert_eq!(a.pop(), Some(2));
        assert_eq!(a.stats().accepted, 2);
        assert_eq!(b.stats().consumed, 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing_when_sized() {
        let buf: StreamBuffer<u64> = StreamBuffer::new(100_000);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let b = buf.clone();
                thread::spawn(move || {
                    for i in 0..10_000u64 {
                        b.push(p * 10_000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let b = buf.clone();
                thread::spawn(move || {
                    let mut n = 0u64;
                    while b.pop().is_some() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 40_000);
        let s = buf.stats();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.consumed, 40_000);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_is_rejected() {
        let _ = StreamBuffer::<u8>::new(0);
    }
}
