//! Rate metering in simulated time.
//!
//! The evaluation plots traffic volume, CPU and memory against the hour of
//! day. [`RateMeter`] buckets per-record counters by a configurable window
//! of *simulated* time so the harness can produce those time series
//! deterministically, independent of how fast the host replays the trace.

use std::time::Instant;

use flowdns_types::{SimDuration, SimTime};

/// One completed window of the meter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Start of the window.
    pub start: SimTime,
    /// Records counted in the window.
    pub count: u64,
    /// Bytes counted in the window.
    pub bytes: u64,
}

impl WindowSample {
    /// Records per simulated second in this window.
    pub fn rate_per_sec(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.count as f64 / secs
        }
    }
}

/// A cheap O(1) summary of everything a meter has seen so far.
///
/// Periodic reporters (the `flowdnsd` stats loop, `core::metrics`) used
/// to re-derive totals and rates from the window list ad hoc; `snapshot`
/// hands them out directly instead.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeterSnapshot {
    /// Total records counted since the meter was created.
    pub count: u64,
    /// Total bytes counted since the meter was created.
    pub bytes: u64,
    /// Timestamp of the first record seen, if any.
    pub first: Option<SimTime>,
    /// Timestamp of the most recent record seen, if any.
    pub last: Option<SimTime>,
    /// Wall-clock seconds since the meter last saw activity (via
    /// [`RateMeter::mark_activity`]) when this snapshot was taken.
    /// `None` until activity is marked — offline/simulated replays that
    /// never mark it are unaffected.
    pub last_activity_secs: Option<f64>,
}

impl MeterSnapshot {
    /// Simulated time spanned from the first to the last record.
    pub fn elapsed(&self) -> SimDuration {
        match (self.first, self.last) {
            (Some(first), Some(last)) => last.saturating_since(first),
            _ => SimDuration::ZERO,
        }
    }

    /// Records per second over the window between `earlier` and this
    /// snapshot, given the *actual wall-clock* width of that window.
    ///
    /// This is the honest live-reporting rate: [`rate_per_sec`] is the
    /// lifetime average over the *simulated* span, which goes stale the
    /// moment a listener idles — it keeps reporting the historical
    /// average no matter how long ago the last record arrived. Periodic
    /// reporters (`flowdnsd`'s stats loop) should difference two
    /// snapshots over their own tick instead; an idle window then
    /// correctly reads 0.
    ///
    /// [`rate_per_sec`]: MeterSnapshot::rate_per_sec
    pub fn rate_over(&self, earlier: &MeterSnapshot, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.count.saturating_sub(earlier.count) as f64 / elapsed_secs
        }
    }

    /// Bytes per second over the window between `earlier` and this
    /// snapshot (see [`rate_over`](MeterSnapshot::rate_over)).
    pub fn bytes_rate_over(&self, earlier: &MeterSnapshot, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.bytes.saturating_sub(earlier.bytes) as f64 / elapsed_secs
        }
    }

    /// Average records per simulated second over the observed span.
    /// A span shorter than one second reports the raw count (the meter
    /// cannot distinguish a rate faster than its resolution).
    pub fn rate_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs < 1.0 {
            self.count as f64
        } else {
            self.count as f64 / secs
        }
    }

    /// Average bytes per simulated second over the observed span.
    pub fn bytes_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs < 1.0 {
            self.bytes as f64
        } else {
            self.bytes as f64 / secs
        }
    }
}

/// Buckets record/byte counts into fixed windows of simulated time.
#[derive(Debug)]
pub struct RateMeter {
    window: SimDuration,
    current_start: Option<SimTime>,
    current_count: u64,
    current_bytes: u64,
    completed: Vec<WindowSample>,
    total_count: u64,
    total_bytes: u64,
    first_seen: Option<SimTime>,
    last_seen: Option<SimTime>,
    last_activity_wall: Option<Instant>,
}

impl RateMeter {
    /// A meter with the given window width.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "meter window must be positive");
        RateMeter {
            window,
            current_start: None,
            current_count: 0,
            current_bytes: 0,
            completed: Vec::new(),
            total_count: 0,
            total_bytes: 0,
            first_seen: None,
            last_seen: None,
            last_activity_wall: None,
        }
    }

    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Record one item observed at `ts` carrying `bytes` bytes.
    ///
    /// Timestamps are expected to be (roughly) non-decreasing; an item
    /// older than the current window is counted in the current window
    /// rather than reopening a closed one.
    pub fn record(&mut self, ts: SimTime, bytes: u64) {
        match self.current_start {
            None => {
                // Align the first window to a multiple of the window width
                // so hourly windows start on the hour.
                let window_us = self.window.as_micros();
                let aligned = SimTime::from_micros(ts.as_micros() / window_us * window_us);
                self.current_start = Some(aligned);
            }
            Some(start) => {
                let mut start = start;
                // Close as many windows as needed to catch up to `ts`.
                while ts.saturating_since(start) >= self.window {
                    self.completed.push(WindowSample {
                        start,
                        count: self.current_count,
                        bytes: self.current_bytes,
                    });
                    self.current_count = 0;
                    self.current_bytes = 0;
                    start += self.window;
                }
                self.current_start = Some(start);
            }
        }
        self.current_count += 1;
        self.current_bytes += bytes;
        self.total_count += 1;
        self.total_bytes += bytes;
        self.first_seen = Some(match self.first_seen {
            Some(prev) if prev < ts => prev,
            _ => ts,
        });
        self.last_seen = Some(match self.last_seen {
            Some(prev) if prev > ts => prev,
            _ => ts,
        });
    }

    /// Note wall-clock activity on the meter. Live listeners call this
    /// once per received batch (one `Instant::now()` per batch, not per
    /// record) so snapshots can report how long the feed has been
    /// silent; simulated replays simply never call it.
    pub fn mark_activity(&mut self) {
        self.last_activity_wall = Some(Instant::now());
    }

    /// A cheap O(1) summary of the totals and span seen so far.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            count: self.total_count,
            bytes: self.total_bytes,
            first: self.first_seen,
            last: self.last_seen,
            last_activity_secs: self.last_activity_wall.map(|t| t.elapsed().as_secs_f64()),
        }
    }

    /// Close the current window and return every completed window.
    pub fn finish(mut self) -> Vec<WindowSample> {
        if let Some(start) = self.current_start {
            if self.current_count > 0 {
                self.completed.push(WindowSample {
                    start,
                    count: self.current_count,
                    bytes: self.current_bytes,
                });
            }
        }
        self.completed
    }

    /// Completed windows so far (not including the currently open one).
    pub fn completed(&self) -> &[WindowSample] {
        &self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_window() {
        let mut m = RateMeter::new(SimDuration::from_secs(60));
        for s in [0u64, 10, 59, 61, 125, 126] {
            m.record(SimTime::from_secs(s), 100);
        }
        let windows = m.finish();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].count, 3);
        assert_eq!(windows[1].count, 1);
        assert_eq!(windows[2].count, 2);
        assert_eq!(windows[0].bytes, 300);
        assert_eq!(windows[0].start, SimTime::ZERO);
        assert_eq!(windows[1].start, SimTime::from_secs(60));
    }

    #[test]
    fn empty_gap_windows_are_emitted_as_zero() {
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        m.record(SimTime::from_secs(5), 1);
        m.record(SimTime::from_secs(35), 1);
        let windows = m.finish();
        // Windows: [0,10) with 1, [10,20) 0, [20,30) 0, [30,40) 1.
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].count, 0);
        assert_eq!(windows[2].count, 0);
        assert_eq!(windows[3].count, 1);
    }

    #[test]
    fn first_window_is_aligned() {
        let mut m = RateMeter::new(SimDuration::from_hours(1));
        m.record(SimTime::from_secs(3_700), 5);
        let windows = m.finish();
        assert_eq!(windows[0].start, SimTime::from_secs(3_600));
    }

    #[test]
    fn rate_per_sec() {
        let w = WindowSample {
            start: SimTime::ZERO,
            count: 600,
            bytes: 0,
        };
        assert!((w.rate_per_sec(SimDuration::from_secs(60)) - 10.0).abs() < 1e-9);
        assert_eq!(w.rate_per_sec(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn out_of_order_records_do_not_reopen_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        m.record(SimTime::from_secs(15), 1);
        m.record(SimTime::from_secs(3), 1); // late arrival
        let windows = m.finish();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].count, 2);
    }

    #[test]
    fn empty_meter_finishes_empty() {
        let m = RateMeter::new(SimDuration::from_secs(1));
        assert!(m.finish().is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_window_is_rejected() {
        let _ = RateMeter::new(SimDuration::ZERO);
    }

    #[test]
    fn snapshot_reports_totals_and_rate() {
        let mut m = RateMeter::new(SimDuration::from_secs(60));
        for s in 0..10u64 {
            m.record(SimTime::from_secs(s), 200);
        }
        let snap = m.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.bytes, 2_000);
        assert_eq!(snap.first, Some(SimTime::ZERO));
        assert_eq!(snap.last, Some(SimTime::from_secs(9)));
        assert_eq!(snap.elapsed(), SimDuration::from_secs(9));
        assert!((snap.rate_per_sec() - 10.0 / 9.0).abs() < 1e-9);
        assert!((snap.bytes_per_sec() - 2_000.0 / 9.0).abs() < 1e-9);
        // Snapshot does not consume the meter; windows still finish.
        assert_eq!(m.finish().len(), 1);
    }

    #[test]
    fn snapshot_of_empty_meter_is_zero() {
        let m = RateMeter::new(SimDuration::from_secs(1));
        let snap = m.snapshot();
        assert_eq!(snap, MeterSnapshot::default());
        assert_eq!(snap.rate_per_sec(), 0.0);
        assert_eq!(snap.bytes_per_sec(), 0.0);
        assert_eq!(snap.elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn snapshot_survives_window_rollover_and_late_records() {
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        m.record(SimTime::from_secs(5), 1);
        m.record(SimTime::from_secs(25), 2);
        m.record(SimTime::from_secs(7), 3); // late arrival
        let snap = m.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.bytes, 6);
        // Late records never move `last` backwards...
        assert_eq!(snap.last, Some(SimTime::from_secs(25)));
        // ...and an out-of-order start widens `first` downwards, so the
        // span (and hence the rate) reflects the true extremes.
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        m.record(SimTime::from_secs(100), 1);
        m.record(SimTime::from_secs(10), 1);
        m.record(SimTime::from_secs(50), 1);
        let snap = m.snapshot();
        assert_eq!(snap.first, Some(SimTime::from_secs(10)));
        assert_eq!(snap.last, Some(SimTime::from_secs(100)));
        assert_eq!(snap.elapsed(), SimDuration::from_secs(90));
    }

    #[test]
    fn idle_meter_reads_zero_over_a_live_window() {
        // The stale-rate fix: a meter that saw traffic once keeps a
        // non-zero lifetime average forever, but differencing two
        // snapshots over a reporting tick reads 0 while idle.
        let mut m = RateMeter::new(SimDuration::from_secs(60));
        for s in 0..100u64 {
            m.record(SimTime::from_secs(s), 10);
        }
        m.mark_activity();
        let tick_start = m.snapshot();
        // ... a stats tick elapses with no traffic ...
        let tick_end = m.snapshot();
        assert!(tick_start.rate_per_sec() > 0.0, "lifetime average is stale");
        assert_eq!(tick_end.rate_over(&tick_start, 5.0), 0.0);
        assert_eq!(tick_end.bytes_rate_over(&tick_start, 5.0), 0.0);
        // Activity in the window shows up as the window's own rate.
        m.record(SimTime::from_secs(200), 10);
        m.record(SimTime::from_secs(201), 10);
        let after = m.snapshot();
        assert!((after.rate_over(&tick_start, 2.0) - 1.0).abs() < 1e-9);
        assert!((after.bytes_rate_over(&tick_start, 2.0) - 10.0).abs() < 1e-9);
        // Degenerate window widths cannot divide by zero.
        assert_eq!(after.rate_over(&tick_start, 0.0), 0.0);
    }

    #[test]
    fn last_activity_is_tracked_in_wall_time() {
        let mut m = RateMeter::new(SimDuration::from_secs(60));
        assert_eq!(m.snapshot().last_activity_secs, None);
        m.record(SimTime::from_secs(1), 1);
        // record() alone never touches the wall clock (simulated replays
        // stay deterministic); listeners mark activity per batch.
        assert_eq!(m.snapshot().last_activity_secs, None);
        m.mark_activity();
        let secs = m.snapshot().last_activity_secs.expect("marked");
        assert!((0.0..1.0).contains(&secs), "just marked: {secs}");
    }

    #[test]
    fn sub_second_span_reports_raw_count() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.record(SimTime::from_millis(100), 50);
        m.record(SimTime::from_millis(200), 50);
        let snap = m.snapshot();
        assert_eq!(snap.rate_per_sec(), 2.0);
        assert_eq!(snap.bytes_per_sec(), 100.0);
    }
}
