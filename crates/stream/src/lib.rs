//! # flowdns-stream
//!
//! Stream substrate for the FlowDNS reproduction.
//!
//! The paper's input streams "have an internal buffer to be used in case
//! the reading speed is less than their actual rate. If that buffer
//! overflows, the streams start to drop data" — and *loss* throughout the
//! paper means exactly those drops. This crate models that mechanism:
//!
//! * [`buffer`] — [`StreamBuffer`], a bounded producer/consumer queue that
//!   counts drops instead of blocking the producer (live feeds never wait),
//! * [`latency`] — [`LatencyHistogram`], the lock-free log-bucketed
//!   histogram behind [`StreamBuffer::with_latency`]'s sampled
//!   enqueue→dequeue residency measurement,
//! * [`meter`] — [`RateMeter`], per-second rate and backlog accounting in
//!   simulated time,
//! * [`replay`] — utilities to merge and replay timestamped record sets as
//!   ordered streams, optionally split into the N parallel streams the
//!   ISPs deliver (2 DNS + 26 NetFlow at the large ISP),
//! * [`spsc`] — [`ShardedChannel`], per-shard single-producer /
//!   single-consumer rings routed by IP key at decode time — the
//!   shared-nothing ingress of the sharded correlator.

// `deny`, not `forbid`: the contained exception is the SPSC ring in
// `spsc`, whose slot array needs `UnsafeCell` + `MaybeUninit` to move
// records between exactly one producer and one consumer without a lock.
// Everything else in the crate is unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod latency;
pub mod meter;
pub mod replay;
pub mod spsc;

pub use buffer::{BufferStats, StreamBuffer};
pub use latency::{
    bucket_index_us, bucket_upper_bound_us, LatencyHistogram, LatencySnapshot, LATENCY_BUCKETS,
};
pub use meter::{MeterSnapshot, RateMeter};
pub use replay::{merge_by_time, split_round_robin, StreamSplitter};
pub use spsc::{LaneConsumer, ShardProducer, ShardedChannel};
