//! Replay utilities: merging and splitting timestamped record sets.
//!
//! The ISPs deliver the data pre-partitioned "for load-balancing purposes"
//! (2 DNS streams, 26 NetFlow streams at the large ISP). The generator
//! produces one logical record sequence per kind; these helpers split it
//! into N per-stream sequences and merge per-stream sequences back into
//! global time order, which the correlator's clear-up logic relies on.

use flowdns_types::SimTime;

/// Split an ordered record sequence into `n` streams round-robin, which is
/// how load balancers shard a feed without inspecting the records.
pub fn split_round_robin<T>(records: Vec<T>, n: usize) -> Vec<Vec<T>> {
    assert!(n > 0, "cannot split into zero streams");
    let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, record) in records.into_iter().enumerate() {
        out[i % n].push(record);
    }
    out
}

/// Merge several individually time-ordered streams into one globally
/// time-ordered sequence (a k-way merge). `key` extracts the timestamp.
pub fn merge_by_time<T, F>(mut streams: Vec<Vec<T>>, key: F) -> Vec<T>
where
    F: Fn(&T) -> SimTime,
{
    // Reverse each stream so we can pop from the back cheaply.
    for s in streams.iter_mut() {
        s.reverse();
    }
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, SimTime)> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some(item) = s.last() {
                let ts = key(item);
                match best {
                    None => best = Some((i, ts)),
                    Some((_, best_ts)) if ts < best_ts => best = Some((i, ts)),
                    _ => {}
                }
            }
        }
        match best {
            Some((i, _)) => out.push(streams[i].pop().expect("stream non-empty")),
            None => break,
        }
    }
    out
}

/// Splits a logical feed into per-stream sub-feeds by hashing a record key,
/// so that records for the same key always land on the same stream (the
/// alternative sharding strategy to round-robin).
#[derive(Debug, Clone, Copy)]
pub struct StreamSplitter {
    n: usize,
}

impl StreamSplitter {
    /// A splitter into `n` streams.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cannot split into zero streams");
        StreamSplitter { n }
    }

    /// Number of output streams.
    pub fn stream_count(&self) -> usize {
        self.n
    }

    /// The stream index for a hashable key.
    pub fn index_for<K: std::hash::Hash>(&self, key: &K) -> usize {
        use std::hash::Hasher;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.n as u64) as usize
    }

    /// Partition records by key.
    pub fn split_by_key<T, K, F>(&self, records: Vec<T>, key: F) -> Vec<Vec<T>>
    where
        K: std::hash::Hash,
        F: Fn(&T) -> K,
    {
        let mut out: Vec<Vec<T>> = (0..self.n).map(|_| Vec::new()).collect();
        for record in records {
            let idx = self.index_for(&key(&record));
            out[idx].push(record);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_distributes_evenly() {
        let records: Vec<u32> = (0..10).collect();
        let streams = split_round_robin(records, 3);
        assert_eq!(streams.len(), 3);
        assert_eq!(streams[0], vec![0, 3, 6, 9]);
        assert_eq!(streams[1], vec![1, 4, 7]);
        assert_eq!(streams[2], vec![2, 5, 8]);
    }

    #[test]
    fn merge_restores_global_order() {
        let a = vec![(SimTime::from_secs(1), "a1"), (SimTime::from_secs(4), "a2")];
        let b = vec![
            (SimTime::from_secs(2), "b1"),
            (SimTime::from_secs(3), "b2"),
            (SimTime::from_secs(5), "b3"),
        ];
        let merged = merge_by_time(vec![a, b], |r| r.0);
        let labels: Vec<&str> = merged.iter().map(|r| r.1).collect();
        assert_eq!(labels, vec!["a1", "b1", "b2", "a2", "b3"]);
    }

    #[test]
    fn merge_is_stable_for_equal_timestamps() {
        let a = vec![(SimTime::from_secs(1), "a")];
        let b = vec![(SimTime::from_secs(1), "b")];
        let merged = merge_by_time(vec![a, b], |r| r.0);
        // First stream wins ties.
        assert_eq!(merged[0].1, "a");
        assert_eq!(merged[1].1, "b");
    }

    #[test]
    fn split_then_merge_is_identity_on_sorted_input() {
        let records: Vec<(SimTime, u32)> = (0..100)
            .map(|i| (SimTime::from_secs(i), i as u32))
            .collect();
        let streams = split_round_robin(records.clone(), 7);
        let merged = merge_by_time(streams, |r| r.0);
        assert_eq!(merged, records);
    }

    #[test]
    fn splitter_is_deterministic_and_covers_all_streams() {
        let splitter = StreamSplitter::new(4);
        assert_eq!(splitter.stream_count(), 4);
        let records: Vec<u64> = (0..1000).collect();
        let streams = splitter.split_by_key(records, |r| *r);
        assert_eq!(streams.iter().map(|s| s.len()).sum::<usize>(), 1000);
        assert!(streams.iter().all(|s| !s.is_empty()));
        // Same key → same stream.
        assert_eq!(splitter.index_for(&42u64), splitter.index_for(&42u64));
    }

    #[test]
    #[should_panic]
    fn zero_stream_split_panics() {
        let _ = split_round_robin(vec![1, 2, 3], 0);
    }
}
