//! Single-producer/single-consumer rings and the key-routed
//! [`ShardedChannel`] built from them.
//!
//! The shared [`crate::StreamBuffer`] serializes every producer and
//! consumer on one queue; at saturation the queue itself becomes the
//! bottleneck and queueing delay explodes long before the workers run
//! out of CPU. The sharded correlator instead routes each record to a
//! *lane* (one per correlator shard) at decode time, and each
//! (producer thread, lane) pair gets its own bounded SPSC [`Ring`]:
//! the hot path is two plain writes plus one `Release` store on the
//! producer side and one `Acquire` load plus a `Release` store on the
//! consumer side — no locks, no CAS loops, no shared tail.
//!
//! Like every stream buffer in this workspace the rings are **lossy**:
//! a full ring drops the record and counts it (the paper's stream
//! loss), producers never block. Per-lane counters aggregate accepted /
//! dropped / consumed across all of a lane's rings, and every
//! `sample_every`-th record a producer pushes carries an enqueue
//! timestamp that the consumer resolves into the lane's
//! [`LatencyHistogram`] — the same sampled queue-residency measurement
//! [`StreamBuffer::with_latency`](crate::StreamBuffer::with_latency)
//! provides, now per shard.

// The ring slots are `UnsafeCell<MaybeUninit<..>>`; the module-level
// rationale for each `unsafe` block is the SPSC contract: exactly one
// producer half and one consumer half exist per ring, the producer only
// writes slots in `[tail, head + capacity)` and the consumer only reads
// slots in `[head, tail)`, with the `Release`/`Acquire` pair on the
// position counters ordering the slot accesses.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::buffer::BufferStats;
use crate::latency::{LatencyHistogram, LatencySnapshot};

/// Pad-and-align wrapper keeping the producer and consumer position
/// counters on separate cache lines, so the two sides of a ring never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
struct CachePadded<T>(T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// One slot: the record plus the optional enqueue timestamp of a
/// latency-sampled record.
struct Slot<T>(UnsafeCell<MaybeUninit<(T, Option<Instant>)>>);

/// The state shared between a ring's producer and consumer halves.
///
/// `head` is the consumer position (next slot to read), `tail` the
/// producer position (next slot to write); both increase without bound
/// and are reduced modulo the power-of-two capacity on access. The ring
/// holds `tail - head` records.
struct Ring<T> {
    mask: usize,
    slots: Box<[Slot<T>]>,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: a Ring is only driven through its unique producer/consumer
// halves: the producer writes a slot strictly before the Release store
// advancing `tail`, the consumer reads it strictly after the Acquire
// load observing that store (and symmetrically for reuse via `head`),
// so no slot is touched from two threads and Send only needs T: Send.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: shared references to a Ring only touch the atomic position
// counters (`len`/`is_empty` on arbitrary threads); the slot array is
// only dereferenced by the two unique halves as described above.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn with_capacity(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(2).next_power_of_two();
        Arc::new(Ring {
            mask: capacity - 1,
            slots: (0..capacity)
                .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
                .collect(),
            head: CachePadded::default(),
            tail: CachePadded::default(),
        })
    }

    /// Records currently in the ring. Racy by nature (either side may be
    /// mid-advance) but always within one record of the truth — fine for
    /// depth gauges and fill-level health checks.
    fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drain the records still in flight so their Drop impls run.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut pos = head;
        while pos != tail {
            let slot = &self.slots[pos & self.mask];
            // SAFETY: `&mut self` proves both halves are gone; every
            // slot in [head, tail) was fully written by the producer and
            // not yet consumed, so it holds an initialized value.
            unsafe { (*slot.0.get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// The producer half of one ring: plain local positions plus a cached
/// copy of the consumer position so the common push touches no shared
/// state beyond one `Release` store.
struct RingProducer<T> {
    ring: Arc<Ring<T>>,
    tail: usize,
    cached_head: usize,
}

impl<T> RingProducer<T> {
    /// `true` if accepted, `false` if the ring was full (record dropped).
    fn push(&mut self, item: T, stamp: Option<Instant>) -> bool {
        if self.tail.wrapping_sub(self.cached_head) > self.ring.mask {
            self.cached_head = self.ring.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) > self.ring.mask {
                return false;
            }
        }
        let slot = &self.ring.slots[self.tail & self.ring.mask];
        // SAFETY: `tail - cached_head <= mask` proves the consumer has
        // finished with this slot (its Acquire-loaded head covers it),
        // and this thread holds the unique producer half, so the write
        // is exclusive. The Release store below publishes it.
        unsafe { (*slot.0.get()).write((item, stamp)) };
        self.tail = self.tail.wrapping_add(1);
        self.ring.tail.store(self.tail, Ordering::Release);
        true
    }
}

/// The consumer half of one ring.
struct RingConsumer<T> {
    ring: Arc<Ring<T>>,
    head: usize,
    cached_tail: usize,
}

impl<T> RingConsumer<T> {
    fn pop(&mut self) -> Option<(T, Option<Instant>)> {
        if self.head == self.cached_tail {
            self.cached_tail = self.ring.tail.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let slot = &self.ring.slots[self.head & self.ring.mask];
        // SAFETY: `head < cached_tail` (Acquire-loaded from the
        // producer's Release store) proves the slot was fully written,
        // and this thread holds the unique consumer half. The Release
        // store below hands the slot back for reuse.
        let value = unsafe { (*slot.0.get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.ring.head.store(self.head, Ordering::Release);
        Some(value)
    }

    fn is_empty(&self) -> bool {
        self.ring.len() == 0
    }
}

fn ring_pair<T>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>, Arc<Ring<T>>) {
    let ring = Ring::with_capacity(capacity);
    (
        RingProducer {
            ring: Arc::clone(&ring),
            tail: 0,
            cached_head: 0,
        },
        RingConsumer {
            ring: Arc::clone(&ring),
            head: 0,
            cached_tail: 0,
        },
        ring,
    )
}

/// One lane (= one correlator shard) of a [`ShardedChannel`]: the
/// consumer halves awaiting adoption by the lane's worker, the ring
/// handles kept for depth gauges, and the lane-wide counters.
struct Lane<T> {
    /// Consumer halves registered by producers and not yet adopted by
    /// the lane's worker. Locked only on registration and adoption.
    incoming: Mutex<Vec<RingConsumer<T>>>,
    /// Every ring ever registered on this lane (for depth/fill gauges).
    rings: Mutex<Vec<Arc<Ring<T>>>>,
    /// Monotonic count of registered rings; the consumer compares it to
    /// its adopted count with one Acquire load to detect newcomers
    /// without touching the mutex.
    registered: AtomicUsize,
    accepted: AtomicU64,
    dropped: AtomicU64,
    consumed: AtomicU64,
    latency: LatencyHistogram,
}

impl<T> Default for Lane<T> {
    fn default() -> Self {
        Lane {
            incoming: Mutex::new(Vec::new()),
            rings: Mutex::new(Vec::new()),
            registered: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }
}

/// A fixed set of lanes, each fed by per-producer SPSC rings and
/// drained by exactly one worker.
///
/// Producers call [`ShardedChannel::producer`] once per thread and get
/// a private ring per lane; the routing decision (which lane a record
/// belongs to) is the caller's, made at decode time from the record's
/// IP key. Each lane's worker builds one [`LaneConsumer`] and drains
/// whatever rings have registered, adopting late-registering producers
/// on the fly.
pub struct ShardedChannel<T> {
    lanes: Vec<Lane<T>>,
    ring_capacity: usize,
    sample_every: u64,
}

impl<T> std::fmt::Debug for ShardedChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedChannel")
            .field("lanes", &self.lanes.len())
            .field("ring_capacity", &self.ring_capacity)
            .finish()
    }
}

impl<T> ShardedChannel<T> {
    /// A channel with `lanes` lanes whose rings hold `ring_capacity`
    /// records each (rounded up to a power of two); every
    /// `sample_every`-th record each producer pushes is latency-stamped
    /// (0 disables sampling).
    pub fn new(lanes: usize, ring_capacity: usize, sample_every: u64) -> Self {
        assert!(lanes > 0, "a sharded channel needs at least one lane");
        assert!(ring_capacity > 0, "ring capacity must be positive");
        ShardedChannel {
            lanes: (0..lanes).map(|_| Lane::default()).collect(),
            ring_capacity,
            sample_every,
        }
    }

    /// Number of lanes (= correlator shards).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Register a new producer: one private ring per lane. Call once
    /// per producing thread and reuse the handle — registration takes
    /// each lane's mutex.
    pub fn producer(&self) -> ShardProducer<T> {
        let mut producers = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            let (producer, consumer, ring) = ring_pair(self.ring_capacity);
            // A poisoned lane mutex means a worker panicked mid-
            // registration elsewhere; the producer still works, the
            // ring just never gets drained (records count as
            // dropped-by-overflow once it fills).
            if let (Ok(mut incoming), Ok(mut rings)) = (lane.incoming.lock(), lane.rings.lock()) {
                incoming.push(consumer);
                rings.push(ring);
            }
            lane.registered.fetch_add(1, Ordering::Release);
            producers.push(producer);
        }
        ShardProducer {
            producers,
            pushed: vec![0; self.lanes.len()],
            sample_every: self.sample_every,
        }
    }

    /// The single consumer handle of `lane`. Build exactly one per lane
    /// — the rings are SPSC, so two workers draining one lane would
    /// race for the same consumer halves (the second one finds the
    /// lane's incoming list already empty).
    pub fn consumer(&self, lane: usize) -> LaneConsumer<'_, T> {
        LaneConsumer {
            lane: &self.lanes[lane],
            rings: Vec::new(),
            adopted: 0,
            next: 0,
        }
    }

    /// Lane-wide accepted/dropped/consumed counters.
    pub fn lane_stats(&self, lane: usize) -> BufferStats {
        let lane = &self.lanes[lane];
        BufferStats {
            accepted: lane.accepted.load(Ordering::Relaxed),
            dropped: lane.dropped.load(Ordering::Relaxed),
            consumed: lane.consumed.load(Ordering::Relaxed),
        }
    }

    /// Records currently queued across all of `lane`'s rings.
    pub fn lane_depth(&self, lane: usize) -> usize {
        match self.lanes[lane].rings.lock() {
            Ok(rings) => rings.iter().map(|ring| ring.len()).sum(),
            Err(_) => 0,
        }
    }

    /// The fullest ring of `lane` as a fraction of its capacity
    /// (0.0–1.0) — the lane's saturation signal for health checks.
    pub fn lane_fill_level(&self, lane: usize) -> f64 {
        match self.lanes[lane].rings.lock() {
            Ok(rings) => rings
                .iter()
                .map(|ring| ring.len() as f64 / ring.capacity() as f64)
                .fold(0.0f64, f64::max),
            Err(_) => 0.0,
        }
    }

    /// Snapshot of `lane`'s sampled enqueue→dequeue residency.
    pub fn lane_latency(&self, lane: usize) -> LatencySnapshot {
        self.lanes[lane].latency.snapshot()
    }

    /// Are all rings of `lane` empty?
    pub fn lane_is_empty(&self, lane: usize) -> bool {
        self.lane_depth(lane) == 0
    }
}

/// A registered producer: one private SPSC ring per lane.
///
/// Not `Clone` and not shareable — each producing thread registers its
/// own handle via [`ShardedChannel::producer`].
pub struct ShardProducer<T> {
    producers: Vec<RingProducer<T>>,
    /// Per-lane push counts, for the 1-in-`sample_every` stamping.
    pushed: Vec<u64>,
    sample_every: u64,
}

impl<T> std::fmt::Debug for ShardProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardProducer")
            .field("lanes", &self.producers.len())
            .finish()
    }
}

impl<T> ShardProducer<T> {
    /// Number of lanes this producer can push to.
    pub fn lanes(&self) -> usize {
        self.producers.len()
    }

    fn stamp(&mut self, lane: usize) -> Option<Instant> {
        if self.sample_every == 0 {
            return None;
        }
        let n = self.pushed[lane];
        self.pushed[lane] = n + 1;
        (n % self.sample_every == 0).then(Instant::now)
    }

    /// Offer one record to `lane`'s ring, without updating the lane
    /// counters: the caller batches counter updates via
    /// [`note_accepted`](Self::note_accepted) /
    /// [`note_dropped`](Self::note_dropped) once per routed batch.
    /// Returns `true` if accepted, `false` if the ring was full.
    pub fn push_uncounted(&mut self, lane: usize, item: T) -> bool {
        let stamp = self.stamp(lane);
        self.producers[lane].push(item, stamp)
    }

    /// Offer one record to `lane`, updating the lane counters.
    pub fn push(&mut self, channel: &ShardedChannel<T>, lane: usize, item: T) -> bool {
        if self.push_uncounted(lane, item) {
            self.note_accepted(channel, lane, 1);
            true
        } else {
            self.note_dropped(channel, lane, 1);
            false
        }
    }

    /// Offer a whole batch to `lane`, returning how many were accepted;
    /// the lane counters are updated once for the batch.
    pub fn push_batch<I>(&mut self, channel: &ShardedChannel<T>, lane: usize, items: I) -> usize
    where
        I: IntoIterator<Item = T>,
    {
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for item in items {
            if self.push_uncounted(lane, item) {
                accepted += 1;
            } else {
                dropped += 1;
            }
        }
        self.note_accepted(channel, lane, accepted);
        self.note_dropped(channel, lane, dropped);
        accepted as usize
    }

    /// Fold `n` accepted records into `lane`'s counters (no-op for 0).
    pub fn note_accepted(&self, channel: &ShardedChannel<T>, lane: usize, n: u64) {
        if n > 0 {
            // ordering: stats-only counter; the records themselves are
            // published by the ring's Release/Acquire position pair.
            channel.lanes[lane].accepted.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Fold `n` dropped records into `lane`'s counters (no-op for 0).
    pub fn note_dropped(&self, channel: &ShardedChannel<T>, lane: usize, n: u64) {
        if n > 0 {
            // ordering: stats-only, as in note_accepted.
            channel.lanes[lane].dropped.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// The single consumer of one lane: drains all rings registered on the
/// lane, adopting newly registered producers between pops.
pub struct LaneConsumer<'a, T> {
    lane: &'a Lane<T>,
    rings: Vec<RingConsumer<T>>,
    /// How many registered rings this consumer has adopted so far.
    adopted: usize,
    /// Round-robin cursor over `rings`.
    next: usize,
}

impl<T> std::fmt::Debug for LaneConsumer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneConsumer")
            .field("adopted", &self.adopted)
            .finish()
    }
}

impl<T> LaneConsumer<'_, T> {
    /// Adopt consumer halves registered since the last check. Takes the
    /// lane mutex only when the registration counter actually moved, so
    /// the steady-state drain never locks.
    fn adopt_new_rings(&mut self) {
        if self.lane.registered.load(Ordering::Acquire) == self.adopted {
            return;
        }
        if let Ok(mut incoming) = self.lane.incoming.lock() {
            self.adopted += incoming.len();
            self.rings.append(&mut incoming);
        }
    }

    /// Take one record, round-robin across this lane's rings. Returns
    /// `None` when every ring is momentarily empty.
    pub fn pop(&mut self) -> Option<T> {
        let rings = self.rings.len();
        for _ in 0..rings {
            let index = self.next;
            self.next = if index + 1 == rings { 0 } else { index + 1 };
            if let Some((item, stamp)) = self.rings[index].pop() {
                // ordering: stats-only counter, uncontended (single
                // consumer per lane); carries no payload.
                self.lane.consumed.fetch_add(1, Ordering::Relaxed);
                if let Some(enqueued) = stamp {
                    self.lane.latency.record(enqueued.elapsed());
                }
                return Some(item);
            }
        }
        None
    }

    /// Like [`pop`](Self::pop), but first adopts any newly registered
    /// producer rings. Call at the top of a drain round.
    pub fn pop_adopting(&mut self) -> Option<T> {
        self.adopt_new_rings();
        self.pop()
    }

    /// Are all adopted rings empty? (Unadopted rings are picked up by
    /// the next [`pop_adopting`](Self::pop_adopting); callers check
    /// emptiness via the channel's lane view for shutdown decisions.)
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(RingConsumer::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn ring_preserves_fifo_order_and_capacity() {
        let (mut tx, mut rx, ring) = ring_pair::<u32>(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..8 {
            assert!(tx.push(i, None));
        }
        assert!(!tx.push(99, None), "9th push into a ring of 8 must drop");
        assert_eq!(ring.len(), 8);
        for i in 0..8 {
            assert_eq!(rx.pop().map(|(v, _)| v), Some(i));
        }
        assert!(rx.pop().is_none());
        // Space freed by the consumer is reusable (wraparound).
        for round in 0..5u32 {
            assert!(tx.push(round, None));
            assert_eq!(rx.pop().map(|(v, _)| v), Some(round));
        }
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        let (mut tx, _rx, ring) = ring_pair::<u8>(100);
        assert_eq!(ring.capacity(), 128);
        for _ in 0..128 {
            assert!(tx.push(0, None));
        }
        assert!(!tx.push(0, None));
    }

    #[test]
    fn ring_cross_thread_transfer_is_lossless() {
        let (mut tx, mut rx, _ring) = ring_pair::<u64>(1024);
        let producer = thread::spawn(move || {
            let mut sent = 0u64;
            for i in 0..100_000u64 {
                while !tx.push(i, None) {
                    thread::yield_now();
                }
                sent += 1;
            }
            sent
        });
        let mut expected = 0u64;
        while expected < 100_000 {
            if let Some((v, _)) = rx.pop() {
                assert_eq!(v, expected, "FIFO order violated");
                expected += 1;
            }
        }
        assert_eq!(producer.join().unwrap(), 100_000);
    }

    #[test]
    fn dropped_ring_drops_in_flight_records() {
        let counted = Arc::new(AtomicU64::new(0));
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx, ring) = ring_pair::<Tracked>(16);
        for _ in 0..10 {
            assert!(tx.push(Tracked(Arc::clone(&counted)), None));
        }
        drop(rx.pop()); // one consumed normally
        drop((tx, rx, ring));
        assert_eq!(counted.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn channel_routes_and_counts_per_lane() {
        let channel: ShardedChannel<u32> = ShardedChannel::new(2, 64, 0);
        let mut producer = channel.producer();
        assert_eq!(producer.lanes(), 2);
        assert_eq!(producer.push_batch(&channel, 0, 0..10), 10);
        assert!(producer.push(&channel, 1, 42));
        assert_eq!(channel.lane_depth(0), 10);
        assert_eq!(channel.lane_depth(1), 1);
        let mut c0 = channel.consumer(0);
        let drained: Vec<u32> = std::iter::from_fn(|| c0.pop_adopting()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        let stats0 = channel.lane_stats(0);
        assert_eq!(stats0.accepted, 10);
        assert_eq!(stats0.consumed, 10);
        assert_eq!(stats0.dropped, 0);
        assert_eq!(channel.lane_stats(1).accepted, 1);
        assert!(channel.lane_is_empty(0));
        assert!(!channel.lane_is_empty(1));
    }

    #[test]
    fn full_lane_drops_and_counts() {
        let channel: ShardedChannel<u32> = ShardedChannel::new(1, 8, 0);
        let mut producer = channel.producer();
        let accepted = producer.push_batch(&channel, 0, 0..100);
        assert_eq!(accepted, 8);
        let stats = channel.lane_stats(0);
        assert_eq!(stats.accepted, 8);
        assert_eq!(stats.dropped, 92);
        assert!((channel.lane_fill_level(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consumer_adopts_late_producers() {
        let channel: ShardedChannel<u32> = ShardedChannel::new(1, 64, 0);
        let mut early = channel.producer();
        early.push(&channel, 0, 1);
        let mut consumer = channel.consumer(0);
        assert_eq!(consumer.pop_adopting(), Some(1));
        // A producer registering *after* the consumer started must be
        // picked up without rebuilding the consumer.
        let mut late = channel.producer();
        late.push(&channel, 0, 2);
        assert_eq!(consumer.pop_adopting(), Some(2));
        assert!(consumer.pop_adopting().is_none());
        assert!(consumer.is_empty());
    }

    #[test]
    fn multi_producer_multi_lane_totals_add_up() {
        let channel: Arc<ShardedChannel<u64>> = Arc::new(ShardedChannel::new(4, 1 << 14, 0));
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let channel = Arc::clone(&channel);
                thread::spawn(move || {
                    let mut producer = channel.producer();
                    for i in 0..20_000u64 {
                        let lane = (i % 4) as usize;
                        while !producer.push(&channel, lane, p * 100_000 + i) {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|lane| {
                let channel = Arc::clone(&channel);
                thread::spawn(move || {
                    let mut consumer = channel.consumer(lane);
                    let mut n = 0u64;
                    let deadline = Instant::now() + Duration::from_secs(20);
                    while n < 15_000 {
                        match consumer.pop_adopting() {
                            Some(_) => n += 1,
                            None => {
                                assert!(Instant::now() < deadline, "lane {lane} starved at {n}");
                                thread::yield_now();
                            }
                        }
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed, 60_000);
        let accepted: u64 = (0..4).map(|lane| channel.lane_stats(lane).accepted).sum();
        assert_eq!(accepted, 60_000);
    }

    #[test]
    fn latency_sampling_resolves_into_the_lane_histogram() {
        let channel: ShardedChannel<u32> = ShardedChannel::new(1, 1024, 10);
        let mut producer = channel.producer();
        assert_eq!(producer.push_batch(&channel, 0, 0..100), 100);
        thread::sleep(Duration::from_millis(25));
        let mut consumer = channel.consumer(0);
        while consumer.pop_adopting().is_some() {}
        let snap = channel.lane_latency(0);
        // 100 pushed / sample_every=10 → exactly 10 stamped records.
        assert_eq!(snap.count, 10);
        assert!(snap.p50_us() >= 15_000, "dwell not captured: {snap:?}");
    }

    #[test]
    fn unsampled_channel_keeps_an_empty_histogram() {
        let channel: ShardedChannel<u32> = ShardedChannel::new(1, 16, 0);
        let mut producer = channel.producer();
        producer.push(&channel, 0, 7);
        let mut consumer = channel.consumer(0);
        assert_eq!(consumer.pop_adopting(), Some(7));
        assert!(channel.lane_latency(0).is_empty());
    }
}
