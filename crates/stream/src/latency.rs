//! Lock-free latency histograms for queue-residency measurement.
//!
//! The saturation harness (`exp_saturation`) needs the tail latency of
//! the ingress queues — how long a record sits between the listener's
//! `push` and a worker's `pop` — without slowing either side down.
//! [`LatencyHistogram`] is a fixed-size, log-bucketed array of atomic
//! counters: recording is two relaxed `fetch_add`s, reading is a
//! consistent-enough [`LatencySnapshot`] with quantile estimation, and
//! two snapshots taken around a measurement window subtract into the
//! window's own distribution ([`LatencySnapshot::delta`]).
//!
//! Buckets are logarithmic with four sub-buckets per octave of
//! microseconds, so any reported quantile is within 12.5% of the true
//! value — plenty for a p99 whose interesting dynamic range spans
//! microseconds (empty queue) to seconds (saturated queue).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power-of-two of microseconds (quantile error ≤ 1/8).
const SUB_BUCKETS: usize = 4;
/// Octaves covered: 2^40 µs ≈ 13 days, far beyond any queue residency.
const OCTAVES: usize = 40;
/// Total bucket count.
pub const LATENCY_BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// Map a duration to its bucket index.
fn bucket_of(latency: Duration) -> usize {
    let us = latency.as_micros().min(u64::MAX as u128) as u64;
    if us < SUB_BUCKETS as u64 {
        // The first octave holds 0..SUB_BUCKETS µs directly.
        return us as usize;
    }
    let octave = 63 - us.leading_zeros() as usize;
    // Top two mantissa bits after the leading one select the sub-bucket.
    let sub = ((us >> (octave - 2)) & 0b11) as usize;
    // Indices 0..SUB_BUCKETS are the direct 0..4µs buckets; octave 2
    // (4..8µs) starts right after them.
    (SUB_BUCKETS + (octave - 2) * SUB_BUCKETS + sub).min(LATENCY_BUCKETS - 1)
}

/// Map a microsecond value to its bucket index (the scheme behind
/// [`LatencyHistogram`], public so external renderers — the telemetry
/// registry's Prometheus exposition — can place values themselves).
pub fn bucket_index_us(us: u64) -> usize {
    bucket_of(Duration::from_micros(us))
}

/// Public upper bound (µs) of a bucket — what external renderers use as
/// the Prometheus `le` bound for [`LatencySnapshot::buckets`].
pub fn bucket_upper_bound_us(index: usize) -> u64 {
    bucket_upper_us(index)
}

/// Upper bound (µs) of a bucket — what quantile estimation reports, so
/// estimates are conservative (never below the true quantile's bucket).
fn bucket_upper_us(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let log_index = index - SUB_BUCKETS;
    let octave = log_index / SUB_BUCKETS + 2;
    let sub = (log_index % SUB_BUCKETS) as u64;
    // Buckets in this octave span [2^octave, 2^(octave+1)) in 4 steps.
    (1u64 << octave) + (sub + 1) * (1u64 << (octave - 2)) - 1
}

/// A fixed-size, log-bucketed histogram of durations, safe to record
/// into from any number of threads.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one observed latency.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        // ordering: bucket and sum increments are Relaxed — they carry
        // no payload of their own and are published by the Release
        // increment of `count` below, which must stay last.
        self.buckets[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        // Release pairs with the Acquire load in `snapshot()`: every
        // record included in a snapshot's `count` has its bucket
        // increment visible there too, so `count <= sum(buckets)` holds
        // in any snapshot. Without the edge a racing snapshot could see
        // the count but miss the bucket, and `quantile_us` would run
        // past the last cumulative bucket and report the histogram's
        // upper bound (~13 days) as a transient p99.
        self.count.fetch_add(1, Ordering::Release);
    }

    /// A point-in-time copy of the counters. `count` is read first with
    /// Acquire (pairing with the Release increment in `record`) so the
    /// bucket totals always cover at least `count` records; the bucket
    /// reads themselves stay Relaxed since the snapshot only needs to be
    /// internally proportionate for quantile estimation.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count.load(Ordering::Acquire);
        LatencySnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An owned copy of a [`LatencyHistogram`]'s counters, with quantile
/// estimation. `Default` is the empty distribution (offline runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Latencies recorded.
    pub count: u64,
    /// Sum of all recorded latencies, microseconds.
    pub sum_us: u64,
    /// Bucket counters (empty for the `Default` snapshot).
    pub buckets: Vec<u64>,
}

impl LatencySnapshot {
    /// Is this the empty distribution?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (0.0–1.0) in microseconds: the upper
    /// bound of the bucket holding the q·count-th record, so the
    /// estimate errs high by at most one sub-bucket (≤ 12.5%). Returns 0
    /// for an empty distribution.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 || self.buckets.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank is 1-based; q = 1.0 selects the last record.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_upper_us(index);
            }
        }
        bucket_upper_us(LATENCY_BUCKETS - 1)
    }

    /// Median estimate, microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile estimate, microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// 99.9th-percentile estimate, microseconds.
    pub fn p999_us(&self) -> u64 {
        self.quantile_us(0.999)
    }

    /// Fold another snapshot into this one, bucket-wise. Both sides use
    /// the same bucket scheme, so merging per-shard distributions (the
    /// sharded correlator's per-lane residency histograms) into one
    /// aggregate view is exact.
    pub fn merge(&mut self, other: &LatencySnapshot) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
        } else {
            for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                *mine += *theirs;
            }
        }
    }

    /// The distribution observed *between* `earlier` and `self`, both
    /// snapshots of the same histogram: per-bucket saturating
    /// subtraction, so a measurement window's quantiles are not polluted
    /// by whatever happened before it.
    pub fn delta(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        let buckets: Vec<u64> = if earlier.buckets.is_empty() {
            self.buckets.clone()
        } else {
            self.buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, before)| now.saturating_sub(*before))
                .collect()
        };
        LatencySnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        let mut last = 0;
        for us in [0u64, 1, 3, 4, 7, 8, 100, 1_000, 65_536, 10_000_000] {
            let idx = bucket_of(Duration::from_micros(us));
            assert!(idx >= last, "bucket index regressed at {us}µs");
            assert!(bucket_upper_us(idx) >= us, "upper bound below value");
            last = idx;
        }
        // Values beyond the covered range land in the last bucket.
        assert_eq!(bucket_of(Duration::from_secs(1 << 40)), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_estimate_within_a_sub_bucket() {
        let hist = LatencyHistogram::new();
        for us in 1..=1000u64 {
            hist.record(Duration::from_micros(us));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1000);
        let p50 = snap.p50_us();
        let p99 = snap.p99_us();
        assert!((450..=650).contains(&p50), "p50 estimate {p50}");
        assert!((900..=1150).contains(&p99), "p99 estimate {p99}");
        assert!(snap.quantile_us(1.0) >= 1000);
        assert!((snap.mean_us() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = LatencySnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.p99_us(), 0);
        assert_eq!(snap.mean_us(), 0.0);
        assert_eq!(LatencyHistogram::new().snapshot().p50_us(), 0);
    }

    #[test]
    fn delta_isolates_a_window() {
        let hist = LatencyHistogram::new();
        for _ in 0..100 {
            hist.record(Duration::from_micros(10));
        }
        let before = hist.snapshot();
        for _ in 0..50 {
            hist.record(Duration::from_millis(100));
        }
        let window = hist.snapshot().delta(&before);
        assert_eq!(window.count, 50);
        // The old fast records must not drag the window's median down.
        assert!(window.p50_us() >= 50_000, "p50 {}", window.p50_us());
        // Delta against an empty (Default) earlier snapshot is identity.
        let all = hist.snapshot();
        assert_eq!(all.delta(&LatencySnapshot::default()), all);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let hist = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for us in 0..10_000u64 {
                        hist.record(Duration::from_micros(us));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 40_000);
    }

    /// Regression: `record` publishes `count` with Release and
    /// `snapshot` reads it with Acquire, so a snapshot taken mid-stream
    /// never sees more records counted than bucketed. When that edge was
    /// missing, quantile estimation could run off the end of the
    /// cumulative buckets and report the histogram's upper bound
    /// (~13 days) as a transient p99.
    #[test]
    fn snapshot_count_never_exceeds_bucket_total() {
        let hist = std::sync::Arc::new(LatencyHistogram::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let hist = std::sync::Arc::clone(&hist);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut us = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        hist.record(Duration::from_micros(us % 4096));
                        us += 1;
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let snap = hist.snapshot();
            let bucketed: u64 = snap.buckets.iter().sum();
            assert!(
                snap.count <= bucketed,
                "snapshot saw count {} but only {} bucketed records",
                snap.count,
                bucketed
            );
            // The estimator must stay inside the observed value range.
            if snap.count > 0 {
                assert!(snap.p99_us() <= bucket_upper_us(bucket_index_us(4095)));
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
