//! Property-based tests for the streaming workload generator.
//!
//! Three invariants the soak and accuracy tiers lean on, checked across
//! randomized configurations rather than the one default preset:
//!
//! * **determinism** — the same seed and config produce a byte-identical
//!   event stream, twice in the same process and across fresh
//!   [`Workload`] instances (the soak harness replays the same workload
//!   in the classic and sharded modes and reconciles their counters,
//!   which is only sound if the streams are identical);
//! * **ordering** — timestamps never decrease along the stream (the
//!   correlator's rotation clear-ups are data-time driven);
//! * **causality** — a correlated inbound flow never precedes the DNS
//!   announcement of its server address by less than the population's
//!   modeled `dns_flow_lag_micros`.

use std::collections::HashMap;

use flowdns_gen::workload::StreamEvent;
use flowdns_gen::{SubscriberPopulation, Workload, WorkloadConfig};
use flowdns_types::{FlowDirection, IpKey, SimDuration};
use proptest::prelude::*;

/// A randomized-but-small workload config: every preset population, a
/// spread of rates and seeds, traces short enough that 24 cases stay
/// inside a few seconds.
fn config_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        0usize..SubscriberPopulation::PRESET_NAMES.len(),
        600u64..2_400,
        5u64..30,
        any::<u64>(),
    )
        .prop_map(|(preset, secs, peak, seed)| WorkloadConfig {
            population: SubscriberPopulation::preset(
                SubscriberPopulation::PRESET_NAMES[preset],
            )
            .expect("preset name"),
            duration: SimDuration::from_secs(secs),
            peak_flows_per_sec: peak as f64,
            background_dns_per_sec: (peak as f64 / 8.0).max(1.0),
            seed,
            ..WorkloadConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_and_config_streams_identically(config in config_strategy()) {
        let a: Vec<StreamEvent> = Workload::new(config.clone()).events().collect();
        let b: Vec<StreamEvent> = Workload::new(config.clone()).events().collect();
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn a_different_seed_changes_the_stream(config in config_strategy()) {
        let a: Vec<StreamEvent> = Workload::new(config.clone())
            .events()
            .take(2_000)
            .collect();
        let mut other = config.clone();
        other.seed = other.seed.wrapping_add(1);
        let b: Vec<StreamEvent> = Workload::new(other).events().take(2_000).collect();
        prop_assert_ne!(a, b);
    }

    #[test]
    fn timestamps_never_decrease(config in config_strategy()) {
        let mut last = 0u64;
        let mut events = 0u64;
        for event in Workload::new(config).events() {
            let ts = event.ts().as_micros();
            prop_assert!(
                ts >= last,
                "timestamp regressed: {ts} after {last} at event {events}"
            );
            last = ts;
            events += 1;
        }
        prop_assert!(events > 1_000, "trace too short to be meaningful: {events}");
    }

    #[test]
    fn announced_flows_always_trail_the_answer_by_the_lag(config in config_strategy()) {
        let workload = Workload::new(config);
        let lag = workload.population().dns_flow_lag_micros;
        let mut last_announce: HashMap<IpKey, u64> = HashMap::new();
        let mut checked = 0u64;
        for event in workload.events() {
            match event {
                StreamEvent::Dns(r) => {
                    if let Some(ip) = r.answer.as_ip() {
                        last_announce.insert(IpKey::from_ip(ip), r.ts.as_micros());
                    }
                }
                StreamEvent::Flow(f) => {
                    if f.direction == FlowDirection::Inbound && f.key.dst_port == 443 {
                        if let Some(&at) = last_announce.get(&IpKey::from_ip(f.key.src_ip)) {
                            prop_assert!(
                                f.ts.as_micros() >= at + lag,
                                "flow at {} trails its announcement at {at} by \
                                 less than {lag}us",
                                f.ts.as_micros()
                            );
                            checked += 1;
                        }
                    }
                }
            }
        }
        prop_assert!(checked > 50, "lag property exercised only {checked} flows");
    }
}
