//! Statistical shape tests: does the generated traffic actually follow
//! the configured [`SubscriberPopulation`]?
//!
//! Each test runs a seeded workload (fixed seed, fixed config — the
//! generator is deterministic, so these can never flake) and compares an
//! empirical distribution against the model:
//!
//! * per-AS traffic share via a chi-squared statistic,
//! * the diurnal curve via per-hour flow counts against
//!   [`DiurnalCurve::multiplier_at`],
//! * the flow-size distribution via its heavy tail, its body median, and
//!   a two-sample Kolmogorov–Smirnov distance between two seeds (shape
//!   stability — the distribution is a property of the population, not
//!   of the seed).

use std::net::IpAddr;

use flowdns_gen::workload::StreamEvent;
use flowdns_gen::{SubscriberPopulation, Workload, WorkloadConfig};
use flowdns_types::{FlowDirection, SimDuration};

fn workload(population: SubscriberPopulation, hours: u64, seed: u64) -> Workload {
    Workload::new(WorkloadConfig {
        population,
        duration: SimDuration::from_hours(hours),
        peak_flows_per_sec: 30.0,
        background_dns_per_sec: 4.0,
        seed,
        ..WorkloadConfig::default()
    })
}

/// Inbound content flows are the population-shaped traffic (the client
/// is the flow's destination).
fn inbound_flows(workload: &Workload) -> impl Iterator<Item = flowdns_types::FlowRecord> + '_ {
    workload.events().filter_map(|event| match event {
        StreamEvent::Flow(f)
            if f.direction == FlowDirection::Inbound && f.key.dst_port == 443 =>
        {
            Some(f)
        }
        _ => None,
    })
}

#[test]
fn per_as_traffic_share_matches_the_population() {
    for preset in ["residential", "business", "mixed"] {
        let population = SubscriberPopulation::preset(preset).unwrap();
        let w = workload(population, 2, 7);
        let mut counts = vec![0u64; population.active_groups().len()];
        let mut total = 0u64;
        for flow in inbound_flows(&w) {
            let IpAddr::V4(client) = flow.key.dst_ip else {
                panic!("v6 client in the v4 address plan")
            };
            let group = population
                .group_of(client)
                .expect("client belongs to an access group");
            counts[group] += 1;
            total += 1;
        }
        assert!(total > 20_000, "{preset}: only {total} inbound flows");
        // Pearson chi-squared against the model's traffic shares. Under
        // the model the statistic is ~chi2(groups-1): mean below 5 for
        // every preset. 30 is tens of standard deviations out — it only
        // trips if the generator's group-picking genuinely diverges.
        let mut chi2 = 0.0;
        for (g, &observed) in counts.iter().enumerate() {
            let expected = population.traffic_share(g) * total as f64;
            chi2 += (observed as f64 - expected).powi(2) / expected;
        }
        assert!(
            chi2 < 30.0,
            "{preset}: per-AS chi-squared {chi2:.1} (counts {counts:?})"
        );
    }
}

#[test]
fn hourly_volume_follows_the_diurnal_curve() {
    let population = SubscriberPopulation::residential();
    let w = workload(population, 24, 11);
    let mut per_hour = [0u64; 24];
    for flow in inbound_flows(&w) {
        per_hour[(flow.ts.as_secs() / 3_600) as usize % 24] += 1;
    }
    // Expected per-hour weight: the curve integrated over the hour
    // (sampled at minute resolution — plenty for a cosine-smoothed
    // interpolation).
    let mut expected = [0f64; 24];
    for (hour, slot) in expected.iter_mut().enumerate() {
        *slot = (0..60)
            .map(|m| population.diurnal.multiplier_at(hour as u64 * 3_600 + m * 60))
            .sum::<f64>()
            / 60.0;
    }
    let total: u64 = per_hour.iter().sum();
    let expected_total: f64 = expected.iter().sum();
    for hour in 0..24 {
        let observed_share = per_hour[hour] as f64 / total as f64;
        let expected_share = expected[hour] / expected_total;
        let relative = (observed_share - expected_share).abs() / expected_share;
        assert!(
            relative < 0.10,
            "hour {hour}: observed share {observed_share:.4} vs curve {expected_share:.4} \
             ({:.1}% off)",
            relative * 100.0
        );
    }
    // And the curve must actually be diurnal: the overnight trough is
    // well below the evening peak.
    let trough = per_hour[4] as f64;
    let peak = per_hour[21] as f64;
    assert!(
        peak / trough > 2.0,
        "evening peak {peak} should dwarf the 4am trough {trough}"
    );
}

#[test]
fn flow_sizes_are_heavy_tailed_with_the_configured_body() {
    let population = SubscriberPopulation::residential();
    let w = workload(population, 2, 13);
    let mut sizes: Vec<u64> = inbound_flows(&w).map(|f| f.bytes).collect();
    assert!(sizes.len() > 20_000);
    sizes.sort_unstable();

    // Cap respected.
    assert!(*sizes.last().unwrap() <= population.flow_sizes.max_bytes);

    // Median sits in the lognormal body: e^9.4 ≈ 12 KB, with the mixture
    // (streaming + heavy non-DNS sessions) pulling it around. An order
    // of magnitude either way means the body is wrong.
    let median = sizes[sizes.len() / 2];
    assert!(
        (1_200..=120_000).contains(&median),
        "median flow size {median} outside the configured body"
    );

    // Heavy tail: the top 1% of flows must carry a disproportionate
    // byte share (Pareto sessions dominate the volume).
    let total_bytes: u128 = sizes.iter().map(|&b| b as u128).sum();
    let top1_bytes: u128 = sizes[sizes.len() - sizes.len() / 100..]
        .iter()
        .map(|&b| b as u128)
        .sum();
    let top1_share = top1_bytes as f64 / total_bytes as f64;
    assert!(
        top1_share > 0.20,
        "top-1% flows carry only {:.1}% of bytes — tail not heavy",
        top1_share * 100.0
    );
}

#[test]
fn flow_size_shape_is_stable_across_seeds() {
    // Two-sample Kolmogorov–Smirnov distance between two seeds of the
    // same population: the flow-size law belongs to the population, so
    // the empirical CDFs must agree. For n ≈ m ≈ 40_000 the 99.9%
    // critical value is ~0.014; 0.05 only trips on a genuine shape
    // change (and the test is deterministic either way).
    let population = SubscriberPopulation::residential();
    let mut a: Vec<u64> = inbound_flows(&workload(population, 2, 17))
        .map(|f| f.bytes)
        .collect();
    let mut b: Vec<u64> = inbound_flows(&workload(population, 2, 23))
        .map(|f| f.bytes)
        .collect();
    a.sort_unstable();
    b.sort_unstable();

    let mut ks = 0f64;
    let mut i = 0usize;
    let mut j = 0usize;
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let d = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
        ks = ks.max(d);
    }
    assert!(ks < 0.05, "KS distance {ks:.4} between seeds 17 and 23");
}
