//! Public resolver list and coverage sampling.
//!
//! Section 4's coverage analysis takes a one-hour NetFlow sample, filters
//! DNS and DoT traffic (ports 53 and 853), and checks each destination
//! against a public-resolver list: 1 in 20 DNS packets goes to a public
//! resolver, so the ISP resolver feed covers 95% of DNS activity.
//! [`PublicResolverList`] is the synthetic stand-in for the
//! public-dns.info list the paper uses.

use std::collections::HashSet;
use std::net::{IpAddr, Ipv4Addr};

use rand::rngs::StdRng;
use rand::Rng;

use flowdns_types::FlowRecord;

/// A list of well-known public resolver addresses plus the ISP's own
/// resolver addresses.
#[derive(Debug, Clone)]
pub struct PublicResolverList {
    public: HashSet<IpAddr>,
    public_ordered: Vec<IpAddr>,
    isp: Vec<IpAddr>,
}

impl Default for PublicResolverList {
    fn default() -> Self {
        let public_ordered: Vec<IpAddr> = vec![
            IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            IpAddr::V4(Ipv4Addr::new(1, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(8, 8, 8, 8)),
            IpAddr::V4(Ipv4Addr::new(8, 8, 4, 4)),
            IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9)),
            IpAddr::V4(Ipv4Addr::new(149, 112, 112, 112)),
            IpAddr::V4(Ipv4Addr::new(208, 67, 222, 222)),
            IpAddr::V4(Ipv4Addr::new(208, 67, 220, 220)),
            IpAddr::V4(Ipv4Addr::new(94, 140, 14, 14)),
            IpAddr::V4(Ipv4Addr::new(76, 76, 2, 0)),
            "2606:4700:4700::1111".parse().expect("valid address"),
            "2001:4860:4860::8888".parse().expect("valid address"),
        ];
        let isp = vec![
            IpAddr::V4(Ipv4Addr::new(10, 255, 0, 53)),
            IpAddr::V4(Ipv4Addr::new(10, 255, 1, 53)),
            IpAddr::V4(Ipv4Addr::new(10, 255, 2, 53)),
        ];
        PublicResolverList {
            public: public_ordered.iter().copied().collect(),
            public_ordered,
            isp,
        }
    }
}

impl PublicResolverList {
    /// Is `ip` a known public resolver?
    pub fn is_public(&self, ip: &IpAddr) -> bool {
        self.public.contains(ip)
    }

    /// Is `ip` one of the ISP's own resolvers?
    pub fn is_isp(&self, ip: &IpAddr) -> bool {
        self.isp.contains(ip)
    }

    /// Number of public resolvers on the list.
    pub fn len(&self) -> usize {
        self.public.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.public.is_empty()
    }

    /// Pick a public resolver.
    pub fn pick(&self, rng: &mut StdRng) -> IpAddr {
        self.public_ordered[rng.gen_range(0..self.public_ordered.len())]
    }

    /// Pick one of the ISP's resolvers.
    pub fn isp_resolver(&self, rng: &mut StdRng) -> IpAddr {
        self.isp[rng.gen_range(0..self.isp.len())]
    }
}

/// The result of the coverage analysis over a flow sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageSample {
    /// Flows on ports 53/853 towards the ISP's resolvers.
    pub to_isp_resolvers: u64,
    /// Flows on ports 53/853 towards public resolvers.
    pub to_public_resolvers: u64,
    /// Flows on ports 53/853 towards anything else (forwarders, etc.).
    pub to_other: u64,
}

impl CoverageSample {
    /// Analyze a flow sample: filter DNS/DoT traffic and classify each
    /// flow's destination against the resolver list.
    pub fn analyze<'a>(
        flows: impl IntoIterator<Item = &'a FlowRecord>,
        resolvers: &PublicResolverList,
    ) -> Self {
        let mut sample = CoverageSample::default();
        for flow in flows {
            if !flow.is_dns_or_dot() {
                continue;
            }
            if resolvers.is_public(&flow.key.dst_ip) {
                sample.to_public_resolvers += 1;
            } else if resolvers.is_isp(&flow.key.dst_ip) {
                sample.to_isp_resolvers += 1;
            } else {
                sample.to_other += 1;
            }
        }
        sample
    }

    /// Total DNS/DoT flows examined.
    pub fn total(&self) -> u64 {
        self.to_isp_resolvers + self.to_public_resolvers + self.to_other
    }

    /// Share of DNS traffic going to public resolvers (0.0 when empty).
    pub fn public_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.to_public_resolvers as f64 / self.total() as f64
        }
    }

    /// The DNS coverage of the ISP resolver feed implied by the sample
    /// (the paper: 95%).
    pub fn coverage(&self) -> f64 {
        1.0 - self.public_share()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::SimTime;
    use rand::SeedableRng;

    #[test]
    fn list_contains_the_usual_suspects() {
        let list = PublicResolverList::default();
        assert!(list.is_public(&"1.1.1.1".parse().unwrap()));
        assert!(list.is_public(&"8.8.8.8".parse().unwrap()));
        assert!(list.is_public(&"9.9.9.9".parse().unwrap()));
        assert!(!list.is_public(&"10.255.0.53".parse().unwrap()));
        assert!(list.is_isp(&"10.255.0.53".parse().unwrap()));
        assert!(!list.is_empty());
        assert!(list.len() >= 10);
    }

    #[test]
    fn picks_come_from_the_right_sets() {
        let list = PublicResolverList::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(list.is_public(&list.pick(&mut rng)));
            assert!(list.is_isp(&list.isp_resolver(&mut rng)));
        }
    }

    #[test]
    fn coverage_analysis_counts_only_dns_ports() {
        let list = PublicResolverList::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut flows = Vec::new();
        // 19 flows to the ISP resolver, 1 to a public resolver, 10 web flows.
        for i in 0..19 {
            let mut f = FlowRecord::inbound(
                SimTime::from_secs(i),
                "10.1.2.3".parse().unwrap(),
                list.isp_resolver(&mut rng),
                120,
            );
            f.key.dst_port = 53;
            flows.push(f);
        }
        let mut public = FlowRecord::inbound(
            SimTime::from_secs(30),
            "10.1.2.4".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            120,
        );
        public.key.dst_port = 853;
        flows.push(public);
        for i in 0..10 {
            flows.push(FlowRecord::inbound(
                SimTime::from_secs(40 + i),
                "100.64.0.1".parse().unwrap(),
                "10.9.9.9".parse().unwrap(),
                5000,
            ));
        }
        let sample = CoverageSample::analyze(&flows, &list);
        assert_eq!(sample.total(), 20);
        assert_eq!(sample.to_public_resolvers, 1);
        assert!((sample.public_share() - 0.05).abs() < 1e-9);
        assert!((sample.coverage() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn empty_sample_has_full_coverage_by_convention() {
        let sample = CoverageSample::default();
        assert_eq!(sample.public_share(), 0.0);
        assert_eq!(sample.coverage(), 1.0);
    }
}
