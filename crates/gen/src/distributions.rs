//! Calibrated samplers for the workload generator.

use rand::rngs::StdRng;
use rand::Rng;

/// TTL sampler calibrated to Figure 8 of the paper.
///
/// The paper reports, per record type, roughly: 70% of records have TTL
/// below 300 s; 99% of A/AAAA records are below 3600 s; 99% of CNAME
/// records are below 7200 s; a small tail is larger still. We model this
/// with a piecewise bucket distribution.
#[derive(Debug, Clone, Copy)]
pub struct TtlDist {
    /// Probability of a "short" TTL (60–300 s).
    pub p_short: f64,
    /// Probability of a "medium" TTL (300 s to just under the clear-up
    /// interval).
    pub p_medium: f64,
    /// Upper bound of the medium bucket (the clear-up interval).
    pub medium_cap: u32,
    /// Upper bound of the long tail.
    pub long_cap: u32,
}

impl TtlDist {
    /// The A/AAAA TTL distribution (99% < 3600 s).
    pub fn address() -> Self {
        TtlDist {
            p_short: 0.70,
            p_medium: 0.29,
            medium_cap: 3_600,
            long_cap: 86_400,
        }
    }

    /// The CNAME TTL distribution (99% < 7200 s).
    pub fn cname() -> Self {
        TtlDist {
            p_short: 0.70,
            p_medium: 0.29,
            medium_cap: 7_200,
            long_cap: 86_400,
        }
    }

    /// Sample one TTL value in seconds.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let p: f64 = rng.gen();
        if p < self.p_short {
            rng.gen_range(30..300)
        } else if p < self.p_short + self.p_medium {
            rng.gen_range(300..self.medium_cap)
        } else {
            rng.gen_range(self.medium_cap..self.long_cap)
        }
    }
}

/// CNAME chain length sampler calibrated to Figure 6: most chains have 0–2
/// hops, more than 99% are resolvable within 6 look-ups, with a tiny tail
/// beyond that.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainLengthDist;

impl ChainLengthDist {
    /// Sample the number of CNAME hops between the customer-facing name
    /// and the A/AAAA record.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let p: f64 = rng.gen();
        match p {
            p if p < 0.35 => 0,
            p if p < 0.70 => 1,
            p if p < 0.88 => 2,
            p if p < 0.95 => 3,
            p if p < 0.982 => 4,
            p if p < 0.993 => 5,
            p if p < 0.998 => 6,
            p if p < 0.9993 => 7,
            _ => rng.gen_range(8..12),
        }
    }
}

/// The diurnal traffic profile of the paper's figures: a low during the
/// night, rising through the day, and a peak in the evening.
///
/// A compatibility facade over the residential
/// [`crate::population::DiurnalCurve`], which carries the full 24-anchor
/// curve, second-resolution interpolation and weekend behaviour. Code
/// that only needs an hour-of-day multiplier keeps this type.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiurnalProfile;

impl DiurnalProfile {
    /// A multiplier in `[0.3, 1.0]` for the given hour of day, shaped like
    /// the traffic-volume curves in Figure 2 (minimum around 04:00, peak
    /// around 21:00).
    pub fn multiplier(&self, hour_of_day: u64) -> f64 {
        crate::population::DiurnalCurve::residential().hour_multiplier(hour_of_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn address_ttls_match_figure8_quantiles() {
        let dist = TtlDist::address();
        let mut r = rng();
        let samples: Vec<u32> = (0..50_000).map(|_| dist.sample(&mut r)).collect();
        let below_300 = samples.iter().filter(|t| **t < 300).count() as f64 / samples.len() as f64;
        let below_3600 =
            samples.iter().filter(|t| **t < 3_600).count() as f64 / samples.len() as f64;
        assert!(
            (below_300 - 0.70).abs() < 0.02,
            "70% below 300s, got {below_300}"
        );
        assert!(below_3600 > 0.985, "99% below 3600s, got {below_3600}");
        assert!(samples.iter().any(|t| *t >= 3_600), "a long tail exists");
    }

    #[test]
    fn cname_ttls_match_figure8_quantiles() {
        let dist = TtlDist::cname();
        let mut r = rng();
        let samples: Vec<u32> = (0..50_000).map(|_| dist.sample(&mut r)).collect();
        let below_7200 =
            samples.iter().filter(|t| **t < 7_200).count() as f64 / samples.len() as f64;
        assert!(below_7200 > 0.985, "99% below 7200s, got {below_7200}");
    }

    #[test]
    fn chain_lengths_match_figure6() {
        let dist = ChainLengthDist;
        let mut r = rng();
        let samples: Vec<usize> = (0..50_000).map(|_| dist.sample(&mut r)).collect();
        let within_6 = samples.iter().filter(|c| **c <= 6).count() as f64 / samples.len() as f64;
        assert!(within_6 > 0.99, ">99% within 6 hops, got {within_6}");
        assert!(samples.iter().any(|c| *c > 6), "a tail beyond 6 exists");
        let zero_or_one = samples.iter().filter(|c| **c <= 1).count() as f64 / samples.len() as f64;
        assert!(zero_or_one > 0.6, "most chains are short");
    }

    #[test]
    fn diurnal_profile_peaks_in_the_evening() {
        let p = DiurnalProfile;
        let night = p.multiplier(4);
        let evening = p.multiplier(21);
        let noon = p.multiplier(12);
        assert!(night < noon && noon < evening, "{night} {noon} {evening}");
        assert!((night - 0.3).abs() < 0.05);
        assert!((evening - 1.0).abs() < 0.05);
        // Every hour stays within the normalized band.
        for h in 0..24 {
            let m = p.multiplier(h);
            assert!((0.25..=1.01).contains(&m), "hour {h}: {m}");
        }
    }
}
