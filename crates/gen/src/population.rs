//! The subscriber-population model behind the workload generator.
//!
//! The paper's deployment numbers (2 DNS streams, 26 NetFlow streams,
//! bounded memory over a week) describe traffic produced by *millions of
//! subscribers* behind a handful of access networks — not a flat event
//! rate. This module models that population explicitly so the streaming
//! generator, the soak tier and the saturation driver all draw from the
//! same statistical shape:
//!
//! * **per-AS subscriber skew** — subscribers are partitioned across a
//!   small set of access groups (eyeball ASes) with heavy-tailed shares,
//!   and within a group per-subscriber activity is itself skewed (a few
//!   heavy users dominate);
//! * **service concentration** — an exponent applied over the
//!   [`crate::domains::DomainUniverse`] popularity weights concentrates
//!   traffic further onto the CDN/VoD head of the catalogue (evening
//!   video dominates ISP bytes);
//! * **heavy-tailed flow sizes** — a log-normal body for ordinary web
//!   transfers with a Pareto tail for large objects, and a heavier
//!   Pareto for streaming-video sessions, replacing the old uniform
//!   buckets;
//! * **a real diurnal curve** — 24 hourly anchor points interpolated
//!   smoothly at second resolution, with a weekend factor, replacing the
//!   two-anchor smoothstep stub;
//! * **a modeled DNS→flow lag** — the time between a resolver answering
//!   a client and the first packet of the resulting flow, which the
//!   generator enforces on every announced flow.
//!
//! Everything is `Copy` and deterministic: the model holds *parameters*
//! only, all sampling happens in the caller's seeded RNG.

use std::net::Ipv4Addr;

/// Maximum number of access groups a population can declare.
pub const MAX_ACCESS_GROUPS: usize = 6;

/// Subscribers must fit the 10.0.0.0/8 customer plan (24 host bits).
pub const MAX_SUBSCRIBERS: u32 = 1 << 24;

/// One access network (eyeball AS) and its slice of the subscriber base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessGroup {
    /// AS number of the access network.
    pub asn: u32,
    /// Fraction of the subscriber base homed in this group. Shares
    /// across the active groups must sum to ~1.
    pub subscriber_share: f64,
    /// Per-subscriber activity multiplier relative to the population
    /// average (cable/fibre groups push more traffic per line than
    /// DSL/mobile groups).
    pub activity: f64,
}

impl AccessGroup {
    const UNUSED: AccessGroup = AccessGroup {
        asn: 0,
        subscriber_share: 0.0,
        activity: 0.0,
    };
}

/// The diurnal traffic curve: 24 hourly anchors (normalized so the
/// weekday peak is 1.0) interpolated smoothly at second resolution,
/// plus a weekend factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Hourly anchor multipliers, index = hour of day.
    pub hourly: [f64; 24],
    /// Multiplier applied on Saturdays and Sundays (day 0 of a trace is
    /// a Monday).
    pub weekend_factor: f64,
}

impl DiurnalCurve {
    /// The residential curve of the paper's Figure 2: a 04:00 trough
    /// around 30% of peak, a long daytime shoulder, and a 21:00 peak.
    pub fn residential() -> Self {
        DiurnalCurve {
            hourly: [
                0.62, 0.50, 0.40, 0.33, 0.30, 0.32, 0.38, 0.46, // 00-07
                0.54, 0.60, 0.64, 0.67, 0.70, 0.70, 0.69, 0.70, // 08-15
                0.74, 0.80, 0.87, 0.93, 0.98, 1.00, 0.92, 0.76, // 16-23
            ],
            weekend_factor: 1.10,
        }
    }

    /// A business-access curve: office-hours plateau peaking early
    /// afternoon, quiet evenings, and much quieter weekends.
    pub fn business() -> Self {
        DiurnalCurve {
            hourly: [
                0.18, 0.15, 0.14, 0.13, 0.13, 0.15, 0.25, 0.45, // 00-07
                0.72, 0.90, 0.97, 0.99, 0.95, 1.00, 0.98, 0.93, // 08-15
                0.85, 0.70, 0.50, 0.38, 0.30, 0.26, 0.23, 0.20, // 16-23
            ],
            weekend_factor: 0.35,
        }
    }

    /// The hour-of-day anchor value (no interpolation, no weekend
    /// factor). This is what the legacy
    /// [`crate::distributions::DiurnalProfile`] facade exposes.
    pub fn hour_multiplier(&self, hour_of_day: u64) -> f64 {
        self.hourly[(hour_of_day % 24) as usize]
    }

    /// The multiplier at an absolute trace second: cosine-smoothed
    /// interpolation between the two surrounding hourly anchors, times
    /// the weekend factor when the second falls on day 5 or 6 of a week
    /// (traces start on a Monday).
    pub fn multiplier_at(&self, sec: u64) -> f64 {
        let sec_of_day = sec % 86_400;
        let hour = (sec_of_day / 3_600) as usize;
        let a = self.hourly[hour];
        let b = self.hourly[(hour + 1) % 24];
        let frac = (sec_of_day % 3_600) as f64 / 3_600.0;
        let smooth = (1.0 - (std::f64::consts::PI * frac).cos()) / 2.0;
        let base = a + (b - a) * smooth;
        let day_of_week = (sec / 86_400) % 7;
        if day_of_week >= 5 {
            base * self.weekend_factor
        } else {
            base
        }
    }
}

/// Heavy-tailed flow-size sampler: log-normal body, Pareto tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSizeDist {
    /// `ln(bytes)` location of the log-normal web-transfer body.
    pub body_log_mean: f64,
    /// `ln(bytes)` scale of the body.
    pub body_log_sigma: f64,
    /// Probability that an ordinary transfer draws from the Pareto tail
    /// instead of the body (large downloads, software updates).
    pub tail_probability: f64,
    /// Minimum size of a tail draw, bytes.
    pub tail_scale: f64,
    /// Pareto tail index; `1 < alpha < 2` gives the heavy tail where a
    /// few flows dominate total bytes.
    pub tail_alpha: f64,
    /// Minimum size of a streaming-video session draw, bytes.
    pub streaming_scale: f64,
    /// Pareto index of streaming sessions (heavier than the generic
    /// tail: binge sessions run long).
    pub streaming_alpha: f64,
    /// Probability that a flow from a *non-DNS-related* service draws a
    /// streaming-sized session (P2P, VPN tunnels, IP-literal video —
    /// the paper's uncorrelatable share is by no means all mice, which
    /// is what keeps the bytes-weighted correlation near 82% rather
    /// than the count-weighted ~95%-of-DNS-related).
    pub non_dns_heavy_probability: f64,
    /// Hard cap on any single flow, bytes.
    pub max_bytes: u64,
}

impl FlowSizeDist {
    /// The default ISP mix: ~12 kB median web transfer, 6% large-object
    /// tail from 300 kB, streaming sessions from 1.5 MB.
    pub fn isp_default() -> Self {
        FlowSizeDist {
            body_log_mean: 9.4, // ≈ 12 kB median
            body_log_sigma: 1.2,
            tail_probability: 0.06,
            tail_scale: 300_000.0,
            tail_alpha: 1.35,
            streaming_scale: 1_500_000.0,
            streaming_alpha: 1.15,
            non_dns_heavy_probability: 0.12,
            max_bytes: 2_000_000_000,
        }
    }

    /// Sample an ordinary (non-streaming) transfer size in bytes.
    /// `u1..u3` are independent uniforms in `[0, 1)`.
    pub fn sample_web(&self, u1: f64, u2: f64, u3: f64) -> u64 {
        if u1 < self.tail_probability {
            self.pareto(self.tail_scale, self.tail_alpha, u2)
        } else {
            // Box–Muller from two uniforms; clamp the draws away from 0.
            let a = u2.max(1e-12);
            let z = (-2.0 * a.ln()).sqrt() * (2.0 * std::f64::consts::PI * u3).cos();
            let bytes = (self.body_log_mean + self.body_log_sigma * z).exp();
            (bytes.max(64.0) as u64).min(self.max_bytes)
        }
    }

    /// Sample a streaming-video session size in bytes.
    pub fn sample_streaming(&self, u: f64) -> u64 {
        self.pareto(self.streaming_scale, self.streaming_alpha, u)
    }

    fn pareto(&self, scale: f64, alpha: f64, u: f64) -> u64 {
        let u = u.clamp(1e-12, 1.0 - 1e-12);
        let bytes = scale * (1.0 - u).powf(-1.0 / alpha);
        (bytes as u64).min(self.max_bytes)
    }
}

/// The full subscriber-population model. `Copy` on purpose: it rides
/// inside [`crate::workload::WorkloadConfig`] and holds only parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubscriberPopulation {
    /// Number of simulated subscriber lines (must be < 2^24 to fit the
    /// 10.0.0.0/8 address plan).
    pub subscribers: u32,
    /// Access groups; only the first [`SubscriberPopulation::group_count`]
    /// entries are active.
    pub groups: [AccessGroup; MAX_ACCESS_GROUPS],
    /// Number of active entries in `groups`.
    pub group_count: usize,
    /// Within-group subscriber skew exponent: a flow's subscriber rank
    /// is `floor(group_size × u^skew)`, so `skew > 1` concentrates
    /// traffic on the low ranks (heavy users). `1.0` is uniform.
    pub subscriber_skew: f64,
    /// Exponent applied to the universe's popularity weights before
    /// sampling: `> 1` concentrates traffic onto the CDN/VoD head.
    pub service_concentration: f64,
    /// The diurnal curve.
    pub diurnal: DiurnalCurve,
    /// The flow-size sampler.
    pub flow_sizes: FlowSizeDist,
    /// Modeled lag between a DNS answer reaching the client and the
    /// first flow packet, microseconds. The generator guarantees every
    /// announced flow trails its announcement by at least this much.
    pub dns_flow_lag_micros: u64,
}

impl SubscriberPopulation {
    fn base(subscribers: u32, diurnal: DiurnalCurve) -> Self {
        SubscriberPopulation {
            subscribers,
            groups: [AccessGroup::UNUSED; MAX_ACCESS_GROUPS],
            group_count: 0,
            subscriber_skew: 2.0,
            service_concentration: 1.0,
            diurnal,
            flow_sizes: FlowSizeDist::isp_default(),
            dns_flow_lag_micros: 1_500,
        }
    }

    fn with_groups(mut self, groups: &[AccessGroup]) -> Self {
        assert!(
            groups.len() <= MAX_ACCESS_GROUPS,
            "at most {MAX_ACCESS_GROUPS} access groups"
        );
        for (slot, group) in self.groups.iter_mut().zip(groups) {
            *slot = *group;
        }
        self.group_count = groups.len();
        self
    }

    /// ~1.8M residential lines across four eyeball ASes with a strong
    /// cable/fibre skew, evening-peaked, streaming-heavy.
    pub fn residential() -> Self {
        Self::base(1_800_000, DiurnalCurve::residential())
            .with_groups(&[
                AccessGroup { asn: 64_512, subscriber_share: 0.46, activity: 1.25 },
                AccessGroup { asn: 64_513, subscriber_share: 0.28, activity: 1.00 },
                AccessGroup { asn: 64_514, subscriber_share: 0.16, activity: 0.70 },
                AccessGroup { asn: 64_515, subscriber_share: 0.10, activity: 0.45 },
            ])
            .concentrated(1.15)
    }

    /// ~600k business lines across three ASes, office-hours curve, web
    /// transfers dominate (little evening video).
    pub fn business() -> Self {
        let mut p = Self::base(600_000, DiurnalCurve::business())
            .with_groups(&[
                AccessGroup { asn: 64_520, subscriber_share: 0.55, activity: 1.10 },
                AccessGroup { asn: 64_521, subscriber_share: 0.30, activity: 1.00 },
                AccessGroup { asn: 64_522, subscriber_share: 0.15, activity: 0.60 },
            ])
            .concentrated(0.92);
        p.subscriber_skew = 1.5;
        p
    }

    /// ~2.4M mixed lines: residential shape with a flatter daytime
    /// shoulder and moderate concentration.
    pub fn mixed() -> Self {
        let mut curve = DiurnalCurve::residential();
        for h in 8..17 {
            curve.hourly[h] = (curve.hourly[h] + 0.12).min(1.0);
        }
        curve.weekend_factor = 1.05;
        Self::base(2_400_000, curve)
            .with_groups(&[
                AccessGroup { asn: 64_512, subscriber_share: 0.38, activity: 1.15 },
                AccessGroup { asn: 64_513, subscriber_share: 0.24, activity: 1.00 },
                AccessGroup { asn: 64_520, subscriber_share: 0.20, activity: 0.95 },
                AccessGroup { asn: 64_514, subscriber_share: 0.12, activity: 0.70 },
                AccessGroup { asn: 64_515, subscriber_share: 0.06, activity: 0.40 },
            ])
            .concentrated(1.05)
    }

    /// A 50k-line population for tests and smoke runs (same shape as
    /// [`SubscriberPopulation::residential`], two groups).
    pub fn small() -> Self {
        let mut p = Self::base(50_000, DiurnalCurve::residential()).with_groups(&[
            AccessGroup { asn: 64_512, subscriber_share: 0.65, activity: 1.10 },
            AccessGroup { asn: 64_513, subscriber_share: 0.35, activity: 0.80 },
        ]);
        p.service_concentration = 1.1;
        p
    }

    /// Look up a preset by name (the soak config's `population` key).
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "residential" => Some(Self::residential()),
            "business" => Some(Self::business()),
            "mixed" => Some(Self::mixed()),
            "small" => Some(Self::small()),
            _ => None,
        }
    }

    /// Names accepted by [`SubscriberPopulation::preset`].
    pub const PRESET_NAMES: [&'static str; 4] = ["residential", "business", "mixed", "small"];

    fn set_concentration(&mut self, c: f64) {
        self.service_concentration = c;
    }

    fn concentrated(mut self, c: f64) -> Self {
        self.set_concentration(c);
        self
    }

    /// The active access groups.
    pub fn active_groups(&self) -> &[AccessGroup] {
        &self.groups[..self.group_count]
    }

    /// Fraction of *traffic* (not subscribers) produced by group `g`:
    /// subscriber share × activity, normalized over the active groups.
    pub fn traffic_share(&self, g: usize) -> f64 {
        let total: f64 = self
            .active_groups()
            .iter()
            .map(|grp| grp.subscriber_share * grp.activity)
            .sum();
        let grp = &self.active_groups()[g];
        grp.subscriber_share * grp.activity / total
    }

    /// Number of subscriber lines homed in group `g` (the address plan
    /// assigns each group a contiguous index range, in declaration
    /// order, with the remainder going to the last group).
    pub fn group_size(&self, g: usize) -> u32 {
        let (start, end) = self.group_range(g);
        end - start
    }

    fn group_range(&self, g: usize) -> (u32, u32) {
        assert!(g < self.group_count, "group {g} out of range");
        let mut start = 0u32;
        for (i, grp) in self.active_groups().iter().enumerate() {
            let size = if i + 1 == self.group_count {
                self.subscribers - start
            } else {
                (self.subscribers as f64 * grp.subscriber_share) as u32
            };
            if i == g {
                return (start, start + size.max(1));
            }
            start += size.max(1);
        }
        unreachable!("group_count checked above")
    }

    /// Pick a traffic-weighted access group from a uniform draw.
    pub fn pick_group(&self, u: f64) -> usize {
        let mut acc = 0.0;
        for g in 0..self.group_count {
            acc += self.traffic_share(g);
            if u < acc {
                return g;
            }
        }
        self.group_count - 1
    }

    /// The customer address of one flow: `pick` chooses the access
    /// group (traffic-weighted), `rank` the subscriber within it
    /// (skewed towards heavy users). Both are uniforms in `[0, 1)`.
    /// Addresses live in 10.0.0.0/8; each subscriber line maps to one
    /// stable address for the lifetime of the population.
    pub fn client_addr(&self, pick: f64, rank: f64) -> Ipv4Addr {
        let g = self.pick_group(pick);
        let (start, end) = self.group_range(g);
        let size = (end - start) as f64;
        let idx = ((size * rank.powf(self.subscriber_skew)) as u32).min(end - start - 1);
        let offset = start + idx;
        Ipv4Addr::new(
            10,
            (offset >> 16) as u8,
            (offset >> 8) as u8,
            offset as u8,
        )
    }

    /// Reverse of the address plan: which access group homes `addr`?
    /// `None` for addresses outside 10.0.0.0/8 or beyond the subscriber
    /// count.
    pub fn group_of(&self, addr: Ipv4Addr) -> Option<usize> {
        let octets = addr.octets();
        if octets[0] != 10 {
            return None;
        }
        let offset =
            ((octets[1] as u32) << 16) | ((octets[2] as u32) << 8) | octets[3] as u32;
        (0..self.group_count).find(|&g| {
            let (start, end) = self.group_range(g);
            (start..end).contains(&offset)
        })
    }

    /// The deterministic address of subscriber line `i` (used by the
    /// saturation driver's pre-encoded datagram pool, so wire-level load
    /// tests draw from the same address plan as the workload).
    pub fn subscriber_addr(&self, i: u32) -> Ipv4Addr {
        let offset = i % self.subscribers.max(1);
        Ipv4Addr::new(
            10,
            (offset >> 16) as u8,
            (offset >> 8) as u8,
            offset as u8,
        )
    }

    /// Sanity-check the model; called by the workload constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.subscribers == 0 || self.subscribers >= MAX_SUBSCRIBERS {
            return Err(format!(
                "subscribers must be in 1..{MAX_SUBSCRIBERS}, got {}",
                self.subscribers
            ));
        }
        if self.group_count == 0 || self.group_count > MAX_ACCESS_GROUPS {
            return Err(format!(
                "group_count must be in 1..={MAX_ACCESS_GROUPS}, got {}",
                self.group_count
            ));
        }
        let share: f64 = self
            .active_groups()
            .iter()
            .map(|g| g.subscriber_share)
            .sum();
        if (share - 1.0).abs() > 0.01 {
            return Err(format!("subscriber shares sum to {share}, expected 1.0"));
        }
        if (self.subscribers as usize) < self.group_count {
            return Err("fewer subscribers than groups".to_string());
        }
        if !(0.5..=4.0).contains(&self.subscriber_skew) {
            return Err(format!("subscriber_skew {} out of [0.5, 4]", self.subscriber_skew));
        }
        if !(0.5..=2.0).contains(&self.service_concentration) {
            return Err(format!(
                "service_concentration {} out of [0.5, 2]",
                self.service_concentration
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_cover_names() {
        for name in SubscriberPopulation::PRESET_NAMES {
            let p = SubscriberPopulation::preset(name).expect("known preset");
            p.validate().expect("preset validates");
        }
        assert!(SubscriberPopulation::preset("nope").is_none());
    }

    #[test]
    fn group_ranges_partition_the_subscriber_base() {
        let p = SubscriberPopulation::mixed();
        let mut covered = 0u32;
        for g in 0..p.group_count {
            let (start, end) = p.group_range(g);
            assert_eq!(start, covered, "group {g} starts where {} ended", g);
            covered = end;
        }
        assert_eq!(covered, p.subscribers);
    }

    #[test]
    fn client_addr_round_trips_through_group_of() {
        let p = SubscriberPopulation::residential();
        for (pick, rank) in [(0.05, 0.1), (0.5, 0.5), (0.93, 0.99), (0.99, 0.0)] {
            let addr = p.client_addr(pick, rank);
            let g = p.group_of(addr).expect("customer address maps back");
            assert_eq!(g, p.pick_group(pick));
        }
        assert!(p.group_of(Ipv4Addr::new(192, 0, 2, 1)).is_none());
    }

    #[test]
    fn diurnal_curve_peaks_evening_troughs_early_morning() {
        let c = DiurnalCurve::residential();
        assert!((c.multiplier_at(4 * 3_600) - 0.30).abs() < 0.03);
        assert!((c.multiplier_at(21 * 3_600) - 1.00).abs() < 0.03);
        // Smooth: adjacent seconds move by a hair, not a step.
        let a = c.multiplier_at(7 * 3_600 + 1_799);
        let b = c.multiplier_at(7 * 3_600 + 1_800);
        assert!((a - b).abs() < 1e-3);
        // Weekend uplift applies on days 5 and 6 only.
        let weekday = c.multiplier_at(2 * 86_400 + 21 * 3_600);
        let weekend = c.multiplier_at(5 * 86_400 + 21 * 3_600);
        assert!(weekend > weekday);
        // Business traffic peaks inside office hours instead.
        let b = DiurnalCurve::business();
        assert!(b.multiplier_at(13 * 3_600) > 0.9);
        assert!(b.multiplier_at(21 * 3_600) < 0.4);
        assert!(b.multiplier_at(5 * 86_400 + 13 * 3_600) < 0.5);
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let d = FlowSizeDist::isp_default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sizes: Vec<u64> = (0..40_000)
            .map(|_| d.sample_web(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!((4_000..40_000).contains(&median), "median {median}");
        let total: u128 = sizes.iter().map(|&s| s as u128).sum();
        let top1: u128 = sizes[sizes.len() - sizes.len() / 100..]
            .iter()
            .map(|&s| s as u128)
            .sum();
        assert!(
            top1 * 100 / total >= 25,
            "top 1% of flows should carry ≥25% of bytes, got {}%",
            top1 * 100 / total
        );
        // Streaming sessions are strictly larger-bodied.
        let s = d.sample_streaming(0.5);
        assert!(s >= d.streaming_scale as u64);
        assert!(d.sample_streaming(0.999_999) <= d.max_bytes);
    }

    #[test]
    fn traffic_shares_are_normalized_and_skewed() {
        let p = SubscriberPopulation::residential();
        let total: f64 = (0..p.group_count).map(|g| p.traffic_share(g)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The cable/fibre group out-punches its subscriber share.
        assert!(p.traffic_share(0) > p.active_groups()[0].subscriber_share);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut p = SubscriberPopulation::small();
        p.subscribers = 0;
        assert!(p.validate().is_err());
        let mut p = SubscriberPopulation::small();
        p.groups[0].subscriber_share = 0.9;
        assert!(p.validate().is_err());
        let mut p = SubscriberPopulation::small();
        p.service_concentration = 9.0;
        assert!(p.validate().is_err());
    }
}
