//! The synthetic domain / service / CDN universe.
//!
//! The traffic of the large European ISP is dominated (>85%) by CDN-hosted
//! services; the rest is direct-hosted or not DNS-related at all. The
//! universe built here captures the structure the correlator cares about:
//!
//! * every *service* has a customer-facing domain, an optional CNAME chain
//!   into a CDN namespace, a pool of edge IPs (35% of names map to more
//!   than one IP), an origin AS set (for the Figure 4 use case) and a
//!   popularity weight (heavy-tailed, so a few services dominate bytes);
//! * a configurable share of edge IPs is *shared* between two services,
//!   reproducing the 12% of IPs with multiple names that bounds FlowDNS's
//!   accuracy (Figure 9);
//! * malicious and malformed domains are injected with the category mix of
//!   Section 5 (spam, botnet C&C, abused redirectors, malware, phishing,
//!   and RFC 1035 violations dominated by the underscore character).

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use flowdns_types::{DomainName, ServiceLabel};

use crate::distributions::ChainLengthDist;

/// The category of a domain, following Section 5's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainCategory {
    /// Ordinary benign service.
    Benign,
    /// Spam / generic bad-reputation domain.
    Spam,
    /// Botnet command-and-control domain.
    BotnetCc,
    /// Malware-distribution domain.
    Malware,
    /// Phishing domain.
    Phishing,
    /// Abused spammed redirector domain.
    AbusedRedirector,
    /// Domain violating the RFC 1035 syntax rules.
    Malformed,
}

impl DomainCategory {
    /// All non-benign categories, in the order the paper lists them.
    pub fn suspicious() -> [DomainCategory; 5] {
        [
            DomainCategory::Spam,
            DomainCategory::BotnetCc,
            DomainCategory::AbusedRedirector,
            DomainCategory::Malware,
            DomainCategory::Phishing,
        ]
    }

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DomainCategory::Benign => "benign",
            DomainCategory::Spam => "spam",
            DomainCategory::BotnetCc => "botnet",
            DomainCategory::Malware => "malware",
            DomainCategory::Phishing => "phish",
            DomainCategory::AbusedRedirector => "abused-redirector",
            DomainCategory::Malformed => "mal-formatted",
        }
    }
}

/// One service of the universe.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Human-readable service label ("S1", "cdn-svc-17", ...).
    pub label: ServiceLabel,
    /// The customer-facing domain clients query.
    pub customer_domain: DomainName,
    /// CNAME chain from the customer-facing name down to the name the
    /// A/AAAA records are published for. Empty for direct-hosted services.
    /// Ordered customer-side first; the last element owns the A records.
    pub cname_chain: Vec<DomainName>,
    /// Pool of edge IPs that serve this service.
    pub edge_ips: Vec<IpAddr>,
    /// Origin AS numbers of the edge IPs (Figure 4). Traffic is spread
    /// across them proportionally to their position weight.
    pub origin_asns: Vec<u32>,
    /// Relative traffic weight (heavy-tailed).
    pub popularity: f64,
    /// Category of the customer-facing domain.
    pub category: DomainCategory,
    /// Are this service's DNS answers DNS-related at all? Services with
    /// `false` model traffic whose destination IP was never obtained via
    /// DNS (peer-to-peer, hard-coded IPs, ...).
    pub dns_related: bool,
}

impl ServiceSpec {
    /// The name the A/AAAA records are published under (the end of the
    /// CNAME chain, or the customer domain itself).
    pub fn a_record_owner(&self) -> &DomainName {
        self.cname_chain.last().unwrap_or(&self.customer_domain)
    }

    /// Is this service's domain suspicious (any non-benign category except
    /// `Malformed`)?
    pub fn is_suspicious(&self) -> bool {
        !matches!(
            self.category,
            DomainCategory::Benign | DomainCategory::Malformed
        )
    }
}

/// Configuration of the universe.
#[derive(Debug, Clone, Copy)]
pub struct UniverseConfig {
    /// Number of benign CDN-hosted services.
    pub cdn_services: usize,
    /// Number of benign direct-hosted services (no CNAME chain).
    pub direct_services: usize,
    /// Number of services that are *not* DNS-related (their flows can
    /// never be correlated). Their share of traffic models the paper's
    /// "not all the traffic is DNS-related".
    pub non_dns_services: usize,
    /// Counts of suspicious domains: (spam, botnet, redirector, malware,
    /// phishing). The paper's 1M-name hourly sample contained
    /// (512, 41, 34, 11, 3).
    pub suspicious_counts: (usize, usize, usize, usize, usize),
    /// Number of malformed (RFC-violating) domains; 87% of them contain an
    /// underscore, the rest violate other rules.
    pub malformed_domains: usize,
    /// Fraction of edge IPs shared between two different services
    /// (Figure 9: 12% of IPs carry more than one name).
    pub shared_ip_fraction: f64,
    /// Number of IPv4 /24 blocks available per CDN AS.
    pub prefixes_per_as: usize,
    /// Random seed for universe construction.
    pub seed: u64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            cdn_services: 180,
            direct_services: 120,
            non_dns_services: 40,
            suspicious_counts: (52, 9, 7, 4, 3),
            malformed_domains: 120,
            shared_ip_fraction: 0.12,
            prefixes_per_as: 4,
            seed: 42,
        }
    }
}

/// The generated universe.
#[derive(Debug, Clone)]
pub struct DomainUniverse {
    /// All services, benign and otherwise.
    pub services: Vec<ServiceSpec>,
    /// Cumulative popularity weights for fast weighted sampling (aligned
    /// with `services`).
    cumulative: Vec<f64>,
    /// The two flagship streaming services used by the Figure 4 use case.
    pub streaming_s1: usize,
    /// Index of streaming service S2.
    pub streaming_s2: usize,
}

/// AS number used for the single-origin streaming service S1.
pub const S1_ASN: u32 = 64_501;
/// First AS number of the dual-origin streaming service S2.
pub const S2_ASN_A: u32 = 64_601;
/// Second AS number of the dual-origin streaming service S2.
pub const S2_ASN_B: u32 = 64_602;
/// AS numbers used for generic CDN services (cycled).
pub const CDN_ASNS: [u32; 6] = [65_010, 65_011, 65_012, 65_013, 65_014, 65_015];

impl DomainUniverse {
    /// Build a universe from `config`.
    pub fn generate(config: &UniverseConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let chain_dist = ChainLengthDist;
        let mut services = Vec::new();
        let mut ip_alloc = IpAllocator::new();

        // --- The two flagship streaming services (Figure 4). -------------
        let streaming_s1 = services.len();
        services.push(make_service(
            "S1",
            "video.stream-one.example",
            "cdn-one.net",
            3,
            24,
            &[S1_ASN],
            55.0,
            DomainCategory::Benign,
            &mut ip_alloc,
            &mut rng,
        ));
        let streaming_s2 = services.len();
        services.push(make_service(
            "S2",
            "play.stream-two.example",
            "cdn-two.net",
            2,
            24,
            &[S2_ASN_A, S2_ASN_B],
            40.0,
            DomainCategory::Benign,
            &mut ip_alloc,
            &mut rng,
        ));

        // --- Ordinary CDN-hosted services. --------------------------------
        for i in 0..config.cdn_services {
            let asn = CDN_ASNS[i % CDN_ASNS.len()];
            let hops = chain_dist.sample(&mut rng).max(1);
            let popularity = zipf_weight(&mut rng, 8.0);
            services.push(make_service(
                &format!("cdn-svc-{i}"),
                &format!("www.service{i}.example"),
                &format!("cdn{}.example-cdn.net", i % CDN_ASNS.len()),
                hops,
                rng.gen_range(2..10),
                &[asn],
                popularity,
                DomainCategory::Benign,
                &mut ip_alloc,
                &mut rng,
            ));
        }

        // --- Direct-hosted services (no CNAME chain). ---------------------
        for i in 0..config.direct_services {
            let popularity = zipf_weight(&mut rng, 1.5);
            services.push(make_service(
                &format!("direct-{i}"),
                &format!("site{i}.direct.example"),
                "",
                0,
                rng.gen_range(1..3),
                &[CDN_ASNS[i % CDN_ASNS.len()]],
                popularity,
                DomainCategory::Benign,
                &mut ip_alloc,
                &mut rng,
            ));
        }

        // --- Traffic that is not DNS-related at all. -----------------------
        for i in 0..config.non_dns_services {
            let mut spec = make_service(
                &format!("non-dns-{i}"),
                &format!("peer{i}.invalid"),
                "",
                0,
                1,
                &[64_900 + (i % 4) as u32],
                // Not-DNS-related traffic (peer-to-peer, hard-coded IPs, ...)
                // carries a noticeable share of ISP bytes; its weight is set
                // so that, together with the 95% resolver coverage, the
                // generator lands near the paper's 81.7% correlation rate.
                zipf_weight(&mut rng, 14.0),
                DomainCategory::Benign,
                &mut ip_alloc,
                &mut rng,
            );
            spec.dns_related = false;
            services.push(spec);
        }

        // --- Suspicious domains (Section 5). -------------------------------
        let (spam, botnet, redirector, malware, phishing) = config.suspicious_counts;
        let suspicious = [
            (DomainCategory::Spam, spam, "spamhub"),
            (DomainCategory::BotnetCc, botnet, "cc-node"),
            (DomainCategory::AbusedRedirector, redirector, "redir"),
            (DomainCategory::Malware, malware, "dropper"),
            (DomainCategory::Phishing, phishing, "login-verify"),
        ];
        for (category, count, stem) in suspicious {
            for i in 0..count {
                services.push(make_service(
                    &format!("{}-{i}", category.label()),
                    &format!("{stem}{i}.bad{}.example", i % 7),
                    "",
                    0,
                    1,
                    &[64_700 + (i % 3) as u32],
                    zipf_weight(&mut rng, 0.08),
                    category,
                    &mut ip_alloc,
                    &mut rng,
                ));
            }
        }

        // --- Malformed domains (Section 5, invalid domain names). ----------
        for i in 0..config.malformed_domains {
            // 87% of malformed names contain an underscore; the rest have a
            // leading-digit label or an over-long label.
            let name = if (i as f64) < config.malformed_domains as f64 * 0.87 {
                format!("_svc{i}._tcp.host{i}.example")
            } else if i % 2 == 0 {
                format!("{i}numeric.host.example")
            } else {
                format!("{}.long.example", "x".repeat(70))
            };
            services.push(make_service(
                &format!("malformed-{i}"),
                &name,
                "",
                0,
                1,
                &[64_800],
                zipf_weight(&mut rng, 0.05),
                DomainCategory::Malformed,
                &mut ip_alloc,
                &mut rng,
            ));
        }

        // --- Shared edge IPs (Figure 9 / accuracy caveat). -----------------
        // Pick pairs of benign CDN services and make them share one IP.
        let benign_indices: Vec<usize> = services
            .iter()
            .enumerate()
            .filter(|(_, s)| s.category == DomainCategory::Benign && s.dns_related)
            .map(|(i, _)| i)
            .collect();
        let total_ips: usize = services.iter().map(|s| s.edge_ips.len()).sum();
        let shares = (total_ips as f64 * config.shared_ip_fraction / 2.0) as usize;
        for _ in 0..shares {
            let a = *benign_indices
                .choose(&mut rng)
                .expect("benign services exist");
            let b = *benign_indices
                .choose(&mut rng)
                .expect("benign services exist");
            if a == b {
                continue;
            }
            let ip = *services[a]
                .edge_ips
                .choose(&mut rng)
                .expect("service has IPs");
            services[b].edge_ips.push(ip);
        }

        let mut cumulative = Vec::with_capacity(services.len());
        let mut acc = 0.0;
        for s in &services {
            acc += s.popularity;
            cumulative.push(acc);
        }

        DomainUniverse {
            services,
            cumulative,
            streaming_s1,
            streaming_s2,
        }
    }

    /// Total popularity weight.
    pub fn total_weight(&self) -> f64 {
        *self.cumulative.last().unwrap_or(&0.0)
    }

    /// Pick a service index, weighted by popularity.
    pub fn pick_service(&self, rng: &mut StdRng) -> usize {
        let x: f64 = rng.gen_range(0.0..self.total_weight());
        match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.services.len() - 1),
        }
    }

    /// The services of a given category.
    pub fn by_category(&self, category: DomainCategory) -> impl Iterator<Item = &ServiceSpec> {
        self.services.iter().filter(move |s| s.category == category)
    }

    /// Render the universe's BGP announcements in the `prefix origin_as`
    /// text format `flowdns_bgp::RoutingTable::from_announcements_text`
    /// parses and the `routing_table` config key loads: every service's
    /// edge IPs announced as host routes (/32 IPv4, /128 IPv6) spread
    /// round-robin across the service's origin ASes. Host routes keep
    /// neighbouring services (whose synthetic edge IPs share /24 blocks)
    /// from hijacking each other's attribution.
    pub fn announcements_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# BGP announcements derived from the generated CDN universe\n");
        for service in &self.services {
            if service.origin_asns.is_empty() {
                continue;
            }
            for (i, ip) in service.edge_ips.iter().enumerate() {
                // Spread the service's address space across its origin
                // ASes (uneven when there are two, matching Figure 4b).
                let asn = service.origin_asns[i % service.origin_asns.len()];
                let len = match ip {
                    IpAddr::V4(_) => 32,
                    IpAddr::V6(_) => 128,
                };
                out.push_str(&format!("{ip}/{len} {asn}\n"));
            }
        }
        out
    }

    /// Write [`DomainUniverse::announcements_text`] to a file, so a
    /// `flowdnsd` deployment (or test) can point its `routing_table`
    /// config key at the generated universe.
    pub fn write_announcements<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.announcements_text())
    }

    /// The share of total popularity weight carried by DNS-related
    /// services visible in the universe (an upper bound on the
    /// correlation rate before coverage effects).
    pub fn dns_related_weight_share(&self) -> f64 {
        let dns: f64 = self
            .services
            .iter()
            .filter(|s| s.dns_related)
            .map(|s| s.popularity)
            .sum();
        dns / self.total_weight()
    }
}

/// Allocates non-overlapping synthetic edge IPs.
#[derive(Debug)]
struct IpAllocator {
    next_v4: u32,
    next_v6: u64,
}

impl IpAllocator {
    fn new() -> Self {
        IpAllocator {
            // Start inside 100.64.0.0/10 (CGN space) — plenty of room and
            // clearly synthetic.
            next_v4: u32::from(Ipv4Addr::new(100, 64, 0, 1)),
            next_v6: 1,
        }
    }

    fn next(&mut self, rng: &mut StdRng) -> IpAddr {
        // ~15% of edge IPs are IPv6, the rest IPv4.
        if rng.gen_bool(0.15) {
            let ip = Ipv6Addr::new(
                0x2001,
                0xdb8,
                0xcd,
                0,
                0,
                0,
                (self.next_v6 >> 16) as u16,
                self.next_v6 as u16,
            );
            self.next_v6 += 1;
            IpAddr::V6(ip)
        } else {
            let ip = Ipv4Addr::from(self.next_v4);
            self.next_v4 += 1;
            IpAddr::V4(ip)
        }
    }
}

fn zipf_weight(rng: &mut StdRng, scale: f64) -> f64 {
    // Pareto-like heavy tail: a few services get very large weights.
    let u: f64 = rng.gen_range(0.01..1.0);
    scale * u.powf(-0.8) / 10.0
}

#[allow(clippy::too_many_arguments)]
fn make_service(
    label: &str,
    customer_domain: &str,
    cdn_suffix: &str,
    chain_hops: usize,
    ip_count: usize,
    asns: &[u32],
    popularity: f64,
    category: DomainCategory,
    ips: &mut IpAllocator,
    rng: &mut StdRng,
) -> ServiceSpec {
    let customer = DomainName::literal(customer_domain);
    let mut chain = Vec::with_capacity(chain_hops);
    for hop in 0..chain_hops {
        let name = format!(
            "edge{hop}-{}.{}",
            label.replace('.', "-"),
            if cdn_suffix.is_empty() {
                "cdn.example-cdn.net"
            } else {
                cdn_suffix
            }
        );
        chain.push(DomainName::literal(&name));
    }
    let edge_ips = (0..ip_count.max(1)).map(|_| ips.next(rng)).collect();
    ServiceSpec {
        label: ServiceLabel::new(label),
        customer_domain: customer,
        cname_chain: chain,
        edge_ips,
        origin_asns: asns.to_vec(),
        popularity,
        category,
        dns_related: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> DomainUniverse {
        DomainUniverse::generate(&UniverseConfig::default())
    }

    #[test]
    fn universe_has_expected_composition() {
        let u = universe();
        let cfg = UniverseConfig::default();
        let benign = u.by_category(DomainCategory::Benign).count();
        assert_eq!(
            benign,
            2 + cfg.cdn_services + cfg.direct_services + cfg.non_dns_services
        );
        assert_eq!(
            u.by_category(DomainCategory::Spam).count(),
            cfg.suspicious_counts.0
        );
        assert_eq!(
            u.by_category(DomainCategory::BotnetCc).count(),
            cfg.suspicious_counts.1
        );
        assert_eq!(
            u.by_category(DomainCategory::Malformed).count(),
            cfg.malformed_domains
        );
    }

    #[test]
    fn streaming_services_have_expected_as_structure() {
        let u = universe();
        let s1 = &u.services[u.streaming_s1];
        let s2 = &u.services[u.streaming_s2];
        assert_eq!(s1.origin_asns, vec![S1_ASN]);
        assert_eq!(s2.origin_asns, vec![S2_ASN_A, S2_ASN_B]);
        assert_eq!(s1.label.as_str(), "S1");
        assert!(!s1.cname_chain.is_empty());
    }

    #[test]
    fn announcements_cover_every_edge_ip_as_host_routes() {
        let u = universe();
        let text = u.announcements_text();
        // One line per edge IP of every AS-bearing service (plus header).
        let expected: usize = u
            .services
            .iter()
            .filter(|s| !s.origin_asns.is_empty())
            .map(|s| s.edge_ips.len())
            .sum();
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();
        assert_eq!(lines.len(), expected);
        for line in &lines {
            let (prefix, asn) = line.split_once(' ').expect("prefix asn");
            assert!(
                prefix.ends_with("/32") || prefix.ends_with("/128"),
                "{prefix}"
            );
            assert!(asn.parse::<u32>().unwrap() > 0);
        }
        // S1's edge IPs are all announced by S1's single AS.
        let s1 = &u.services[u.streaming_s1];
        for ip in &s1.edge_ips {
            assert!(
                text.contains(&format!("{ip}/32 {S1_ASN}"))
                    || text.contains(&format!("{ip}/128 {S1_ASN}")),
                "missing host route for {ip}"
            );
        }
        // write_announcements round-trips through the filesystem.
        let dir = std::env::temp_dir().join("flowdns-gen-announcements-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rib.txt");
        u.write_announcements(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_domains_mostly_contain_underscores() {
        let u = universe();
        let malformed: Vec<&ServiceSpec> = u.by_category(DomainCategory::Malformed).collect();
        let with_underscore = malformed
            .iter()
            .filter(|s| s.customer_domain.as_str().contains('_'))
            .count();
        let share = with_underscore as f64 / malformed.len() as f64;
        assert!((share - 0.87).abs() < 0.03, "underscore share {share}");
        // None of them pass strict validation.
        assert!(malformed
            .iter()
            .all(|s| !s.customer_domain.strictly_valid()));
    }

    #[test]
    fn weighted_sampling_is_heavy_tailed_and_in_range() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; u.services.len()];
        for _ in 0..20_000 {
            counts[u.pick_service(&mut rng)] += 1;
        }
        // The flagship streaming services must receive a large share.
        assert!(counts[u.streaming_s1] > 1_000);
        // Everything sampled is a valid index (implicit) and suspicious
        // domains receive only a small share of picks.
        let suspicious_picks: u32 = u
            .services
            .iter()
            .zip(&counts)
            .filter(|(s, _)| s.is_suspicious())
            .map(|(_, c)| *c)
            .sum();
        assert!((suspicious_picks as f64) < 20_000.0 * 0.05);
    }

    #[test]
    fn some_ips_are_shared_between_services() {
        let u = universe();
        use std::collections::HashMap;
        let mut owners: HashMap<IpAddr, usize> = HashMap::new();
        for s in &u.services {
            for ip in &s.edge_ips {
                *owners.entry(*ip).or_default() += 1;
            }
        }
        let shared = owners.values().filter(|c| **c > 1).count();
        assert!(shared > 0, "expected some shared IPs");
        let share = shared as f64 / owners.len() as f64;
        assert!(share < 0.25, "shared share should stay a minority: {share}");
    }

    #[test]
    fn dns_related_share_is_large_but_not_total() {
        let u = universe();
        let share = u.dns_related_weight_share();
        assert!(share > 0.7 && share < 0.97, "share {share}");
    }

    #[test]
    fn a_record_owner_is_chain_end_or_customer_domain() {
        let u = universe();
        for s in &u.services {
            if s.cname_chain.is_empty() {
                assert_eq!(s.a_record_owner(), &s.customer_domain);
            } else {
                assert_eq!(s.a_record_owner(), s.cname_chain.last().unwrap());
            }
        }
    }
}
