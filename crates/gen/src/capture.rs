//! The two-website accuracy experiment (Section 4, Accuracy).
//!
//! The paper browses two websites, captures the traffic, feeds the DNS
//! packets and the NetFlow records derived from all packets into FlowDNS,
//! and checks whether each flow is attributed to the site that actually
//! produced it. Two scenarios:
//!
//! 1. the two sites use **different IP addresses** → every flow is
//!    attributed correctly (100% accuracy);
//! 2. the two sites share **the same IP address** → the second site's DNS
//!    record overwrites the first in the IP-NAME hashmap, so all flows are
//!    attributed to the second site (50% accuracy).
//!
//! [`AccuracyCapture`] builds those deterministic captures.

use std::net::{IpAddr, Ipv4Addr};

use flowdns_types::{DnsRecord, DomainName, FlowRecord, SimTime};

/// Which of the paper's two scenarios to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyScenario {
    /// Two websites with different domain names and different IPs.
    DistinctIps,
    /// Two websites with different domain names sharing one IP.
    SharedIp,
}

/// A deterministic two-website capture.
#[derive(Debug, Clone)]
pub struct AccuracyCapture {
    /// The first website's domain.
    pub site_a: DomainName,
    /// The second website's domain.
    pub site_b: DomainName,
    /// DNS records extracted from the capture (fed as the DNS stream).
    pub dns: Vec<DnsRecord>,
    /// Flow records derived from all traffic packets (fed as the NetFlow
    /// stream), together with the site that actually produced each flow.
    pub flows: Vec<(FlowRecord, DomainName)>,
}

impl AccuracyCapture {
    /// Build the capture for a scenario. `flows_per_site` controls how
    /// many flows each browsing session produces.
    pub fn build(scenario: AccuracyScenario, flows_per_site: usize) -> Self {
        let site_a = DomainName::literal("news.site-alpha.example");
        let site_b = DomainName::literal("blog.site-beta.example");
        let ip_a: IpAddr = Ipv4Addr::new(198, 51, 100, 10).into();
        let ip_b: IpAddr = match scenario {
            AccuracyScenario::DistinctIps => Ipv4Addr::new(203, 0, 113, 20).into(),
            AccuracyScenario::SharedIp => ip_a,
        };

        // Browsing site A at t=1, site B at t=2 (so B's DNS record is the
        // one that overwrites when the IP is shared).
        let dns = vec![
            DnsRecord::address(SimTime::from_secs(1), site_a.clone(), ip_a, 300),
            DnsRecord::address(SimTime::from_secs(2), site_b.clone(), ip_b, 300),
        ];

        let mut flows = Vec::with_capacity(flows_per_site * 2);
        for i in 0..flows_per_site {
            flows.push((
                FlowRecord::inbound(
                    SimTime::from_secs(3 + i as u64),
                    ip_a,
                    Ipv4Addr::new(10, 7, 0, 1).into(),
                    40_000 + i as u64,
                ),
                site_a.clone(),
            ));
            flows.push((
                FlowRecord::inbound(
                    SimTime::from_secs(3 + i as u64),
                    ip_b,
                    Ipv4Addr::new(10, 7, 0, 1).into(),
                    40_000 + i as u64,
                ),
                site_b.clone(),
            ));
        }

        AccuracyCapture {
            site_a,
            site_b,
            dns,
            flows,
        }
    }

    /// Score attributions: `attributions[i]` is the name FlowDNS reported
    /// for `flows[i]` (or `None`). Returns accuracy in `[0, 1]`.
    pub fn accuracy(&self, attributions: &[Option<DomainName>]) -> f64 {
        assert_eq!(attributions.len(), self.flows.len());
        if self.flows.is_empty() {
            return 1.0;
        }
        let correct = self
            .flows
            .iter()
            .zip(attributions)
            .filter(|((_, truth), got)| got.as_ref() == Some(truth))
            .count();
        correct as f64 / self.flows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ips_scenario_has_two_addresses() {
        let cap = AccuracyCapture::build(AccuracyScenario::DistinctIps, 5);
        assert_eq!(cap.dns.len(), 2);
        assert_eq!(cap.flows.len(), 10);
        let a = cap.dns[0].answer.as_ip().unwrap();
        let b = cap.dns[1].answer.as_ip().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn shared_ip_scenario_reuses_the_address() {
        let cap = AccuracyCapture::build(AccuracyScenario::SharedIp, 5);
        let a = cap.dns[0].answer.as_ip().unwrap();
        let b = cap.dns[1].answer.as_ip().unwrap();
        assert_eq!(a, b);
        // Ground truth still distinguishes the two sites.
        assert!(cap.flows.iter().any(|(_, s)| s == &cap.site_a));
        assert!(cap.flows.iter().any(|(_, s)| s == &cap.site_b));
    }

    #[test]
    fn accuracy_scoring() {
        let cap = AccuracyCapture::build(AccuracyScenario::DistinctIps, 1);
        let perfect: Vec<Option<DomainName>> =
            cap.flows.iter().map(|(_, s)| Some(s.clone())).collect();
        assert_eq!(cap.accuracy(&perfect), 1.0);
        let all_b: Vec<Option<DomainName>> =
            cap.flows.iter().map(|_| Some(cap.site_b.clone())).collect();
        assert_eq!(cap.accuracy(&all_b), 0.5);
        let none: Vec<Option<DomainName>> = cap.flows.iter().map(|_| None).collect();
        assert_eq!(cap.accuracy(&none), 0.0);
    }

    #[test]
    #[should_panic]
    fn accuracy_requires_matching_lengths() {
        let cap = AccuracyCapture::build(AccuracyScenario::SharedIp, 2);
        let _ = cap.accuracy(&[]);
    }
}
