//! The ISP workload generator.
//!
//! Produces a time-ordered stream of DNS records (what the resolver feed
//! would deliver) and flow records (what the NetFlow feed would deliver)
//! whose joint structure drives the correlator the same way the real ISP
//! streams do:
//!
//! * flows are produced by a [`SubscriberPopulation`] — per-AS subscriber
//!   skew, heavy-tailed flow sizes, a real diurnal curve — over the
//!   popularity-weighted service universe, with a `service_concentration`
//!   exponent focusing traffic on the CDN/VoD head;
//! * before a flow from an edge IP can appear, the generator emits the DNS
//!   records a real client population would have produced — the full CNAME
//!   chain plus the A/AAAA record — unless the IP belongs to the "hidden"
//!   5% whose clients use public resolvers (the coverage gap of Section 4);
//! * every announced flow trails its announcement by at least the
//!   population's modeled DNS→flow lag;
//! * an edge IP is re-announced only after its TTL-derived re-query
//!   interval has elapsed, so correlation genuinely depends on how long
//!   the store retains records across clear-ups — which is what separates
//!   the Main / NoRotation / NoClearUp / NoLong variants;
//! * a configurable share of traffic is not DNS-related at all and can
//!   never be correlated;
//! * a small share of flows are DNS/DoT queries to resolvers (ports
//!   53/853), feeding the coverage analysis;
//! * flows from malformed domains occasionally trigger return traffic,
//!   feeding the bidirectional-traffic analysis of Section 5.
//!
//! The generator is **streaming-only**: [`Workload::events`] yields the
//! trace lazily in constant memory (state is bounded by the universe size
//! and the per-second event burst, never by trace length), so week-long
//! multi-million-subscriber soaks iterate without materializing anything.
//! [`Workload::generate`] survives as a size-capped test convenience.

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flowdns_types::{
    DnsRecord, DomainName, FlowDirection, FlowKey, FlowRecord, Protocol, SimDuration, SimTime,
    StreamId,
};

use crate::distributions::TtlDist;
use crate::domains::{DomainCategory, DomainUniverse, UniverseConfig};
use crate::population::SubscriberPopulation;
use crate::resolvers::PublicResolverList;

/// Hard cap on [`Workload::generate`]: it exists for small tests and
/// examples only, the streaming iterator is the real interface.
pub const GENERATE_EVENT_CAP: usize = 200_000;

/// One event of the generated workload, in time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A DNS record delivered on the resolver feed.
    Dns(DnsRecord),
    /// A flow record delivered on a NetFlow stream.
    Flow(FlowRecord),
}

impl StreamEvent {
    /// The event timestamp.
    pub fn ts(&self) -> SimTime {
        match self {
            StreamEvent::Dns(r) => r.ts,
            StreamEvent::Flow(f) => f.ts,
        }
    }
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Universe composition.
    pub universe: UniverseConfig,
    /// The subscriber population producing the traffic.
    pub population: SubscriberPopulation,
    /// Length of the generated trace.
    pub duration: SimDuration,
    /// Flow rate at the diurnal peak (records per simulated second).
    pub peak_flows_per_sec: f64,
    /// Background DNS rate at the diurnal peak (records per second) in
    /// addition to the flow-driven announcements.
    pub background_dns_per_sec: f64,
    /// Fraction of clients using a public resolver instead of the ISP
    /// resolver (Section 4 coverage: 1 in 20).
    pub public_resolver_fraction: f64,
    /// Fraction of flows that are DNS/DoT queries to resolvers (ports
    /// 53/853), used by the coverage analysis.
    pub dns_query_flow_fraction: f64,
    /// Probability that a flow from a malformed domain triggers a return
    /// (outbound) flow.
    pub malformed_reply_probability: f64,
    /// Number of parallel DNS streams (2 at the large ISP).
    pub dns_streams: u16,
    /// Number of parallel NetFlow streams (26 at the large ISP).
    pub netflow_streams: u16,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            universe: UniverseConfig::default(),
            population: SubscriberPopulation::residential(),
            duration: SimDuration::from_hours(24),
            peak_flows_per_sec: 45.0,
            background_dns_per_sec: 6.0,
            public_resolver_fraction: 0.05,
            dns_query_flow_fraction: 0.02,
            malformed_reply_probability: 0.25,
            dns_streams: 2,
            netflow_streams: 26,
            seed: 20_221_206,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration (few minutes, low rate, 50k-line
    /// population) for tests and quick examples.
    pub fn small() -> Self {
        WorkloadConfig {
            population: SubscriberPopulation::small(),
            duration: SimDuration::from_secs(1_800),
            peak_flows_per_sec: 20.0,
            background_dns_per_sec: 4.0,
            ..WorkloadConfig::default()
        }
    }
}

/// A constructed workload: the universe plus a lazily generated event
/// stream.
#[derive(Debug)]
pub struct Workload {
    config: WorkloadConfig,
    universe: DomainUniverse,
    resolvers: PublicResolverList,
    /// Edge IPs whose clients exclusively use public resolvers: their DNS
    /// records never reach FlowDNS.
    hidden_ips: Vec<IpAddr>,
    /// Cumulative service weights with the population's
    /// `service_concentration` exponent applied (aligned with
    /// `universe.services`).
    biased_cumulative: Vec<f64>,
}

impl Workload {
    /// Build a workload (constructs the universe and picks the hidden IP
    /// set deterministically from the seed).
    ///
    /// # Panics
    ///
    /// If the population fails [`SubscriberPopulation::validate`].
    pub fn new(config: WorkloadConfig) -> Self {
        if let Err(reason) = config.population.validate() {
            panic!("invalid subscriber population: {reason}");
        }
        let universe = DomainUniverse::generate(&config.universe);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9);
        let mut hidden = Vec::new();
        for s in &universe.services {
            if !s.dns_related {
                continue;
            }
            for ip in &s.edge_ips {
                if rng.gen_bool(config.public_resolver_fraction) {
                    hidden.push(*ip);
                }
            }
        }
        let exponent = config.population.service_concentration;
        let mut biased_cumulative = Vec::with_capacity(universe.services.len());
        let mut acc = 0.0;
        for s in &universe.services {
            acc += s.popularity.powf(exponent);
            biased_cumulative.push(acc);
        }
        Workload {
            config,
            universe,
            resolvers: PublicResolverList::default(),
            hidden_ips: hidden,
            biased_cumulative,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The subscriber population producing the traffic.
    pub fn population(&self) -> &SubscriberPopulation {
        &self.config.population
    }

    /// The underlying service universe.
    pub fn universe(&self) -> &DomainUniverse {
        &self.universe
    }

    /// The public-resolver list used for DNS-query flows.
    pub fn resolvers(&self) -> &PublicResolverList {
        &self.resolvers
    }

    /// Edge IPs invisible to the ISP resolver feed.
    pub fn hidden_ips(&self) -> &[IpAddr] {
        &self.hidden_ips
    }

    /// Pick a service index weighted by concentration-biased popularity.
    pub fn pick_service_biased(&self, rng: &mut StdRng) -> usize {
        let total = *self.biased_cumulative.last().expect("non-empty universe");
        let x: f64 = rng.gen_range(0.0..total);
        self.biased_cumulative
            .partition_point(|&c| c <= x)
            .min(self.universe.services.len() - 1)
    }

    /// The correlation fraction an ideal store *should* achieve on the
    /// inbound content flows of this workload: the concentration-biased
    /// weight share of DNS-related services, discounted per service by
    /// the realized fraction of its edge IPs that are hidden behind
    /// public resolvers. This is exact for the streamed trace up to
    /// sampling noise — the golden accuracy tier holds measured runs to
    /// within one percentage point of it.
    pub fn expected_correlation_fraction(&self) -> f64 {
        let total = *self.biased_cumulative.last().expect("non-empty universe");
        let mut visible = 0.0;
        let mut prev = 0.0;
        for (s, cum) in self.universe.services.iter().zip(&self.biased_cumulative) {
            let weight = cum - prev;
            prev = *cum;
            if !s.dns_related || s.edge_ips.is_empty() {
                continue;
            }
            let hidden = s
                .edge_ips
                .iter()
                .filter(|ip| self.hidden_ips.contains(ip))
                .count();
            let visible_share = (s.edge_ips.len() - hidden) as f64 / s.edge_ips.len() as f64;
            visible += weight * visible_share;
        }
        visible / total
    }

    /// Iterate over the workload's events in time order. This is the
    /// generator's real interface: constant memory regardless of trace
    /// length, byte-identical output for identical seed + config.
    pub fn events(&self) -> WorkloadIter<'_> {
        WorkloadIter::new(self)
    }

    /// Materialize the whole workload into DNS and flow vectors — a
    /// test-only convenience for *small* configurations.
    ///
    /// # Panics
    ///
    /// If the trace exceeds [`GENERATE_EVENT_CAP`] events. Long traces
    /// must stream through [`Workload::events`] instead.
    pub fn generate(&self) -> (Vec<DnsRecord>, Vec<FlowRecord>) {
        let mut dns = Vec::new();
        let mut flows = Vec::new();
        for (n, event) in self.events().enumerate() {
            assert!(
                n < GENERATE_EVENT_CAP,
                "Workload::generate() is a test-only convenience capped at \
                 {GENERATE_EVENT_CAP} events; stream long traces via Workload::events()"
            );
            match event {
                StreamEvent::Dns(r) => dns.push(r),
                StreamEvent::Flow(f) => flows.push(f),
            }
        }
        (dns, flows)
    }
}

/// Per-edge-IP announcement state.
#[derive(Debug, Clone, Copy)]
struct AnnounceState {
    last_announced: u64,
    reannounce_after: u64,
    /// Timestamp of the most recent announcement, microseconds — flows
    /// for this IP are floored at `last_ts_micros + dns_flow_lag`.
    last_ts_micros: u64,
}

/// Lazily generates the workload second by second. Memory is bounded by
/// the announcement map (one entry per visible edge IP, a property of
/// the universe) and the one-second event buffer — never by trace
/// length.
pub struct WorkloadIter<'a> {
    workload: &'a Workload,
    rng: StdRng,
    ttl_address: TtlDist,
    ttl_cname: TtlDist,
    current_sec: u64,
    end_sec: u64,
    announced: HashMap<IpAddr, AnnounceState>,
    buffer: std::collections::VecDeque<StreamEvent>,
    flow_seq: u64,
    dns_seq: u64,
    events_this_sec: u64,
    /// High-water mark of emitted timestamps; keeps the stream
    /// non-decreasing even when a lag floor pushes an event forward.
    cursor_micros: u64,
}

impl<'a> WorkloadIter<'a> {
    fn new(workload: &'a Workload) -> Self {
        WorkloadIter {
            workload,
            rng: StdRng::seed_from_u64(workload.config.seed),
            ttl_address: TtlDist::address(),
            ttl_cname: TtlDist::cname(),
            current_sec: 0,
            end_sec: workload.config.duration.as_secs(),
            announced: HashMap::new(),
            buffer: std::collections::VecDeque::new(),
            flow_seq: 0,
            dns_seq: 0,
            events_this_sec: 0,
            cursor_micros: 0,
        }
    }

    fn client_ip(&mut self) -> IpAddr {
        let pick: f64 = self.rng.gen();
        let rank: f64 = self.rng.gen();
        IpAddr::V4(self.workload.config.population.client_addr(pick, rank))
    }

    fn sample_count(&mut self, rate: f64) -> usize {
        let base = rate.floor() as usize;
        let frac = rate - base as f64;
        base + usize::from(self.rng.gen_bool(frac.clamp(0.0, 1.0)))
    }

    fn flow_bytes(&mut self, streaming: bool) -> u64 {
        let sizes = &self.workload.config.population.flow_sizes;
        if streaming {
            sizes.sample_streaming(self.rng.gen())
        } else {
            sizes.sample_web(self.rng.gen(), self.rng.gen(), self.rng.gen())
        }
    }

    /// Next timestamp within `sec`, at least `floor_micros`, never
    /// behind an already emitted event.
    fn ts_at_least(&mut self, sec: u64, floor_micros: u64) -> SimTime {
        // Spread events within the second deterministically while keeping
        // them monotonically ordered (the simulator and the stream replay
        // both expect a time-ordered feed).
        let micros = (self.events_this_sec * 997).min(999_999);
        self.events_this_sec += 1;
        let candidate = (sec * 1_000_000 + micros)
            .max(floor_micros)
            .max(self.cursor_micros);
        self.cursor_micros = candidate;
        SimTime::from_micros(candidate)
    }

    fn ts(&mut self, sec: u64) -> SimTime {
        self.ts_at_least(sec, 0)
    }

    /// Emit the DNS records announcing `ip` for the given service, if the
    /// IP is visible and due for re-announcement.
    fn maybe_announce(&mut self, service_idx: usize, ip: IpAddr, sec: u64) {
        let service = &self.workload.universe.services[service_idx];
        if !service.dns_related {
            return;
        }
        if self.workload.hidden_ips.contains(&ip) {
            return;
        }
        let due = match self.announced.get(&ip) {
            None => true,
            Some(state) => sec.saturating_sub(state.last_announced) >= state.reannounce_after,
        };
        if !due {
            return;
        }
        let a_ttl = self.ttl_address.sample(&mut self.rng);
        // Clamp the re-query interval to one rotation window so a
        // retained record always backs the announcement (the store keeps
        // at least the previous full window across clear-ups).
        let reannounce_after = u64::from(a_ttl).clamp(300, 3_600);
        let ts = self.ts(sec);
        self.announced.insert(
            ip,
            AnnounceState {
                last_announced: sec,
                reannounce_after,
                last_ts_micros: ts.as_micros(),
            },
        );
        // CNAME chain: customer -> hop1 -> ... -> a_record_owner.
        let mut names: Vec<&DomainName> = Vec::with_capacity(service.cname_chain.len() + 1);
        names.push(&service.customer_domain);
        names.extend(service.cname_chain.iter());
        for pair in names.windows(2) {
            let c_ttl = self.ttl_cname.sample(&mut self.rng);
            self.dns_seq += 1;
            self.buffer.push_back(StreamEvent::Dns(DnsRecord::cname(
                ts,
                pair[0].clone(),
                pair[1].clone(),
                c_ttl,
            )));
        }
        self.dns_seq += 1;
        self.buffer.push_back(StreamEvent::Dns(DnsRecord::address(
            ts,
            service.a_record_owner().clone(),
            ip,
            a_ttl,
        )));
    }

    #[allow(clippy::too_many_arguments)]
    fn push_flow_after(
        &mut self,
        sec: u64,
        floor_micros: u64,
        src_ip: IpAddr,
        dst_ip: IpAddr,
        dst_port: u16,
        bytes: u64,
        direction: FlowDirection,
    ) {
        let ts = self.ts_at_least(sec, floor_micros);
        self.flow_seq += 1;
        let stream =
            StreamId::new((self.flow_seq % self.workload.config.netflow_streams as u64) as u16);
        self.buffer.push_back(StreamEvent::Flow(FlowRecord {
            ts,
            key: FlowKey {
                src_ip,
                dst_ip,
                src_port: 443,
                dst_port,
                proto: Protocol::Tcp,
            },
            packets: (bytes / 1400).max(1),
            bytes,
            stream,
            direction,
            trace: None,
        }));
    }

    fn push_flow(
        &mut self,
        sec: u64,
        src_ip: IpAddr,
        dst_ip: IpAddr,
        dst_port: u16,
        bytes: u64,
        direction: FlowDirection,
    ) {
        self.push_flow_after(sec, 0, src_ip, dst_ip, dst_port, bytes, direction);
    }

    fn generate_second(&mut self, sec: u64) {
        let population = self.workload.config.population;
        let mult = population.diurnal.multiplier_at(sec);
        let flow_rate = self.workload.config.peak_flows_per_sec * mult;
        let dns_rate = self.workload.config.background_dns_per_sec * mult;

        // Background DNS traffic (cache misses without an associated flow
        // in this trace): re-announces random service IPs.
        let n_dns = self.sample_count(dns_rate);
        for _ in 0..n_dns {
            let idx = self.workload.pick_service_biased(&mut self.rng);
            let service = &self.workload.universe.services[idx];
            let ip = service.edge_ips[self.rng.gen_range(0..service.edge_ips.len())];
            // Background queries ignore the re-announce timer ~25% of the
            // time (several clients may miss their caches independently).
            if self.rng.gen_bool(0.25) {
                self.announced.remove(&ip);
            }
            self.maybe_announce(idx, ip, sec);
        }

        // Content flows.
        let n_flows = self.sample_count(flow_rate);
        for _ in 0..n_flows {
            let idx = self.workload.pick_service_biased(&mut self.rng);
            let service = &self.workload.universe.services[idx];
            let ip = service.edge_ips[self.rng.gen_range(0..service.edge_ips.len())];
            // Streaming-sized sessions come from the flagship VoD
            // services — and from a slice of the non-DNS-related
            // traffic (P2P, VPN, IP-literal video), so the
            // uncorrelatable share carries realistic byte weight.
            let streaming = idx == self.workload.universe.streaming_s1
                || idx == self.workload.universe.streaming_s2
                || (!service.dns_related
                    && self.rng.gen_bool(
                        self.workload
                            .config
                            .population
                            .flow_sizes
                            .non_dns_heavy_probability,
                    ));
            let bytes = self.flow_bytes(streaming);
            let category = service.category;
            self.maybe_announce(idx, ip, sec);
            // The flow trails its announcement by at least the modeled
            // client-side lag between answer and first packet.
            let floor = self
                .announced
                .get(&ip)
                .map(|s| s.last_ts_micros + population.dns_flow_lag_micros)
                .unwrap_or(0);
            let client = self.client_ip();
            self.push_flow_after(sec, floor, ip, client, 443, bytes, FlowDirection::Inbound);

            // Occasional return traffic towards malformed domains
            // (Section 5: 2.7% of clients answer back).
            if category == DomainCategory::Malformed
                && self
                    .rng
                    .gen_bool(self.workload.config.malformed_reply_probability)
            {
                self.push_flow(
                    sec,
                    client,
                    ip,
                    1194,
                    bytes / 50 + 40,
                    FlowDirection::Outbound,
                );
            }
        }

        // DNS/DoT query flows towards resolvers (coverage analysis).
        let n_queries = self.sample_count(flow_rate * self.workload.config.dns_query_flow_fraction);
        for _ in 0..n_queries {
            let client = self.client_ip();
            let public = self
                .rng
                .gen_bool(self.workload.config.public_resolver_fraction);
            let resolver = if public {
                self.workload.resolvers.pick(&mut self.rng)
            } else {
                self.workload.resolvers.isp_resolver(&mut self.rng)
            };
            let port = if public && self.rng.gen_bool(0.3) {
                853
            } else {
                53
            };
            self.push_flow(sec, client, resolver, port, 120, FlowDirection::Outbound);
        }
    }
}

/// A deterministic `(name, address)` population for wire-level load
/// drivers (the saturation harness): `n` distinct names, each resolving
/// to one distinct address from the population's subscriber plan. Unlike
/// [`Workload`], this makes no attempt at statistical realism — it
/// exists so a sender can pre-encode NetFlow datagrams whose source
/// addresses are guaranteed to hit the DNS store, making the measured
/// path the full decode → lookup → write pipeline rather than the
/// uncorrelated fast path.
pub fn saturation_pool_for(
    population: &SubscriberPopulation,
    n: usize,
) -> Vec<(DomainName, Ipv4Addr)> {
    (0..n)
        .map(|i| {
            let name = DomainName::literal(&format!("s{i}.bench.example"));
            (name, population.subscriber_addr(i as u32))
        })
        .collect()
}

/// [`saturation_pool_for`] over the residential preset (large enough
/// that every realistic pool size gets distinct addresses).
pub fn saturation_pool(n: usize) -> Vec<(DomainName, Ipv4Addr)> {
    saturation_pool_for(&SubscriberPopulation::residential(), n)
}

impl Iterator for WorkloadIter<'_> {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        loop {
            if let Some(event) = self.buffer.pop_front() {
                return Some(event);
            }
            if self.current_sec >= self.end_sec {
                return None;
            }
            let sec = self.current_sec;
            self.current_sec += 1;
            self.events_this_sec = 0;
            self.generate_second(sec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::IpKey;
    use std::collections::HashSet;

    fn small_workload() -> Workload {
        Workload::new(WorkloadConfig::small())
    }

    #[test]
    fn events_are_time_ordered_and_cover_the_duration() {
        let w = small_workload();
        let events: Vec<StreamEvent> = w.events().collect();
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].ts() <= pair[1].ts());
        }
        let last = events.last().unwrap().ts().as_secs();
        assert!(last >= w.config().duration.as_secs() - 60);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a: Vec<StreamEvent> = small_workload().events().take(5_000).collect();
        let b: Vec<StreamEvent> = small_workload().events().take(5_000).collect();
        assert_eq!(a, b);
        let mut other_cfg = WorkloadConfig::small();
        other_cfg.seed += 1;
        let c: Vec<StreamEvent> = Workload::new(other_cfg).events().take(5_000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn most_flow_sources_are_announced_before_their_flows() {
        let w = small_workload();
        let mut announced: HashSet<IpKey> = HashSet::new();
        let mut inbound = 0u64;
        let mut announced_first = 0u64;
        for event in w.events() {
            match event {
                StreamEvent::Dns(r) => {
                    if let Some(ip) = r.answer.as_ip() {
                        announced.insert(IpKey::from_ip(ip));
                    }
                }
                StreamEvent::Flow(f) => {
                    if f.direction == FlowDirection::Inbound && f.key.dst_port == 443 {
                        inbound += 1;
                        if announced.contains(&IpKey::from_ip(f.key.src_ip)) {
                            announced_first += 1;
                        }
                    }
                }
            }
        }
        let share = announced_first as f64 / inbound as f64;
        // DNS-related share × coverage (95%) lands near the paper's 82%;
        // allow generator noise on a short trace.
        assert!(
            share > 0.65 && share < 0.97,
            "announced-before-flow share {share}"
        );
    }

    #[test]
    fn expected_correlation_matches_paper_ballpark() {
        let w = small_workload();
        let expected = w.expected_correlation_fraction();
        assert!(expected > 0.65 && expected < 0.92, "expected {expected}");
    }

    #[test]
    fn announced_flows_trail_their_announcement_by_the_lag() {
        let w = small_workload();
        let lag = w.population().dns_flow_lag_micros;
        let mut last_announce: HashMap<IpKey, u64> = HashMap::new();
        let mut checked = 0u64;
        for event in w.events() {
            match event {
                StreamEvent::Dns(r) => {
                    if let Some(ip) = r.answer.as_ip() {
                        last_announce.insert(IpKey::from_ip(ip), r.ts.as_micros());
                    }
                }
                StreamEvent::Flow(f) => {
                    if f.direction == FlowDirection::Inbound && f.key.dst_port == 443 {
                        if let Some(&at) = last_announce.get(&IpKey::from_ip(f.key.src_ip)) {
                            assert!(
                                f.ts.as_micros() >= at + lag,
                                "flow at {} trails announcement at {at} by less than {lag}us",
                                f.ts.as_micros()
                            );
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 100, "lag check exercised only {checked} flows");
    }

    #[test]
    fn clients_come_from_the_population_address_plan() {
        let w = small_workload();
        let population = *w.population();
        let mut seen = 0u64;
        for event in w.events().take(20_000) {
            if let StreamEvent::Flow(f) = event {
                if f.direction == FlowDirection::Inbound && f.key.dst_port == 443 {
                    if let IpAddr::V4(client) = f.key.dst_ip {
                        assert!(
                            population.group_of(client).is_some(),
                            "client {client} outside the subscriber address plan"
                        );
                        seen += 1;
                    } else {
                        panic!("v6 client in a v4 address plan");
                    }
                }
            }
        }
        assert!(seen > 1_000);
    }

    #[test]
    fn dns_query_flows_target_resolver_ports() {
        let w = small_workload();
        let mut to_resolvers = 0u64;
        let mut to_public = 0u64;
        for event in w.events() {
            if let StreamEvent::Flow(f) = event {
                if f.is_dns_or_dot() {
                    to_resolvers += 1;
                    if w.resolvers().is_public(&f.key.dst_ip) {
                        to_public += 1;
                    }
                }
            }
        }
        assert!(to_resolvers > 0);
        let share = to_public as f64 / to_resolvers as f64;
        assert!(share > 0.005 && share < 0.20, "public share {share}");
    }

    #[test]
    fn outbound_replies_to_malformed_domains_exist() {
        let mut cfg = WorkloadConfig::small();
        // Boost malformed traffic so the small trace contains replies.
        cfg.universe.malformed_domains = 400;
        cfg.duration = SimDuration::from_secs(3_600);
        let w = Workload::new(cfg);
        let outbound = w
            .events()
            .filter(|e| {
                matches!(e, StreamEvent::Flow(f)
                    if f.direction == FlowDirection::Outbound && f.key.dst_port == 1194)
            })
            .count();
        assert!(outbound > 0, "expected some outbound replies");
    }

    #[test]
    fn hidden_ips_never_appear_in_dns() {
        let w = small_workload();
        let hidden: HashSet<IpKey> = w
            .hidden_ips()
            .iter()
            .map(|ip| IpKey::from_ip(*ip))
            .collect();
        assert!(!hidden.is_empty());
        for event in w.events() {
            if let StreamEvent::Dns(r) = event {
                if let Some(ip) = r.answer.as_ip() {
                    assert!(
                        !hidden.contains(&IpKey::from_ip(ip)),
                        "hidden IP {ip} leaked into the DNS feed"
                    );
                }
            }
        }
    }

    #[test]
    fn materialize_splits_streams() {
        let mut cfg = WorkloadConfig::small();
        cfg.duration = SimDuration::from_secs(120);
        let w = Workload::new(cfg);
        let (dns, flows) = w.generate();
        assert!(!dns.is_empty());
        assert!(!flows.is_empty());
        // Flow stream ids stay within the configured stream count.
        assert!(flows.iter().all(|f| f.stream.index() < cfg.netflow_streams));
    }

    #[test]
    #[should_panic(expected = "test-only convenience")]
    fn generate_refuses_to_materialize_long_traces() {
        let mut cfg = WorkloadConfig::default();
        cfg.duration = SimDuration::from_hours(168);
        cfg.peak_flows_per_sec = 500.0;
        Workload::new(cfg).generate();
    }

    #[test]
    fn saturation_pool_addresses_follow_the_subscriber_plan() {
        let pool = saturation_pool(1_000);
        assert_eq!(pool.len(), 1_000);
        let distinct: HashSet<Ipv4Addr> = pool.iter().map(|(_, ip)| *ip).collect();
        assert_eq!(distinct.len(), 1_000);
        assert!(pool.iter().all(|(_, ip)| ip.octets()[0] == 10));
    }
}
