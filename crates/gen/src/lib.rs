//! # flowdns-gen
//!
//! Synthetic ISP workload generation for the FlowDNS reproduction.
//!
//! The paper evaluates FlowDNS on proprietary resolver and NetFlow feeds
//! of a large European ISP. This crate replaces those feeds with a
//! generator whose statistical properties are calibrated to everything the
//! paper publishes about the real data:
//!
//! * TTL distribution of A/AAAA and CNAME records (Figure 8: ~70% below
//!   300 s, 99% of A/AAAA below 3600 s, 99% of CNAME below 7200 s),
//! * CNAME chain length distribution (Figure 6: >99% resolvable within 6
//!   look-ups),
//! * names-per-IP and IPs-per-name cardinalities (Figure 9 / A.7: 88% of
//!   IPs map to a single name in 300 s, 35% of names map to >1 IP),
//! * DNS coverage (Section 4: 1 in 20 DNS queries goes to a public
//!   resolver, so 95% of DNS-related traffic is visible),
//! * diurnal traffic volume with evening peaks (Figures 2 and 4),
//! * CDN-dominated traffic (>85% of bytes from CDN-hosted services),
//! * malicious/malformed domain traffic used by the Section 5 use cases
//!   (spam, botnet C&C, malware, phishing, abused redirectors, RFC 1035
//!   violations dominated by underscores).
//!
//! Modules:
//!
//! * [`distributions`] — the calibrated samplers,
//! * [`domains`] — the domain/service/CDN universe,
//! * [`population`] — the subscriber-population model (per-AS skew,
//!   diurnal curve, heavy-tailed flow sizes),
//! * [`workload`] — the main day/week streaming workload generator,
//! * [`resolvers`] — public resolver list and the coverage sample,
//! * [`capture`] — the two-website capture of the accuracy experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod distributions;
pub mod domains;
pub mod population;
pub mod resolvers;
pub mod workload;

pub use capture::{AccuracyCapture, AccuracyScenario};
pub use distributions::{ChainLengthDist, DiurnalProfile, TtlDist};
pub use domains::{DomainCategory, DomainUniverse, ServiceSpec, UniverseConfig};
pub use population::{AccessGroup, DiurnalCurve, FlowSizeDist, SubscriberPopulation};
pub use resolvers::{CoverageSample, PublicResolverList};
pub use workload::{StreamEvent, Workload, WorkloadConfig, WorkloadIter};
