//! Plain-text report rendering used by the experiment binaries.

/// Render a table with a header row and aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:<width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render an `(x, y)` series as two aligned columns, for pasting into a
/// plotting tool or eyeballing a figure's shape.
pub fn render_series(x_label: &str, y_label: &str, series: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(x, y)| vec![format!("{x:.3}"), format!("{y:.4}")])
        .collect();
    render_table(&[x_label, y_label], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let table = render_table(
            &["variant", "correlation"],
            &[
                vec!["Main".into(), "81.7".into()],
                vec!["NoRotation".into(), "79.5".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("variant"));
        assert!(lines[2].starts_with("Main"));
        assert!(lines[3].starts_with("NoRotation"));
        // The correlation column starts at the same offset in every row.
        let offset = lines[0].find("correlation").unwrap();
        assert_eq!(&lines[2][offset..offset + 4], "81.7");
        assert_eq!(&lines[3][offset..offset + 4], "79.5");
    }

    #[test]
    fn series_renders_numbers() {
        let s = render_series("ttl", "ecdf", &[(60.0, 0.25), (300.0, 0.7)]);
        assert!(s.contains("60.000"));
        assert!(s.contains("0.7000"));
    }

    #[test]
    fn empty_rows_render_header_only() {
        let table = render_table(&["a", "b"], &[]);
        assert_eq!(table.lines().count(), 2);
    }
}
