//! Names-per-IP and IPs-per-name cardinality analysis (Figure 9 / A.7).
//!
//! The paper analyzes a 300-second DNS sample and finds that 88% of IP
//! addresses map to a single domain name (which bounds the accuracy of
//! the IP-keyed hashmap), while 35% of domain names map to more than one
//! IP address (which is harmless by design).

use std::collections::{HashMap, HashSet};

use flowdns_types::{DnsRecord, IpKey, NameRef, SimTime, TimeRange};

use crate::ecdf::Ecdf;

/// Cardinality counters over a DNS sample window.
///
/// Keyed the same way as the correlator's hot maps: IPs as compact
/// [`IpKey`]s and names as shared [`NameRef`] handles, so analyzing a
/// long sample does not re-allocate the textual form of every address
/// and name per record.
#[derive(Debug, Default, Clone)]
pub struct CardinalityAnalysis {
    names_per_ip: HashMap<IpKey, HashSet<NameRef>>,
    ips_per_name: HashMap<NameRef, HashSet<IpKey>>,
    window: Option<TimeRange>,
    /// Records skipped because they fell outside the window.
    pub out_of_window: u64,
}

impl CardinalityAnalysis {
    /// Analyze every record (no window restriction).
    pub fn new() -> Self {
        CardinalityAnalysis::default()
    }

    /// Analyze only records whose timestamp falls inside `window` — the
    /// paper uses a 300-second window because that is the TTL of 70% of
    /// records.
    pub fn with_window(window: TimeRange) -> Self {
        CardinalityAnalysis {
            window: Some(window),
            ..CardinalityAnalysis::default()
        }
    }

    /// The conventional 300-second window starting at `start`.
    pub fn short_window(start: SimTime) -> Self {
        CardinalityAnalysis::with_window(TimeRange::starting_at(
            start,
            flowdns_types::SimDuration::from_secs(300),
        ))
    }

    /// Observe one DNS record (only A/AAAA records contribute).
    pub fn observe(&mut self, record: &DnsRecord) {
        if let Some(window) = &self.window {
            if !window.contains(record.ts) {
                self.out_of_window += 1;
                return;
            }
        }
        if let Some(ip) = record.answer.as_ip() {
            let ip_key = IpKey::from_ip(ip);
            let name_key = NameRef::from(&record.query);
            self.names_per_ip
                .entry(ip_key)
                .or_default()
                .insert(name_key.clone());
            self.ips_per_name
                .entry(name_key)
                .or_default()
                .insert(ip_key);
        }
    }

    /// Number of distinct IPs observed.
    pub fn ip_count(&self) -> usize {
        self.names_per_ip.len()
    }

    /// Number of distinct names observed.
    pub fn name_count(&self) -> usize {
        self.ips_per_name.len()
    }

    /// Fraction of IPs that map to exactly one name (the paper: 88%).
    pub fn single_name_ip_share(&self) -> f64 {
        if self.names_per_ip.is_empty() {
            return 0.0;
        }
        let single = self
            .names_per_ip
            .values()
            .filter(|names| names.len() == 1)
            .count();
        single as f64 / self.names_per_ip.len() as f64
    }

    /// Fraction of names that map to more than one IP (the paper: 35%).
    pub fn multi_ip_name_share(&self) -> f64 {
        if self.ips_per_name.is_empty() {
            return 0.0;
        }
        let multi = self
            .ips_per_name
            .values()
            .filter(|ips| ips.len() > 1)
            .count();
        multi as f64 / self.ips_per_name.len() as f64
    }

    /// ECDF of the number of names per IP (Figure 9).
    pub fn names_per_ip_ecdf(&self) -> Ecdf {
        Ecdf::from_counts(self.names_per_ip.values().map(|s| s.len() as u64))
    }

    /// ECDF of the number of IPs per name (Appendix A.7).
    pub fn ips_per_name_ecdf(&self) -> Ecdf {
        Ecdf::from_counts(self.ips_per_name.values().map(|s| s.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::DomainName;
    use std::net::Ipv4Addr;

    fn record(ts: u64, name: &str, ip: [u8; 4]) -> DnsRecord {
        DnsRecord::address(
            SimTime::from_secs(ts),
            DomainName::literal(name),
            Ipv4Addr::from(ip).into(),
            60,
        )
    }

    #[test]
    fn counts_names_per_ip_and_ips_per_name() {
        let mut a = CardinalityAnalysis::new();
        a.observe(&record(1, "one.example", [1, 1, 1, 1]));
        a.observe(&record(2, "two.example", [1, 1, 1, 1])); // shared IP
        a.observe(&record(3, "one.example", [2, 2, 2, 2])); // multi-IP name
        a.observe(&record(4, "three.example", [3, 3, 3, 3]));
        assert_eq!(a.ip_count(), 3);
        assert_eq!(a.name_count(), 3);
        // IPs: 1.1.1.1 has 2 names, others 1 → 2/3 single.
        assert!((a.single_name_ip_share() - 2.0 / 3.0).abs() < 1e-9);
        // Names: one.example has 2 IPs, others 1 → 1/3 multi.
        assert!((a.multi_ip_name_share() - 1.0 / 3.0).abs() < 1e-9);
        let ecdf = a.names_per_ip_ecdf();
        assert!((ecdf.fraction_at_or_below(1.0) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.ips_per_name_ecdf().max(), Some(2.0));
    }

    #[test]
    fn window_restricts_the_sample() {
        let mut a = CardinalityAnalysis::short_window(SimTime::from_secs(100));
        a.observe(&record(150, "in.example", [5, 5, 5, 5]));
        a.observe(&record(500, "out.example", [6, 6, 6, 6]));
        assert_eq!(a.ip_count(), 1);
        assert_eq!(a.out_of_window, 1);
    }

    #[test]
    fn cname_records_are_ignored() {
        let mut a = CardinalityAnalysis::new();
        a.observe(&DnsRecord::cname(
            SimTime::from_secs(1),
            DomainName::literal("a.example"),
            DomainName::literal("b.example"),
            60,
        ));
        assert_eq!(a.ip_count(), 0);
        assert_eq!(a.single_name_ip_share(), 0.0);
        assert_eq!(a.multi_ip_name_share(), 0.0);
    }
}
