//! Blocklist / validity classification of correlated traffic (Section 5).
//!
//! For every correlated record the analysis classifies the customer-facing
//! domain name as benign, one of the Spamhaus-style blocklist categories,
//! or malformed (RFC 1035 violation), and accumulates per-domain traffic.
//! It also tracks bidirectional traffic towards malformed domains: the
//! paper reports that 2.7% of clients receiving traffic from malformed
//! domains send traffic back, reaching 23.6% of those domains, and that
//! this bidirectional exchange accounts for 1.9% of packets.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use flowdns_dbl::{Blocklist, BlocklistCategory, ValidityStats};
use flowdns_types::{CorrelatedRecord, DomainName, FlowDirection};

use crate::traffic::TrafficByKey;

/// The traffic categories of the Section 5 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficCategory {
    /// Not flagged by any check.
    Benign,
    /// Flagged by the blocklist.
    Listed(BlocklistCategory),
    /// Violates the RFC 1035 syntax rules.
    Malformed,
    /// Could not be correlated with any name at all.
    Uncorrelated,
}

impl TrafficCategory {
    /// Label used in reports (matches the facet labels of Figure 5).
    pub fn label(&self) -> &'static str {
        match self {
            TrafficCategory::Benign => "benign",
            TrafficCategory::Listed(cat) => cat.label(),
            TrafficCategory::Malformed => "mal-formatted",
            TrafficCategory::Uncorrelated => "uncorrelated",
        }
    }
}

/// The Section 5 traffic analysis.
#[derive(Debug)]
pub struct CategoryAnalysis {
    blocklist: Blocklist,
    validity: ValidityStats,
    /// Per-category, per-domain traffic.
    per_category: HashMap<TrafficCategory, TrafficByKey>,
    /// Total bytes seen (including uncorrelated traffic).
    pub total_bytes: u64,
    /// Total packets seen.
    pub total_packets: u64,
    // Bidirectional-traffic bookkeeping for malformed domains.
    malformed_ips: HashSet<IpAddr>,
    malformed_ip_to_domain: HashMap<IpAddr, DomainName>,
    clients_receiving: HashSet<IpAddr>,
    clients_replying: HashSet<IpAddr>,
    malformed_domains_seen: HashSet<DomainName>,
    malformed_domains_replied_to: HashSet<DomainName>,
    bidirectional_packets: u64,
}

impl CategoryAnalysis {
    /// Build an analysis using the given blocklist.
    pub fn new(blocklist: Blocklist) -> Self {
        CategoryAnalysis {
            blocklist,
            validity: ValidityStats::new(),
            per_category: HashMap::new(),
            total_bytes: 0,
            total_packets: 0,
            malformed_ips: HashSet::new(),
            malformed_ip_to_domain: HashMap::new(),
            clients_receiving: HashSet::new(),
            clients_replying: HashSet::new(),
            malformed_domains_seen: HashSet::new(),
            malformed_domains_replied_to: HashSet::new(),
            bidirectional_packets: 0,
        }
    }

    /// Classify a domain name.
    pub fn classify(&mut self, domain: &DomainName) -> TrafficCategory {
        if let Some(listed) = self.blocklist.lookup(domain) {
            return TrafficCategory::Listed(listed);
        }
        let report = self.validity.observe(domain);
        if report.is_valid() {
            TrafficCategory::Benign
        } else {
            TrafficCategory::Malformed
        }
    }

    /// Observe one correlated record (inbound content traffic or outbound
    /// client traffic).
    pub fn observe(&mut self, record: &CorrelatedRecord) {
        self.total_bytes += record.flow.bytes;
        self.total_packets += record.flow.packets;

        // Outbound flows: check whether a client is answering a malformed
        // domain it previously received traffic from.
        if record.flow.direction == FlowDirection::Outbound {
            if self.malformed_ips.contains(&record.flow.key.dst_ip)
                && self.clients_receiving.contains(&record.flow.key.src_ip)
            {
                self.clients_replying.insert(record.flow.key.src_ip);
                if let Some(domain) = self.malformed_ip_to_domain.get(&record.flow.key.dst_ip) {
                    self.malformed_domains_replied_to.insert(domain.clone());
                }
                self.bidirectional_packets += record.flow.packets;
            }
            return;
        }

        let category = match record.outcome.final_name() {
            None => TrafficCategory::Uncorrelated,
            Some(name) => {
                let name = name.clone();
                self.classify(&name)
            }
        };
        let key = record
            .outcome
            .final_name()
            .map(|n| n.as_str().to_string())
            .unwrap_or_else(|| "-".to_string());
        self.per_category
            .entry(category)
            .or_default()
            .add(&key, record.flow.bytes);

        if category == TrafficCategory::Malformed {
            if let Some(name) = record.outcome.final_name() {
                self.malformed_domains_seen.insert(name.clone());
                self.malformed_ips.insert(record.flow.key.src_ip);
                self.malformed_ip_to_domain
                    .insert(record.flow.key.src_ip, name.clone());
            }
            self.clients_receiving.insert(record.flow.key.dst_ip);
        }
    }

    /// Traffic accumulator for one category, if any traffic was seen.
    pub fn traffic(&self, category: TrafficCategory) -> Option<&TrafficByKey> {
        self.per_category.get(&category)
    }

    /// Validity statistics over the correlated names.
    pub fn validity(&self) -> &ValidityStats {
        &self.validity
    }

    /// Bytes carried by suspicious (blocklisted) plus malformed traffic.
    pub fn suspicious_and_malformed_bytes(&self) -> u64 {
        self.per_category
            .iter()
            .filter(|(cat, _)| {
                matches!(cat, TrafficCategory::Listed(_) | TrafficCategory::Malformed)
            })
            .map(|(_, t)| t.total_bytes())
            .sum()
    }

    /// Share of total traffic that is suspicious or malformed (the paper:
    /// about 0.5% of daily traffic).
    pub fn suspicious_and_malformed_share(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.suspicious_and_malformed_bytes() as f64 / self.total_bytes as f64
        }
    }

    /// Number of distinct suspicious domains observed per category.
    pub fn suspicious_domain_counts(&self) -> Vec<(BlocklistCategory, usize)> {
        BlocklistCategory::all()
            .into_iter()
            .map(|cat| {
                let count = self
                    .per_category
                    .get(&TrafficCategory::Listed(cat))
                    .map(|t| t.key_count())
                    .unwrap_or(0);
                (cat, count)
            })
            .collect()
    }

    /// Bidirectional-traffic statistics for malformed domains:
    /// `(client_reply_share, replied_domain_share, bidirectional_packet_share)`.
    pub fn malformed_bidirectional_stats(&self) -> (f64, f64, f64) {
        let client_share = if self.clients_receiving.is_empty() {
            0.0
        } else {
            self.clients_replying.len() as f64 / self.clients_receiving.len() as f64
        };
        let domain_share = if self.malformed_domains_seen.is_empty() {
            0.0
        } else {
            self.malformed_domains_replied_to.len() as f64
                / self.malformed_domains_seen.len() as f64
        };
        let packet_share = if self.total_packets == 0 {
            0.0
        } else {
            self.bidirectional_packets as f64 / self.total_packets as f64
        };
        (client_share, domain_share, packet_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_types::{CorrelationOutcome, FlowKey, FlowRecord, Protocol, SimTime, StreamId};
    use std::net::Ipv4Addr;

    fn blocklist() -> Blocklist {
        let mut bl = Blocklist::new();
        bl.add(
            DomainName::literal("spamhub0.bad0.example"),
            BlocklistCategory::Spam,
        );
        bl.add(
            DomainName::literal("cc-node0.bad1.example"),
            BlocklistCategory::BotnetCc,
        );
        bl
    }

    fn inbound(src: [u8; 4], dst: [u8; 4], bytes: u64, name: Option<&str>) -> CorrelatedRecord {
        CorrelatedRecord::new(
            FlowRecord::inbound(
                SimTime::from_secs(100),
                Ipv4Addr::from(src).into(),
                Ipv4Addr::from(dst).into(),
                bytes,
            ),
            match name {
                Some(n) => CorrelationOutcome::Name(DomainName::literal(n)),
                None => CorrelationOutcome::NotFound,
            },
        )
    }

    fn outbound(src: [u8; 4], dst: [u8; 4], bytes: u64) -> CorrelatedRecord {
        CorrelatedRecord::new(
            FlowRecord {
                ts: SimTime::from_secs(200),
                key: FlowKey {
                    src_ip: Ipv4Addr::from(src).into(),
                    dst_ip: Ipv4Addr::from(dst).into(),
                    src_port: 50000,
                    dst_port: 1194,
                    proto: Protocol::Tcp,
                },
                packets: (bytes / 1400).max(1),
                bytes,
                stream: StreamId::new(0),
                direction: FlowDirection::Outbound,
                trace: None,
            },
            CorrelationOutcome::NotFound,
        )
    }

    #[test]
    fn classification_covers_all_categories() {
        let mut analysis = CategoryAnalysis::new(blocklist());
        analysis.observe(&inbound(
            [1, 1, 1, 1],
            [10, 0, 0, 1],
            10_000,
            Some("www.shop.example"),
        ));
        analysis.observe(&inbound(
            [2, 2, 2, 2],
            [10, 0, 0, 2],
            500,
            Some("spamhub0.bad0.example"),
        ));
        analysis.observe(&inbound(
            [3, 3, 3, 3],
            [10, 0, 0, 3],
            300,
            Some("cc-node0.bad1.example"),
        ));
        analysis.observe(&inbound(
            [4, 4, 4, 4],
            [10, 0, 0, 4],
            200,
            Some("_svc1._tcp.host.example"),
        ));
        analysis.observe(&inbound([5, 5, 5, 5], [10, 0, 0, 5], 700, None));

        assert_eq!(analysis.total_bytes, 11_700);
        assert_eq!(
            analysis
                .traffic(TrafficCategory::Benign)
                .unwrap()
                .total_bytes(),
            10_000
        );
        assert_eq!(
            analysis
                .traffic(TrafficCategory::Listed(BlocklistCategory::Spam))
                .unwrap()
                .total_bytes(),
            500
        );
        assert_eq!(
            analysis
                .traffic(TrafficCategory::Malformed)
                .unwrap()
                .total_bytes(),
            200
        );
        assert_eq!(
            analysis
                .traffic(TrafficCategory::Uncorrelated)
                .unwrap()
                .total_bytes(),
            700
        );
        let share = analysis.suspicious_and_malformed_share();
        assert!((share - 1000.0 / 11_700.0).abs() < 1e-9);
        let counts = analysis.suspicious_domain_counts();
        assert_eq!(counts[0], (BlocklistCategory::Spam, 1));
        assert_eq!(counts[1], (BlocklistCategory::BotnetCc, 1));
        assert!(analysis.validity().invalid >= 1);
    }

    #[test]
    fn bidirectional_malformed_traffic_is_tracked() {
        let mut analysis = CategoryAnalysis::new(blocklist());
        // Two clients receive malformed traffic from the same bad IP.
        analysis.observe(&inbound(
            [9, 9, 9, 9],
            [10, 0, 0, 1],
            400,
            Some("_bad.host.example"),
        ));
        analysis.observe(&inbound(
            [9, 9, 9, 9],
            [10, 0, 0, 2],
            400,
            Some("_bad.host.example"),
        ));
        // One of them replies.
        analysis.observe(&outbound([10, 0, 0, 1], [9, 9, 9, 9], 100));
        // An unrelated outbound flow does not count.
        analysis.observe(&outbound([10, 0, 0, 3], [8, 8, 8, 8], 100));
        let (clients, domains, packets) = analysis.malformed_bidirectional_stats();
        assert!((clients - 0.5).abs() < 1e-9);
        assert!((domains - 1.0).abs() < 1e-9);
        assert!(packets > 0.0 && packets < 1.0);
    }

    #[test]
    fn empty_analysis_has_zero_shares() {
        let analysis = CategoryAnalysis::new(Blocklist::new());
        assert_eq!(analysis.suspicious_and_malformed_share(), 0.0);
        let (a, b, c) = analysis.malformed_bidirectional_stats();
        assert_eq!((a, b, c), (0.0, 0.0, 0.0));
    }
}
