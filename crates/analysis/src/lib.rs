//! # flowdns-analysis
//!
//! Analysis toolkit for FlowDNS output.
//!
//! The experiment harness and the Section 5 use cases all consume the
//! correlated record stream and reduce it to the statistics the paper
//! plots. This crate collects those reductions:
//!
//! * [`ecdf`] — empirical CDFs (Figures 6, 8, 9),
//! * [`traffic`] — per-key byte accounting with cumulative series
//!   (Figure 5's "traffic volume per number of domain names"),
//! * [`cardinality`] — names-per-IP and IPs-per-name counting over a DNS
//!   sample (Figure 9 / Appendix A.7),
//! * [`per_as`] — per-service, per-origin-AS traffic over time using the
//!   BGP routing table (Figure 4),
//! * [`category`] — blocklist / validity classification of correlated
//!   traffic and the bidirectional-traffic statistics (Section 5),
//! * [`report`] — plain-text table rendering used by the experiment
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cardinality;
pub mod category;
pub mod ecdf;
pub mod per_as;
pub mod report;
pub mod traffic;

pub use cardinality::CardinalityAnalysis;
pub use category::{CategoryAnalysis, TrafficCategory};
pub use ecdf::Ecdf;
pub use per_as::PerAsTraffic;
pub use report::{render_series, render_table};
pub use traffic::TrafficByKey;
