//! Empirical cumulative distribution functions.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (order does not matter). Non-finite samples are
    /// discarded.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Ecdf { sorted }
    }

    /// Build from integer samples.
    pub fn from_counts<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        Ecdf::from_samples(samples.into_iter().map(|x| x as f64))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Is the ECDF empty?
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): the fraction of samples ≤ `x` (0.0 for an empty ECDF).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|s| *s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (q in `[0, 1]`); `None` for an empty ECDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// The minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// The maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluate the ECDF at each of `points`, returning `(x, F(x))` pairs —
    /// the series a plot of the figure would use.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|x| (*x, self.fraction_at_or_below(*x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let ecdf = Ecdf::from_counts([1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(ecdf.len(), 10);
        assert!((ecdf.fraction_at_or_below(5.0) - 0.5).abs() < 1e-9);
        assert!((ecdf.fraction_at_or_below(10.0) - 1.0).abs() < 1e-9);
        assert_eq!(ecdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(ecdf.quantile(0.0), Some(1.0));
        assert_eq!(ecdf.quantile(1.0), Some(10.0));
        assert_eq!(ecdf.min(), Some(1.0));
        assert_eq!(ecdf.max(), Some(10.0));
    }

    #[test]
    fn ecdf_is_monotone() {
        let ecdf = Ecdf::from_samples([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let xs: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let series = ecdf.series(&xs);
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_and_nonfinite_handling() {
        let empty = Ecdf::from_samples(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.fraction_at_or_below(1.0), 0.0);
        assert_eq!(empty.quantile(0.5), None);
        let cleaned = Ecdf::from_samples([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cleaned.len(), 2);
    }
}
