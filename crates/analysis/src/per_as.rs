//! Per-service, per-origin-AS traffic over time (Figure 4).
//!
//! The paper shows, for two streaming services S1 and S2, the cumulative
//! traffic volume per source AS over a week: S1 is originated almost
//! entirely by one AS, S2 mainly by two. This module reduces the
//! correlated record stream to exactly that series.
//!
//! Since the in-pipeline BGP enrichment, every [`CorrelatedRecord`]
//! arrives with its origin AS already stamped by the LookUp stage
//! (`src_asn`), so the analysis no longer re-runs a longest-prefix-match
//! per record — it only buckets what the pipeline resolved. Feed it the
//! output of a pipeline with a loaded `routing_table` (or an
//! `OfflineSimulator` with an `AsnView`).

use std::collections::BTreeMap;

use flowdns_types::CorrelatedRecord;

/// Accumulates traffic per (hour, origin AS) for one service.
#[derive(Debug, Default, Clone)]
pub struct PerAsTraffic {
    /// bytes[(hour, asn)] = bytes
    bytes: BTreeMap<(u64, u32), u64>,
    /// Bytes whose record carried no source-AS attribution (address not
    /// covered by any announcement, or pipeline run without a table).
    pub unattributed_bytes: u64,
}

impl PerAsTraffic {
    /// A fresh accumulator.
    pub fn new() -> Self {
        PerAsTraffic::default()
    }

    /// Observe one correlated record belonging to the service being
    /// analyzed. The caller filters records by service (e.g. by final
    /// domain name suffix); this method buckets the record's pre-stamped
    /// `src_asn` by hour.
    pub fn observe(&mut self, record: &CorrelatedRecord) {
        let hour = record.flow.ts.as_secs() / 3600;
        match record.src_asn {
            Some(asn) => {
                *self.bytes.entry((hour, asn)).or_insert(0) += record.flow.bytes;
            }
            None => self.unattributed_bytes += record.flow.bytes,
        }
    }

    /// The distinct ASes observed, ordered by total traffic (descending).
    pub fn ases_by_traffic(&self) -> Vec<(u32, u64)> {
        let mut totals: BTreeMap<u32, u64> = BTreeMap::new();
        for ((_, asn), bytes) in &self.bytes {
            *totals.entry(*asn).or_insert(0) += bytes;
        }
        let mut out: Vec<(u32, u64)> = totals.into_iter().collect();
        out.sort_by_key(|&(_, bytes)| std::cmp::Reverse(bytes));
        out
    }

    /// Total attributed bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// The share of attributed traffic carried by the top `n` ASes.
    pub fn top_as_share(&self, n: usize) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.ases_by_traffic().iter().take(n).map(|(_, b)| b).sum();
        top as f64 / total as f64
    }

    /// The per-hour series for one AS: `(hour, bytes)` pairs in hour order
    /// (hours with no traffic are omitted).
    pub fn hourly_series(&self, asn: u32) -> Vec<(u64, u64)> {
        self.bytes
            .iter()
            .filter(|((_, a), _)| *a == asn)
            .map(|((hour, _), bytes)| (*hour, *bytes))
            .collect()
    }

    /// The cumulative per-hour series for one AS (the cumulative volume
    /// style of Figure 4).
    pub fn cumulative_series(&self, asn: u32) -> Vec<(u64, u64)> {
        let mut acc = 0u64;
        self.hourly_series(asn)
            .into_iter()
            .map(|(hour, bytes)| {
                acc += bytes;
                (hour, acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdns_bgp::{Announcement, AsnView, RoutingTable};
    use flowdns_types::{CorrelationOutcome, DomainName, FlowRecord, SimTime};
    use std::net::Ipv4Addr;

    fn view() -> AsnView {
        let mut t = RoutingTable::new();
        t.announce(Announcement {
            prefix: "100.64.0.0/16".parse().unwrap(),
            origin_as: 64501,
        });
        t.announce(Announcement {
            prefix: "100.65.0.0/16".parse().unwrap(),
            origin_as: 64601,
        });
        AsnView::new(t.freeze())
    }

    /// A record as the enriched pipeline would emit it: `src_asn` stamped
    /// from the frozen table at LookUp time.
    fn record(view: &AsnView, hour: u64, src: [u8; 4], bytes: u64) -> CorrelatedRecord {
        let src_ip = Ipv4Addr::from(src).into();
        CorrelatedRecord::new(
            FlowRecord::inbound(
                SimTime::from_secs(hour * 3600 + 10),
                src_ip,
                Ipv4Addr::new(10, 0, 0, 1).into(),
                bytes,
            ),
            CorrelationOutcome::Name(DomainName::literal("video.stream-one.example")),
        )
        .with_asns(view.reader().origin_as(src_ip), None)
    }

    #[test]
    fn attribution_and_ranking() {
        let view = view();
        let mut per_as = PerAsTraffic::new();
        per_as.observe(&record(&view, 0, [100, 64, 1, 1], 1000));
        per_as.observe(&record(&view, 1, [100, 64, 2, 2], 3000));
        per_as.observe(&record(&view, 1, [100, 65, 1, 1], 500));
        per_as.observe(&record(&view, 2, [198, 51, 100, 1], 999));
        assert_eq!(per_as.total_bytes(), 4500);
        assert_eq!(per_as.unattributed_bytes, 999);
        let ranked = per_as.ases_by_traffic();
        assert_eq!(ranked[0], (64501, 4000));
        assert_eq!(ranked[1], (64601, 500));
        assert!((per_as.top_as_share(1) - 4000.0 / 4500.0).abs() < 1e-9);
    }

    #[test]
    fn hourly_and_cumulative_series() {
        let view = view();
        let mut per_as = PerAsTraffic::new();
        per_as.observe(&record(&view, 0, [100, 64, 1, 1], 100));
        per_as.observe(&record(&view, 2, [100, 64, 1, 2], 300));
        let hourly = per_as.hourly_series(64501);
        assert_eq!(hourly, vec![(0, 100), (2, 300)]);
        let cumulative = per_as.cumulative_series(64501);
        assert_eq!(cumulative, vec![(0, 100), (2, 400)]);
        assert!(per_as.hourly_series(99999).is_empty());
    }

    #[test]
    fn unstamped_records_count_as_unattributed() {
        let mut per_as = PerAsTraffic::new();
        per_as.observe(&CorrelatedRecord::new(
            FlowRecord::inbound(
                SimTime::from_secs(10),
                Ipv4Addr::new(100, 64, 1, 1).into(),
                Ipv4Addr::new(10, 0, 0, 1).into(),
                777,
            ),
            CorrelationOutcome::NotFound,
        ));
        assert_eq!(per_as.total_bytes(), 0);
        assert_eq!(per_as.unattributed_bytes, 777);
    }

    #[test]
    fn empty_accumulator() {
        let per_as = PerAsTraffic::new();
        assert_eq!(per_as.total_bytes(), 0);
        assert_eq!(per_as.top_as_share(3), 0.0);
        assert!(per_as.ases_by_traffic().is_empty());
    }
}
