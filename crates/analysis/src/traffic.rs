//! Per-key traffic accounting.
//!
//! Figure 5 plots, per domain category, the cumulative distribution of
//! traffic volume against the number of domain names: sort the category's
//! domains by traffic, then report how many bytes the top-k carry.
//! [`TrafficByKey`] is the generic accumulator behind that plot and the
//! per-service / per-AS breakdowns.

use std::collections::HashMap;

/// Accumulates bytes per string key.
#[derive(Debug, Clone, Default)]
pub struct TrafficByKey {
    bytes: HashMap<String, u64>,
    total: u64,
}

impl TrafficByKey {
    /// An empty accumulator.
    pub fn new() -> Self {
        TrafficByKey::default()
    }

    /// Add `bytes` to `key`.
    pub fn add(&mut self, key: &str, bytes: u64) {
        *self.bytes.entry(key.to_string()).or_insert(0) += bytes;
        self.total += bytes;
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.bytes.len()
    }

    /// Total bytes across all keys.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Bytes for one key (0 if absent).
    pub fn get(&self, key: &str) -> u64 {
        self.bytes.get(key).copied().unwrap_or(0)
    }

    /// The keys sorted by descending traffic, with their byte counts.
    pub fn ranked(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self.bytes.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The top `n` keys by traffic.
    pub fn top_n(&self, n: usize) -> Vec<(String, u64)> {
        let mut ranked = self.ranked();
        ranked.truncate(n);
        ranked
    }

    /// The cumulative series of Figure 5: entry `k` (1-based) is the total
    /// bytes carried by the `k` highest-traffic keys.
    pub fn cumulative_series(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.ranked()
            .into_iter()
            .map(|(_, bytes)| {
                acc += bytes;
                acc
            })
            .collect()
    }

    /// How many of the highest-traffic keys are needed to cover `fraction`
    /// of the total bytes (0 for an empty accumulator).
    pub fn keys_covering(&self, fraction: f64) -> usize {
        if self.total == 0 {
            return 0;
        }
        let threshold = (self.total as f64 * fraction.clamp(0.0, 1.0)).ceil() as u64;
        for (i, cum) in self.cumulative_series().iter().enumerate() {
            if *cum >= threshold {
                return i + 1;
            }
        }
        self.key_count()
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &TrafficByKey) {
        for (k, v) in &other.bytes {
            *self.bytes.entry(k.clone()).or_insert(0) += v;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrafficByKey {
        let mut t = TrafficByKey::new();
        t.add("heavy.example", 800);
        t.add("mid.example", 150);
        t.add("light.example", 40);
        t.add("tiny.example", 10);
        t.add("heavy.example", 200); // accumulate
        t
    }

    #[test]
    fn accumulation_and_ranking() {
        let t = sample();
        assert_eq!(t.key_count(), 4);
        assert_eq!(t.total_bytes(), 1200);
        assert_eq!(t.get("heavy.example"), 1000);
        assert_eq!(t.get("missing"), 0);
        let ranked = t.ranked();
        assert_eq!(ranked[0].0, "heavy.example");
        assert_eq!(ranked[3].0, "tiny.example");
        assert_eq!(t.top_n(2).len(), 2);
    }

    #[test]
    fn cumulative_series_is_monotone_and_ends_at_total() {
        let t = sample();
        let series = t.cumulative_series();
        assert_eq!(series.len(), 4);
        assert_eq!(*series.last().unwrap(), 1200);
        for pair in series.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert_eq!(series[0], 1000); // the single heaviest key
    }

    #[test]
    fn keys_covering_fraction() {
        let t = sample();
        // The heaviest key alone covers 83% of the traffic.
        assert_eq!(t.keys_covering(0.8), 1);
        assert_eq!(t.keys_covering(0.9), 2);
        assert_eq!(t.keys_covering(1.0), 4);
        assert_eq!(TrafficByKey::new().keys_covering(0.5), 0);
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = sample();
        let mut b = TrafficByKey::new();
        b.add("heavy.example", 100);
        b.add("new.example", 1);
        a.merge(&b);
        assert_eq!(a.get("heavy.example"), 1100);
        assert_eq!(a.get("new.example"), 1);
        assert_eq!(a.total_bytes(), 1301);
    }
}
