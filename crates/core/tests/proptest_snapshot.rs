//! Property-based test of the DnsStore snapshot round trip: for any
//! sequence of timestamped A/AAAA and CNAME inserts (spanning multiple
//! clear-up rotations), export → import into a fresh store must
//! reproduce the store contents, the generation each key lives in, and
//! the interner's one-allocation-per-distinct-name invariant exactly.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use flowdns_core::{CorrelatorConfig, DnsStore};
use flowdns_types::{DomainName, NameRef, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Insert {
    Address {
        ip: IpAddr,
        name_idx: usize,
        ttl: u32,
    },
    Cname {
        target_idx: usize,
        alias_idx: usize,
        ttl: u32,
    },
}

const NAME_POOL: usize = 12;

fn name(idx: usize) -> DomainName {
    DomainName::literal(&format!("host{idx}.cdn.example"))
}

fn ttl() -> impl Strategy<Value = u32> {
    prop_oneof![Just(60u32), Just(86_400u32)]
}

fn insert_op() -> impl Strategy<Value = Insert> {
    let v4 = any::<u32>().prop_map(|bits| IpAddr::V4(Ipv4Addr::from(bits & 0xff)));
    let v6 = any::<u32>().prop_map(|bits| {
        IpAddr::V6(Ipv6Addr::new(
            0x2001,
            0xdb8,
            0,
            0,
            0,
            0,
            0,
            (bits & 0x3f) as u16,
        ))
    });
    prop_oneof![
        3 => (prop_oneof![v4, v6], 0..NAME_POOL, ttl())
            .prop_map(|(ip, name_idx, ttl)| Insert::Address { ip, name_idx, ttl }),
        1 => (0..NAME_POOL, 0..NAME_POOL, ttl())
            .prop_map(|(target_idx, alias_idx, ttl)| Insert::Cname {
                target_idx,
                alias_idx,
                ttl
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn export_import_reproduces_contents_generations_and_dedup(
        ops in proptest::collection::vec((insert_op(), 0u64..900), 1..120),
    ) {
        let config = CorrelatorConfig::default();
        let donor = DnsStore::new(&config);
        // Apply the inserts at non-decreasing timestamps; steps of up to
        // 900 s across up to 120 ops span several 3600 s rotations.
        let mut ts = SimTime::ZERO;
        let mut ips: Vec<IpAddr> = Vec::new();
        for (op, step) in &ops {
            ts += flowdns_types::SimDuration::from_secs(*step);
            match op {
                Insert::Address { ip, name_idx, ttl } => {
                    donor.insert_address(*ip, &name(*name_idx), *ttl, ts);
                    ips.push(*ip);
                }
                Insert::Cname { target_idx, alias_idx, ttl } => {
                    donor.insert_cname(&name(*target_idx), &name(*alias_idx), *ttl, ts);
                }
            }
        }
        // Sync every split's rotation clock to the final data time, as a
        // live pipeline's flow traffic does continuously; the exported
        // image is then aged consistently on import.
        donor.observe_time(ts);

        let image = donor.export_image().expect("rotating store must export");
        prop_assert_eq!(image.as_of, ts);
        let restored = DnsStore::new(&config);
        restored.import_image(&image, None).expect("import must succeed");

        // Contents and generations: every key resolves identically.
        prop_assert_eq!(restored.total_entries(), donor.total_entries());
        for ip in &ips {
            let before = donor.lookup_ip(*ip, ts).map(|(n, g)| (n.as_str().to_string(), g));
            let after = restored.lookup_ip(*ip, ts).map(|(n, g)| (n.as_str().to_string(), g));
            prop_assert_eq!(before, after, "IP {} diverged", ip);
        }
        for idx in 0..NAME_POOL {
            let key_donor = donor.intern(&name(idx));
            let key_restored = restored.intern(&name(idx));
            let before = donor
                .lookup_cname(&key_donor, ts)
                .map(|(n, g)| (n.as_str().to_string(), g));
            let after = restored
                .lookup_cname(&key_restored, ts)
                .map(|(n, g)| (n.as_str().to_string(), g));
            prop_assert_eq!(before, after, "CNAME key {} diverged", idx);
        }

        // Interner dedup: the snapshot's name table is exactly the set of
        // distinct names, and re-importing produced one shared allocation
        // per name — two lookups of IPs mapped to the same name return
        // pointer-equal handles.
        prop_assert!(image.names.len() <= NAME_POOL);
        let mut by_name: std::collections::HashMap<String, NameRef> = Default::default();
        for ip in &ips {
            if let Some((handle, _)) = restored.lookup_ip(*ip, ts) {
                let text = handle.as_str().to_string();
                if let Some(first) = by_name.get(&text) {
                    prop_assert!(
                        NameRef::ptr_eq(first, &handle),
                        "name {} not deduplicated after import",
                        text
                    );
                } else {
                    by_name.insert(text, handle);
                }
            }
        }
    }
}
