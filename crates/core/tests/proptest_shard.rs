//! Property-based tests of the shard router: for any set of IPs and any
//! shard count, routing must be (a) stable — the same key always lands
//! on the same shard, (b) consistent — a DNS answer for an IP and a
//! flow from that IP land on the same shard (the correctness argument
//! of the shared-nothing design), and (c) balanced — no shard receives
//! a pathological share of a random IP population.

use std::collections::HashSet;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use flowdns_core::{shard_of_dns, shard_of_flow, shard_of_ip};
use flowdns_types::{DnsRecord, DomainName, FlowRecord, SimTime};
use proptest::prelude::*;

fn ip_strategy() -> impl Strategy<Value = IpAddr> {
    prop_oneof![
        any::<u32>().prop_map(|bits| IpAddr::V4(Ipv4Addr::from(bits))),
        (any::<u64>(), any::<u64>())
            .prop_map(|(hi, lo)| { IpAddr::V6(Ipv6Addr::from(((hi as u128) << 64) | lo as u128)) }),
    ]
}

proptest! {
    #[test]
    fn routing_is_stable_consistent_and_in_range(
        ips in proptest::collection::vec(ip_strategy(), 1..64),
        shards in 1usize..8,
    ) {
        for &ip in &ips {
            let shard = shard_of_ip(ip, shards);
            prop_assert!(shard < shards);
            // Stable: the route is a pure function of (ip, shards).
            prop_assert_eq!(shard, shard_of_ip(ip, shards));
            // Consistent: the DNS answer announcing this IP and a flow
            // sourced from it must land on the same shard worker.
            let dns = DnsRecord::address(
                SimTime::from_secs(1),
                DomainName::literal("svc.example"),
                ip,
                300,
            );
            let flow = FlowRecord::inbound(
                SimTime::from_secs(2),
                ip,
                Ipv4Addr::new(10, 0, 0, 1).into(),
                1_000,
            );
            prop_assert_eq!(shard_of_dns(&dns, shards), shard);
            prop_assert_eq!(shard_of_flow(&flow, shards), shard);
        }
    }

    #[test]
    fn routing_balances_random_ip_sets(
        seeds in proptest::collection::vec(any::<u32>(), 256..257),
        shards in 2usize..5,
    ) {
        // Distinct random IPs; duplicates would skew the load tally.
        let ips: HashSet<IpAddr> = seeds
            .iter()
            .map(|&bits| IpAddr::V4(Ipv4Addr::from(bits)))
            .collect();
        let mut loads = vec![0usize; shards];
        for &ip in &ips {
            loads[shard_of_ip(ip, shards)] += 1;
        }
        let expected = ips.len() / shards;
        let max = *loads.iter().max().unwrap_or(&0);
        let min = *loads.iter().min().unwrap_or(&0);
        // Loose bounds: a uniform hash over ~256 keys stays well within
        // 2x of fair share per shard, and no shard starves.
        prop_assert!(
            max <= expected * 2,
            "max shard load {} vs fair share {} (loads {:?})",
            max,
            expected,
            loads
        );
        prop_assert!(
            min >= expected / 4,
            "min shard load {} vs fair share {} (loads {:?})",
            min,
            expected,
            loads
        );
    }
}
